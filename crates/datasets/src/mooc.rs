//! MOOC — the peer-grading stand-in (§IV-C1).
//!
//! Original: students grade peer assignments 0–5; course assistants
//! provide gold grades for a subset; the paper maps grades to 3-ary
//! (`⌈g/2⌉`) because the data is too small for arity 6. Grading
//! happens in sections — cohorts of students grade the same stack of
//! assignments — which is what gives the paper ≥ 50 triples with
//! `t = 60` common tasks.
//!
//! Grader noise is *adjacent-biased*: confusing a grade with a
//! neighbouring grade is far likelier than with a distant one, and
//! students lean generous, so the confusion matrices are asymmetric.

use crate::assemble::assemble;
use crate::{BlockDesign, Dataset};
use crowd_linalg::Matrix;
use crowd_sim::{DifficultyModel, WorkerModel, rng};
use rand::RngExt;

/// Task arity after the paper's grade mapping.
pub const ARITY: u16 = 3;

/// Generates the MOOC stand-in.
pub fn generate(seed: u64) -> Dataset {
    let mut r = rng(seed);
    let design = BlockDesign {
        cohorts: 10,
        workers_per_cohort: 5,
        block_len: 90,
        block_overlap: 0.2,
        dropout: 0.08,
    };
    let workers: Vec<WorkerModel> = (0..design.n_workers())
        .map(|_| WorkerModel::Confusion(grader_matrix(&mut r)))
        .collect();
    let mask = design.sample_mask(&mut r);
    let (responses, gold) = assemble(
        ARITY,
        &[0.25, 0.45, 0.3],
        &workers,
        DifficultyModel::HalfNormal {
            sigma: 0.05,
            max: 0.2,
        },
        &mask,
        &mut r,
    );
    Dataset {
        name: "MOOC",
        responses,
        gold,
    }
}

/// A random adjacent-biased, generosity-skewed 3×3 grader matrix.
fn grader_matrix(r: &mut impl RngExt) -> Matrix {
    // Base accuracy per true grade, with generosity: low grades get
    // inflated more often than high grades get deflated.
    let acc = 0.6 + 0.25 * r.random::<f64>();
    let generosity = 0.05 + 0.1 * r.random::<f64>();
    let spread = 1.0 - acc;
    let m = Matrix::from_rows(&[
        // truth "low": most mass on low, inflation toward mid.
        &[acc, spread * 0.8 + generosity * 0.5, spread * 0.2],
        // truth "mid": symmetric-ish with a generous tilt.
        &[
            spread * 0.35 - generosity * 0.5,
            acc,
            spread * 0.65 + generosity * 0.5,
        ],
        // truth "high": deflation to mid only.
        &[spread * 0.15, spread * 0.85, acc],
    ]);
    // The generosity tilt can push an entry slightly negative and
    // leaves rows a hair off 1.0: clamp, then renormalize.
    let clamped = m.map(|x| x.max(0.001));
    Matrix::from_fn(3, 3, |i, j| {
        let s: f64 = clamped.row(i).iter().sum();
        clamped.get(i, j) / s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples_with_overlap;

    #[test]
    fn shape_supports_figure_5c() {
        let d = generate(41);
        assert_eq!(d.responses.arity(), 3);
        assert_eq!(d.responses.n_workers(), 50);
        // The §IV-C protocol needs at least 50 triples with ≥ 60 common
        // tasks.
        let mut r = rng(1);
        let triples = triples_with_overlap(&d.responses, 60, 50, &mut r);
        assert_eq!(triples.len(), 50, "need ≥50 triples at t=60");
    }

    #[test]
    fn grader_matrices_are_stochastic_and_diag_dominant() {
        let mut r = rng(43);
        for _ in 0..50 {
            let m = grader_matrix(&mut r);
            for i in 0..3 {
                let s: f64 = m.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
                for j in 0..3 {
                    assert!(m.get(i, j) >= 0.0);
                    if j != i {
                        assert!(m.get(i, i) > m.get(i, j), "diagonal dominance violated");
                    }
                }
            }
        }
    }

    #[test]
    fn graders_confuse_adjacent_grades_more() {
        let d = generate(47);
        // Aggregate empirical confusion over all workers.
        let mut agg = Matrix::zeros(3, 3);
        for w in d.responses.workers() {
            agg = agg.add_matrix(&d.gold.worker_confusion(&d.responses, w));
        }
        // Low↔high confusion is the rarest kind.
        let low_high = agg.get(0, 2) + agg.get(2, 0);
        let adjacent = agg.get(0, 1) + agg.get(1, 0) + agg.get(1, 2) + agg.get(2, 1);
        assert!(
            low_high < adjacent / 2.0,
            "adjacent bias missing: {low_high} vs {adjacent}"
        );
    }
}
