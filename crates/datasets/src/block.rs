//! Block-structured attempt designs.
//!
//! Real crowdsourcing platforms hand out work in batches: a worker who
//! opens a HIT group labels a contiguous *block* of items, so worker
//! triples within the same cohort share many tasks while cross-cohort
//! triples share few. The paper's MOOC / WSD / WS experiments depend
//! on exactly this structure (they need ≥ 50 triples clearing a
//! per-dataset overlap threshold). [`BlockDesign`] reproduces it.

use rand::RngExt;

/// Workers arrive in cohorts; each cohort labels one task block, and
/// each worker skips a per-response fraction of its block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockDesign {
    /// Number of cohorts.
    pub cohorts: usize,
    /// Workers per cohort.
    pub workers_per_cohort: usize,
    /// Tasks per block.
    pub block_len: usize,
    /// Fractional overlap between consecutive blocks, in `[0, 1)`.
    pub block_overlap: f64,
    /// Probability a worker skips any given task of its block.
    pub dropout: f64,
}

impl BlockDesign {
    /// Total workers.
    pub fn n_workers(&self) -> usize {
        self.cohorts * self.workers_per_cohort
    }

    /// Total tasks spanned by the blocks.
    pub fn n_tasks(&self) -> usize {
        if self.cohorts == 0 {
            return 0;
        }
        let stride = self.stride();
        stride * (self.cohorts - 1) + self.block_len
    }

    fn stride(&self) -> usize {
        ((self.block_len as f64) * (1.0 - self.block_overlap))
            .round()
            .max(1.0) as usize
    }

    /// The attempt mask: `mask[worker][task]`.
    pub fn sample_mask(&self, rng: &mut impl RngExt) -> Vec<Vec<bool>> {
        let n_tasks = self.n_tasks();
        let stride = self.stride();
        let mut mask = vec![vec![false; n_tasks]; self.n_workers()];
        for cohort in 0..self.cohorts {
            let start = cohort * stride;
            for slot in 0..self.workers_per_cohort {
                let w = cohort * self.workers_per_cohort + slot;
                for t in start..(start + self.block_len).min(n_tasks) {
                    if rng.random::<f64>() >= self.dropout {
                        mask[w][t] = true;
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::rng;

    fn design() -> BlockDesign {
        BlockDesign {
            cohorts: 3,
            workers_per_cohort: 4,
            block_len: 20,
            block_overlap: 0.25,
            dropout: 0.0,
        }
    }

    #[test]
    fn shape() {
        let d = design();
        assert_eq!(d.n_workers(), 12);
        // stride = 15 → tasks = 15*2 + 20 = 50.
        assert_eq!(d.n_tasks(), 50);
    }

    #[test]
    fn cohort_members_share_their_block() {
        let d = design();
        let mask = d.sample_mask(&mut rng(1));
        // Workers 0..4 (cohort 0) all attempt tasks 0..20 and nothing else.
        for w in 0..4 {
            for t in 0..50 {
                assert_eq!(mask[w][t], t < 20, "worker {w} task {t}");
            }
        }
        // Cohort 1 spans 15..35: overlaps cohort 0 on 15..20.
        assert!(mask[4][15] && mask[4][34] && !mask[4][35] && !mask[4][14]);
    }

    #[test]
    fn dropout_thins_responses() {
        let d = BlockDesign {
            dropout: 0.5,
            ..design()
        };
        let mask = d.sample_mask(&mut rng(2));
        let filled: usize = mask.iter().flatten().filter(|&&b| b).count();
        let full = 12 * 20;
        let frac = filled as f64 / full as f64;
        assert!((frac - 0.5).abs() < 0.1, "dropout fraction {frac}");
    }

    #[test]
    fn zero_cohorts_is_empty() {
        let d = BlockDesign {
            cohorts: 0,
            ..design()
        };
        assert_eq!(d.n_tasks(), 0);
        assert_eq!(d.n_workers(), 0);
        assert!(d.sample_mask(&mut rng(3)).is_empty());
    }
}
