//! WS — the word-similarity stand-in (Snow et al.).
//!
//! Original: similarity ratings 0–10, mapped by the paper to binary
//! (`⌈g/6⌉`), and *so sparse that no worker triple shared more than 30
//! tasks* — which is why §IV-C uses the smallest threshold, `t = 30`.
//! Rating tasks are subjective, so difficulty heterogeneity is the
//! largest of all the stand-ins.

use crate::assemble::assemble;
use crate::{BlockDesign, Dataset};
use crowd_sim::{DifficultyModel, WorkerModel, rng};
use rand::RngExt;

/// Arity after the paper's rating threshold mapping.
pub const ARITY: u16 = 2;

/// Generates the WS stand-in.
pub fn generate(seed: u64) -> Dataset {
    let mut r = rng(seed);
    let design = BlockDesign {
        cohorts: 10,
        workers_per_cohort: 5,
        block_len: 36,
        block_overlap: 0.1,
        dropout: 0.02,
    };
    let workers: Vec<WorkerModel> = (0..design.n_workers())
        .map(|_| WorkerModel::SymmetricError(0.08 + 0.22 * r.random::<f64>()))
        .collect();
    let mask = design.sample_mask(&mut r);
    let (responses, gold) = assemble(
        ARITY,
        &[0.6, 0.4],
        &workers,
        DifficultyModel::HalfNormal {
            sigma: 0.1,
            max: 0.35,
        },
        &mask,
        &mut r,
    );
    Dataset {
        name: "WS",
        responses,
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples_with_overlap;
    use crowd_data::{WorkerId, triple_overlap};

    #[test]
    fn shape_supports_figure_5c() {
        let d = generate(71);
        let mut r = rng(3);
        let triples = triples_with_overlap(&d.responses, 30, 50, &mut r);
        assert!(
            triples.len() >= 50,
            "need ≥50 triples at t=30, got {}",
            triples.len()
        );
    }

    #[test]
    fn extreme_sparsity_like_the_original() {
        // "no triple of workers had more than 30 tasks in common" is
        // approximated: no triple clears ~block_len common tasks.
        let d = generate(73);
        let m = d.responses.n_workers();
        let mut max_overlap = 0usize;
        for a in 0..m as u32 {
            for b in (a + 1)..m as u32 {
                for c in (b + 1)..m as u32 {
                    max_overlap = max_overlap.max(
                        triple_overlap(&d.responses, WorkerId(a), WorkerId(b), WorkerId(c))
                            .common_tasks,
                    );
                }
            }
        }
        assert!(
            max_overlap <= 36,
            "triples should stay tiny, max {max_overlap}"
        );
        assert!(
            d.responses.density() < 0.13,
            "density {}",
            d.responses.density()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(5).responses, generate(5).responses);
    }
}
