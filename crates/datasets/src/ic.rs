//! IC — the Image Comparison stand-in (§III-E1).
//!
//! Original: 48 binary tasks ("do these two sports photos show the
//! same person?"), each attempted by all 19 Mechanical-Turk workers;
//! the paper removes a random 20% of responses to make it non-regular.
//! Worker quality on the real dataset was mixed, with a couple of
//! near-random workers, and photo pairs vary a lot in difficulty —
//! both properties are reproduced here.

use crate::Dataset;
use crate::assemble::assemble;
use crowd_sim::{AttemptDesign, DifficultyModel, WorkerModel, rng};
use rand::RngExt;

/// Number of tasks in the original dataset.
pub const N_TASKS: usize = 48;
/// Number of workers in the original dataset.
pub const N_WORKERS: usize = 19;
/// Fraction of responses removed by the paper's protocol.
pub const REMOVAL_FRACTION: f64 = 0.2;

/// Generates the IC stand-in.
pub fn generate(seed: u64) -> Dataset {
    let mut r = rng(seed);
    // Mixed worker pool: mostly decent, two near-spammers.
    let workers: Vec<WorkerModel> = (0..N_WORKERS)
        .map(|i| {
            let p = if i < 2 {
                0.42 + 0.05 * r.random::<f64>()
            } else {
                0.05 + 0.25 * r.random::<f64>()
            };
            WorkerModel::SymmetricError(p)
        })
        .collect();
    let mask = AttemptDesign::RandomRemoval {
        fraction: REMOVAL_FRACTION,
    }
    .sample_mask(N_WORKERS, N_TASKS, &mut r);
    let (responses, gold) = assemble(
        2,
        &[0.5, 0.5],
        &workers,
        DifficultyModel::HalfNormal {
            sigma: 0.08,
            max: 0.3,
        },
        &mask,
        &mut r,
    );
    Dataset {
        name: "IC",
        responses,
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let d = generate(11);
        assert_eq!(d.responses.n_workers(), N_WORKERS);
        assert_eq!(d.responses.n_tasks(), N_TASKS);
        assert_eq!(d.responses.arity(), 2);
        let expected = (N_WORKERS * N_TASKS) as f64 * (1.0 - REMOVAL_FRACTION);
        assert_eq!(d.responses.n_responses(), expected.round() as usize);
        assert!(!d.responses.is_regular());
    }

    #[test]
    fn worker_quality_is_mixed() {
        let d = generate(13);
        let rates: Vec<f64> = d
            .responses
            .workers()
            .filter_map(|w| d.empirical_error_rate(w))
            .collect();
        assert_eq!(rates.len(), N_WORKERS);
        let good = rates.iter().filter(|&&p| p < 0.35).count();
        let bad = rates.iter().filter(|&&p| p >= 0.3).count();
        assert!(good >= 10, "most workers decent: {rates:?}");
        assert!(bad >= 1, "at least one near-random worker: {rates:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(7).responses, generate(7).responses);
        assert_ne!(generate(7).responses, generate(8).responses);
    }
}
