//! WSD — the word-sense-disambiguation stand-in (Snow et al.).
//!
//! Original: 3-way sense selection, but sense 2 almost never occurs as
//! the true answer, so the paper collapses senses 2 and 3 into one
//! label and runs the binary estimator with `t = 100`. The resulting
//! binary data is *heavily* class-imbalanced and workers are very
//! accurate (WSD was Snow's easiest task, ≈ 0.99 majority accuracy).

use crate::assemble::assemble;
use crate::{BlockDesign, Dataset};
use crowd_sim::{DifficultyModel, WorkerModel, rng};
use rand::RngExt;

/// Arity after the paper's collapse of senses 2 and 3.
pub const ARITY: u16 = 2;

/// Generates the WSD stand-in.
pub fn generate(seed: u64) -> Dataset {
    let mut r = rng(seed);
    let design = BlockDesign {
        cohorts: 8,
        workers_per_cohort: 5,
        block_len: 130,
        block_overlap: 0.15,
        dropout: 0.05,
    };
    let workers: Vec<WorkerModel> = (0..design.n_workers())
        .map(|_| {
            if r.random::<f64>() < 0.05 {
                WorkerModel::SymmetricError(0.45)
            } else {
                WorkerModel::SymmetricError(0.02 + 0.12 * r.random::<f64>())
            }
        })
        .collect();
    let mask = design.sample_mask(&mut r);
    let (responses, gold) = assemble(
        ARITY,
        // Dominant sense ≈ 80% of tasks.
        &[0.8, 0.2],
        &workers,
        DifficultyModel::HalfNormal {
            sigma: 0.04,
            max: 0.15,
        },
        &mask,
        &mut r,
    );
    Dataset {
        name: "WSD",
        responses,
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples_with_overlap;
    use crowd_data::Label;

    #[test]
    fn shape_supports_figure_5c() {
        let d = generate(53);
        assert_eq!(d.responses.arity(), 2);
        let mut r = rng(2);
        let triples = triples_with_overlap(&d.responses, 100, 50, &mut r);
        assert_eq!(triples.len(), 50, "need ≥50 triples at t=100");
    }

    #[test]
    fn classes_are_imbalanced() {
        let d = generate(59);
        let s = d.gold.selectivity(2);
        assert!(s[0] > 0.7, "dominant sense should dominate: {s:?}");
    }

    #[test]
    fn workers_are_highly_accurate() {
        let d = generate(61);
        let rates: Vec<f64> = d
            .responses
            .workers()
            .filter_map(|w| d.empirical_error_rate(w))
            .collect();
        let sharp = rates.iter().filter(|&&p| p < 0.2).count();
        assert!(
            sharp as f64 > 0.8 * rates.len() as f64,
            "WSD workers are accurate: {rates:?}"
        );
    }

    #[test]
    fn both_labels_appear() {
        let d = generate(67);
        let mut seen = [false; 2];
        for resp in d.responses.iter() {
            seen[resp.label.index()] = true;
        }
        assert_eq!(seen, [true, true]);
        assert!(
            d.gold
                .label(crowd_data::TaskId(0))
                .unwrap()
                .valid_for_arity(2)
        );
        let _ = Label(0);
    }
}
