//! The dataset container and triple-selection helpers.

use crowd_data::{GoldStandard, ResponseMatrix, WorkerId, triple_overlap};
use rand::RngExt;

/// A generated stand-in dataset: observable responses plus the gold
/// labels used (as in the paper) to compute empirical worker truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short paper name ("IC", "ENT", ...).
    pub name: &'static str,
    /// The worker responses.
    pub responses: ResponseMatrix,
    /// Gold labels for (a subset of) tasks.
    pub gold: GoldStandard,
}

impl Dataset {
    /// Empirical error rate of a worker against the gold labels — the
    /// paper's proxy for the true error rate on real data.
    pub fn empirical_error_rate(&self, worker: WorkerId) -> Option<f64> {
        self.gold.worker_error_rate(&self.responses, worker)
    }
}

/// Finds up to `max_count` worker triples with at least `threshold`
/// tasks attempted by all three, sampling uniformly at random without
/// replacement — the §IV-C protocol ("choose a random triple of
/// workers that has attempted at least t tasks in common", 50 times).
///
/// Candidate enumeration is capped by scanning pairs in a random order
/// so huge sparse datasets do not cost `O(m³)`.
pub fn triples_with_overlap(
    data: &ResponseMatrix,
    threshold: usize,
    max_count: usize,
    rng: &mut impl RngExt,
) -> Vec<[WorkerId; 3]> {
    let m = data.n_workers();
    let mut workers: Vec<u32> = (0..m as u32).collect();
    // Fisher-Yates shuffle for a random scan order.
    for i in (1..workers.len()).rev() {
        let j = rng.random_range(0..=i as u32) as usize;
        workers.swap(i, j);
    }
    let mut found = Vec::new();
    'outer: for (ai, &a) in workers.iter().enumerate() {
        for (bi, &b) in workers.iter().enumerate().skip(ai + 1) {
            // Cheap pre-filter: pair overlap bounds triple overlap.
            if crowd_data::pair_stats(data, WorkerId(a), WorkerId(b)).common_tasks < threshold {
                continue;
            }
            for &c in workers.iter().skip(bi + 1) {
                let t = triple_overlap(data, WorkerId(a), WorkerId(b), WorkerId(c));
                if t.common_tasks >= threshold {
                    found.push([WorkerId(a), WorkerId(b), WorkerId(c)]);
                    if found.len() >= max_count {
                        break 'outer;
                    }
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
    use crowd_sim::rng;

    fn grouped() -> ResponseMatrix {
        // Two groups of 3 workers; group 0 shares tasks 0..50, group 1
        // shares tasks 50..80.
        let mut b = ResponseMatrixBuilder::new(6, 80, 2);
        for w in 0..3u32 {
            for t in 0..50u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        for w in 3..6u32 {
            for t in 50..80u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_triples_above_threshold() {
        let data = grouped();
        let mut r = rng(5);
        let triples = triples_with_overlap(&data, 40, 10, &mut r);
        assert_eq!(triples.len(), 1, "only group 0 clears 40 common tasks");
        let ws: Vec<u32> = triples[0].iter().map(|w| w.0).collect();
        let mut sorted = ws.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn threshold_30_finds_both_groups() {
        let data = grouped();
        let mut r = rng(6);
        let triples = triples_with_overlap(&data, 30, 10, &mut r);
        assert_eq!(triples.len(), 2);
    }

    #[test]
    fn respects_max_count() {
        let data = grouped();
        let mut r = rng(7);
        let triples = triples_with_overlap(&data, 10, 1, &mut r);
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn impossible_threshold_finds_nothing() {
        let data = grouped();
        let mut r = rng(8);
        assert!(triples_with_overlap(&data, 1000, 5, &mut r).is_empty());
    }
}
