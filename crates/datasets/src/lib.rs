//! Simulated stand-ins for the paper's real crowdsourcing datasets.
//!
//! The evaluation sections test the estimators on six Mechanical-Turk
//! datasets that are not redistributable: **IC** (image comparison,
//! from the authors' KDD'13 paper), **ENT/RTE** and **TEM** (Snow et
//! al., EMNLP 2008), **MOOC** (peer grading), **WSD** (word sense) and
//! **WS** (word similarity). Following the reproduction rules
//! (DESIGN.md §4), this crate generates synthetic datasets that match
//! each original's published *shape* — worker/task counts, sparsity
//! pattern, arity (after the paper's arity-reduction mappings) — and
//! deliberately violate the estimators' assumptions the way real
//! crowds do:
//!
//! * per-task difficulty shifts correlate worker errors,
//! * a fraction of near-spammers (error rate ≈ 1/2) is present,
//! * k-ary workers have biased, non-symmetric confusion matrices.
//!
//! "Truth" is defined exactly as in the paper: the empirical error
//! fraction of each worker against gold labels, via
//! [`crowd_data::GoldStandard`].

mod assemble;
mod block;
mod dataset;
pub mod ent;
pub mod ic;
pub mod mooc;
pub mod tem;
pub mod ws;
pub mod wsd;

pub use block::BlockDesign;
pub use dataset::{Dataset, triples_with_overlap};

/// All six stand-ins with their paper names, for harness iteration.
pub fn binary_datasets(seed: u64) -> Vec<Dataset> {
    vec![
        ic::generate(seed),
        ent::generate(seed ^ 0x5eed_0001),
        tem::generate(seed ^ 0x5eed_0002),
    ]
}

/// The three k-ary stand-ins of Figure 5(c) with their per-dataset
/// triple-overlap thresholds `t` from §IV-C.
pub fn kary_datasets(seed: u64) -> Vec<(Dataset, usize)> {
    vec![
        (mooc::generate(seed ^ 0x5eed_0003), 60),
        (wsd::generate(seed ^ 0x5eed_0004), 100),
        (ws::generate(seed ^ 0x5eed_0005), 30),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_roster_matches_figure_3() {
        let sets = binary_datasets(1);
        let names: Vec<&str> = sets.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["IC", "ENT", "TEM"]);
        for d in &sets {
            assert_eq!(d.responses.arity(), 2);
        }
    }

    #[test]
    fn kary_roster_matches_figure_5c() {
        let sets = kary_datasets(1);
        let names: Vec<(&str, usize)> = sets.iter().map(|(d, t)| (d.name, *t)).collect();
        assert_eq!(names, vec![("MOOC", 60), ("WSD", 100), ("WS", 30)]);
        assert_eq!(sets[0].0.responses.arity(), 3);
        assert_eq!(sets[1].0.responses.arity(), 2);
        assert_eq!(sets[2].0.responses.arity(), 2);
    }
}
