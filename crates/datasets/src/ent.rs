//! ENT/RTE — the textual-entailment stand-in (Snow et al., EMNLP'08).
//!
//! Original: 800 binary sentence-pair tasks ("does the first sentence
//! entail the second?"), 164 workers, ~10 annotations per task, with
//! heavily skewed per-worker activity (a few workers did hundreds of
//! tasks, most did a handful) and a visible population of spammers.

use crate::Dataset;
use crate::assemble::assemble;
use crowd_sim::{DifficultyModel, WorkerModel, rng};
use rand::RngExt;

/// Number of tasks in the original dataset.
pub const N_TASKS: usize = 800;
/// Number of workers in the original dataset.
pub const N_WORKERS: usize = 164;
/// Annotations per task in the original dataset.
pub const LABELS_PER_TASK: usize = 10;

/// Generates the ENT stand-in.
pub fn generate(seed: u64) -> Dataset {
    let mut r = rng(seed);
    // ~12% spammers, the rest with errors in [0.05, 0.35].
    let workers: Vec<WorkerModel> = (0..N_WORKERS)
        .map(|_| {
            if r.random::<f64>() < 0.12 {
                WorkerModel::SymmetricError(0.45 + 0.05 * r.random::<f64>())
            } else {
                WorkerModel::SymmetricError(0.05 + 0.30 * r.random::<f64>())
            }
        })
        .collect();
    let mask = skewed_assignment_mask(N_WORKERS, N_TASKS, LABELS_PER_TASK, &mut r);
    let (responses, gold) = assemble(
        2,
        &[0.5, 0.5],
        &workers,
        DifficultyModel::HalfNormal {
            sigma: 0.06,
            max: 0.25,
        },
        &mask,
        &mut r,
    );
    Dataset {
        name: "ENT",
        responses,
        gold,
    }
}

/// Assigns `labels_per_task` distinct workers to every task, with
/// worker selection probability following a heavy-tailed activity
/// profile (approximate Zipf via weight `1/rank`).
pub(crate) fn skewed_assignment_mask(
    n_workers: usize,
    n_tasks: usize,
    labels_per_task: usize,
    r: &mut impl RngExt,
) -> Vec<Vec<bool>> {
    // Activity weights: worker w gets weight 1/(1 + rank) with ranks
    // shuffled so ids carry no meaning.
    let mut ranks: Vec<usize> = (0..n_workers).collect();
    for i in (1..ranks.len()).rev() {
        let j = r.random_range(0..=i as u32) as usize;
        ranks.swap(i, j);
    }
    let weights: Vec<f64> = ranks
        .iter()
        .map(|&rank| 1.0 / (1.0 + rank as f64))
        .collect();
    let total: f64 = weights.iter().sum();

    let mut mask = vec![vec![false; n_tasks]; n_workers];
    for t in 0..n_tasks {
        let mut chosen = 0usize;
        let mut guard = 0usize;
        while chosen < labels_per_task.min(n_workers) && guard < 10_000 {
            guard += 1;
            // Weighted sample with rejection of duplicates.
            let mut u = r.random::<f64>() * total;
            let mut w = 0usize;
            for (i, &wt) in weights.iter().enumerate() {
                u -= wt;
                if u <= 0.0 {
                    w = i;
                    break;
                }
            }
            if !mask[w][t] {
                mask[w][t] = true;
                chosen += 1;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let d = generate(17);
        assert_eq!(d.responses.n_workers(), N_WORKERS);
        assert_eq!(d.responses.n_tasks(), N_TASKS);
        assert_eq!(d.responses.n_responses(), N_TASKS * LABELS_PER_TASK);
        // Sparse: density ≈ 10/164.
        assert!(d.responses.density() < 0.08);
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let d = generate(19);
        let mut counts: Vec<usize> = d
            .responses
            .workers()
            .map(|w| d.responses.worker_task_count(w))
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The busiest worker did many times the median's work.
        let median = counts[counts.len() / 2].max(1);
        assert!(
            counts[0] > 5 * median,
            "expected heavy tail: top {} vs median {median}",
            counts[0]
        );
    }

    #[test]
    fn every_task_has_the_advertised_labels() {
        let d = generate(23);
        for t in d.responses.tasks() {
            assert_eq!(d.responses.task_responses(t).len(), LABELS_PER_TASK);
        }
    }

    #[test]
    fn spammers_exist() {
        let d = generate(29);
        let spammy = d
            .responses
            .workers()
            .filter_map(|w| d.empirical_error_rate(w))
            .filter(|&p| p > 0.4)
            .count();
        assert!(spammy >= 5, "expected a spammer population, got {spammy}");
    }
}
