//! TEM — the temporal-ordering stand-in (Snow et al., EMNLP'08).
//!
//! Original: 462 binary tasks ("does the event in the first sentence
//! temporally precede the second?"), 76 workers, sparse non-regular
//! assignments. Temporal ordering is the easiest of Snow's tasks —
//! workers are fairly accurate — but difficulty still varies by
//! sentence pair.

use crate::Dataset;
use crate::assemble::assemble;
use crate::ent::skewed_assignment_mask;
use crowd_sim::{DifficultyModel, WorkerModel, rng};
use rand::RngExt;

/// Number of tasks in the original dataset.
pub const N_TASKS: usize = 462;
/// Number of workers in the original dataset.
pub const N_WORKERS: usize = 76;
/// Annotations per task in the original dataset.
pub const LABELS_PER_TASK: usize = 10;

/// Generates the TEM stand-in.
pub fn generate(seed: u64) -> Dataset {
    let mut r = rng(seed);
    let workers: Vec<WorkerModel> = (0..N_WORKERS)
        .map(|_| {
            if r.random::<f64>() < 0.08 {
                WorkerModel::SymmetricError(0.44 + 0.06 * r.random::<f64>())
            } else {
                // Temporal ordering is comparatively easy.
                WorkerModel::SymmetricError(0.04 + 0.22 * r.random::<f64>())
            }
        })
        .collect();
    let mask = skewed_assignment_mask(N_WORKERS, N_TASKS, LABELS_PER_TASK, &mut r);
    let (responses, gold) = assemble(
        2,
        &[0.55, 0.45],
        &workers,
        DifficultyModel::HalfNormal {
            sigma: 0.05,
            max: 0.2,
        },
        &mask,
        &mut r,
    );
    Dataset {
        name: "TEM",
        responses,
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let d = generate(31);
        assert_eq!(d.responses.n_workers(), N_WORKERS);
        assert_eq!(d.responses.n_tasks(), N_TASKS);
        assert_eq!(d.responses.n_responses(), N_TASKS * LABELS_PER_TASK);
        assert!(!d.responses.is_regular());
    }

    #[test]
    fn workers_are_mostly_accurate() {
        let d = generate(37);
        let rates: Vec<f64> = d
            .responses
            .workers()
            .filter_map(|w| d.empirical_error_rate(w))
            .collect();
        let accurate = rates.iter().filter(|&&p| p < 0.3).count();
        assert!(
            accurate as f64 > 0.7 * rates.len() as f64,
            "TEM workers should be mostly accurate"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(3).responses, generate(3).responses);
    }
}
