//! Shared assembly: (models, truths, difficulties, mask) → dataset.

use crowd_data::{GoldStandard, Label, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_sim::{DifficultyModel, WorkerModel};
use rand::RngExt;

/// Samples truths, difficulties and responses and assembles the
/// response matrix. `mask[w][t]` decides attempts.
pub(crate) fn assemble(
    arity: u16,
    selectivity: &[f64],
    workers: &[WorkerModel],
    difficulty: DifficultyModel,
    mask: &[Vec<bool>],
    rng: &mut impl RngExt,
) -> (crowd_data::ResponseMatrix, GoldStandard) {
    let n_tasks = mask.first().map_or(0, Vec::len);
    let truths: Vec<Label> = (0..n_tasks)
        .map(|_| {
            let mut u = rng.random::<f64>();
            for (j, &s) in selectivity.iter().enumerate() {
                u -= s;
                if u <= 0.0 {
                    return Label(j as u16);
                }
            }
            Label(selectivity.len() as u16 - 1)
        })
        .collect();
    let difficulties: Vec<f64> = (0..n_tasks).map(|_| difficulty.sample(rng)).collect();

    let mut b = ResponseMatrixBuilder::new(workers.len(), n_tasks, arity);
    for (w, model) in workers.iter().enumerate() {
        for (t, &truth) in truths.iter().enumerate() {
            if mask[w][t] {
                let label = model.respond(truth, arity, difficulties[t], rng);
                b.push(WorkerId(w as u32), TaskId(t as u32), label)
                    .expect("assembled ids are in range");
            }
        }
    }
    let responses = b
        .build()
        .expect("mask guarantees unique (worker, task) pairs");
    (responses, GoldStandard::complete(truths))
}
