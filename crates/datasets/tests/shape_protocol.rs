//! Dataset-level acceptance tests: every stand-in must match the shape
//! statistics the paper publishes for its real dataset, across seeds —
//! otherwise the Figure 3/4/5c protocols run on the wrong workload.

use crowd_data::WorkerId;
use crowd_datasets::{Dataset, triples_with_overlap};

const SEEDS: [u64; 4] = [1, 77, 2015, 20150413];

fn for_each_seed(generate: fn(u64) -> Dataset, check: impl Fn(&Dataset)) {
    for seed in SEEDS {
        check(&generate(seed));
    }
}

#[test]
fn ic_matches_published_shape() {
    // Paper: 48 binary tasks × 19 workers, regular, then 20% of
    // responses removed for the non-regular experiment.
    for_each_seed(crowd_datasets::ic::generate, |d| {
        assert_eq!(d.responses.n_workers(), 19);
        assert_eq!(d.responses.n_tasks(), 48);
        assert_eq!(d.responses.arity(), 2);
        let full = 19 * 48;
        let removed = full - d.responses.n_responses();
        assert_eq!(removed, full / 5, "exactly 20% removed");
        assert_eq!(d.gold.known_count(), 48);
    });
}

#[test]
fn ent_matches_published_shape_and_plants_spammers() {
    // Paper: 800 binary tasks, 164 workers, ~10 labels per task.
    for_each_seed(crowd_datasets::ent::generate, |d| {
        assert_eq!(d.responses.n_workers(), 164);
        assert_eq!(d.responses.n_tasks(), 800);
        assert_eq!(d.responses.arity(), 2);
        let labels_per_task = d.responses.n_responses() as f64 / 800.0;
        assert!(
            (8.0..=12.0).contains(&labels_per_task),
            "≈10 labels per task, got {labels_per_task:.1}"
        );
        // The stand-in deliberately violates the model with spammers
        // (empirical error rate near 1/2) — the very thing Figure 4's
        // pruning exists for.
        let spammers = d
            .responses
            .workers()
            .filter(|&w| d.empirical_error_rate(w).is_some_and(|p| p > 0.4))
            .count();
        assert!(spammers >= 5, "expected planted spammers, found {spammers}");
    });
}

#[test]
fn tem_matches_published_shape() {
    // Paper: 462 binary tasks, 76 workers, sparse.
    for_each_seed(crowd_datasets::tem::generate, |d| {
        assert_eq!(d.responses.n_workers(), 76);
        assert_eq!(d.responses.n_tasks(), 462);
        assert_eq!(d.responses.arity(), 2);
        assert!(
            d.responses.density() < 0.25,
            "TEM is sparse: {}",
            d.responses.density()
        );
    });
}

#[test]
fn kary_datasets_have_mapped_arities() {
    // MOOC: 6-ary grades mapped to 3-ary; WSD: 3-ary mapped to binary;
    // WS: 11-ary mapped to binary (§IV-C).
    for_each_seed(crowd_datasets::mooc::generate, |d| {
        assert_eq!(d.responses.arity(), 3);
    });
    for_each_seed(crowd_datasets::wsd::generate, |d| {
        assert_eq!(d.responses.arity(), 2);
    });
    for_each_seed(crowd_datasets::ws::generate, |d| {
        assert_eq!(d.responses.arity(), 2);
    });
}

#[test]
fn kary_datasets_clear_the_triple_thresholds() {
    // The §IV-C protocol needs 50 worker triples above each dataset's
    // overlap threshold t (MOOC 60, WSD 100, WS 30).
    type Generator = fn(u64) -> Dataset;
    let cases: [(Generator, usize, &str); 3] = [
        (crowd_datasets::mooc::generate, 60, "MOOC"),
        (crowd_datasets::wsd::generate, 100, "WSD"),
        (crowd_datasets::ws::generate, 30, "WS"),
    ];
    for (generate, threshold, name) in cases {
        let d = generate(11);
        let mut rng = crowd_sim::rng(13);
        let triples = triples_with_overlap(&d.responses, threshold, 50, &mut rng);
        assert_eq!(
            triples.len(),
            50,
            "{name}: need 50 triples above t = {threshold}, found {}",
            triples.len()
        );
        // Triples are distinct worker sets.
        for t in &triples {
            assert_ne!(t[0], t[1]);
            assert_ne!(t[1], t[2]);
            assert_ne!(t[0], t[2]);
        }
    }
}

#[test]
fn ws_is_the_sparsest_kary_dataset() {
    // The paper reduces WS to binary *because* no triple of workers
    // had more than 30 tasks in common; our stand-in preserves that
    // extreme sparsity relative to MOOC/WSD.
    let ws = crowd_datasets::ws::generate(5);
    let wsd = crowd_datasets::wsd::generate(5);
    assert!(
        ws.responses.n_responses() < wsd.responses.n_responses() / 2,
        "WS should be much sparser: {} vs {}",
        ws.responses.n_responses(),
        wsd.responses.n_responses()
    );
}

#[test]
fn empirical_error_rates_are_defined_and_plausible() {
    // Every stand-in: workers with gold-overlapping responses get an
    // empirical error rate in [0, 1), and the bulk of the crowd is
    // better than random.
    let generators: [fn(u64) -> Dataset; 6] = [
        crowd_datasets::ic::generate,
        crowd_datasets::ent::generate,
        crowd_datasets::tem::generate,
        crowd_datasets::mooc::generate,
        crowd_datasets::wsd::generate,
        crowd_datasets::ws::generate,
    ];
    for generate in generators {
        let d = generate(23);
        let rates: Vec<f64> = d
            .responses
            .workers()
            .filter_map(|w| d.empirical_error_rate(w))
            .collect();
        assert!(!rates.is_empty(), "{}: no scorable workers", d.name);
        for &p in &rates {
            assert!((0.0..=1.0).contains(&p), "{}: error rate {p}", d.name);
        }
        let decent = rates.iter().filter(|&&p| p < 0.5).count();
        assert!(
            decent * 3 >= rates.len() * 2,
            "{}: most workers should beat coin flips ({decent}/{})",
            d.name,
            rates.len()
        );
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    for (a, b) in [
        (
            crowd_datasets::ent::generate(99),
            crowd_datasets::ent::generate(99),
        ),
        (
            crowd_datasets::mooc::generate(99),
            crowd_datasets::mooc::generate(99),
        ),
    ] {
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.gold.known_count(), b.gold.known_count());
    }
    // Different seeds differ.
    let a = crowd_datasets::ent::generate(99);
    let b = crowd_datasets::ent::generate(100);
    assert_ne!(a.responses, b.responses);
}

#[test]
fn figure3_protocol_evaluates_most_ic_workers() {
    // End-to-end sanity of the real-data protocol on the densest
    // stand-in: with the overlap floor, nearly every IC worker is
    // evaluable.
    use crowd_core::{EstimatorConfig, MWorkerEstimator};
    let d = crowd_datasets::ic::generate(31);
    let est = MWorkerEstimator::new(EstimatorConfig {
        min_pair_overlap: 10,
        ..EstimatorConfig::clamping()
    });
    let report = est.evaluate_all(&d.responses, 0.9).unwrap();
    assert!(
        report.assessments.len() >= 17,
        "IC is dense; expected ≥17/19 evaluable, got {}",
        report.assessments.len()
    );
    let _ = WorkerId(0);
}
