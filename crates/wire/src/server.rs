//! The blocking TCP server: an acceptor thread feeding
//! thread-per-connection workers, all dispatching onto one shared
//! [`ServiceHandle`].
//!
//! No async runtime — the service behind the socket is itself
//! thread-per-shard with blocking bounded queues, so a blocking
//! connection thread is the natural impedance match: backpressure
//! propagates from a full shard queue through the connection thread
//! straight into TCP flow control.
//!
//! # Lifecycle
//!
//! [`WireServer::bind`] spawns the acceptor and returns immediately.
//! The server stops in two ways:
//!
//! * a client sends `Shutdown` — the service drains and joins its
//!   shards, the final stats go back over that connection, and the
//!   server stops accepting; or
//! * the owner calls [`WireServer::close`] (or drops the server) —
//!   the server stops accepting without touching the service.
//!
//! Either way the drain is graceful: live connections finish their
//! in-flight request, notice the closing flag at their next idle
//! poll (bounded by the read timeout), and exit; the acceptor joins
//! every connection thread before it returns.
//!
//! # Why a connection thread cannot die
//!
//! Every failure on the request path is typed: framing and decode
//! errors become [`WireError`](crate::WireError)s (answered with an
//! error reply when the frame boundary is still trustworthy, a clean
//! close when it is not), and every service failure is a
//! [`ServiceError`] the reply codec carries back whole. The dispatch
//! path contains no `unwrap`/`expect` on request-dependent data.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crowd_obs::LatencyHistogram;
use crowd_service::{FaultPlan, IngestReceipt, ServiceError, ServiceHandle};

use crate::frame::{FrameError, FrameEvent, FrameReader, MAX_FRAME_LEN, write_frame};
use crate::proto::{MetricsReport, OpcodeTimings, Reply, Request, decode_request, encode_reply};

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Connections served concurrently; one past the cap is answered
    /// with a typed error reply and closed.
    pub max_connections: usize,
    /// Socket read timeout. Doubles as the closing-flag poll interval
    /// (an idle connection notices shutdown within one timeout) and as
    /// the stall bound (a peer silent for this long *inside* a frame
    /// is treated as gone).
    pub read_timeout: Duration,
    /// Socket write timeout; a peer that stops reading replies for
    /// this long loses its connection.
    pub write_timeout: Duration,
    /// Largest frame either direction will accept.
    pub max_frame_len: usize,
    /// Record per-opcode frame-handling timings (decode, dispatch,
    /// reply-write), scrapeable through the `Metrics` request. Three
    /// `Instant` reads and three wait-free histogram records per
    /// request; set `false` to serve without server-side timing.
    pub metrics: bool,
    /// Per-session outcomes retained for `IngestBatchSeq`
    /// deduplication: a retried sequence whose outcome has already
    /// aged out of this window gets a typed wire error instead of a
    /// silent (and possibly wrong) replay. A retrying client
    /// re-sends at most its pipeline window, so the default (64)
    /// comfortably covers it.
    pub dedup_window: usize,
    /// Deterministic server-side fault injection
    /// ([`FaultPlan::should_drop`] severs a connection after the
    /// request is applied but before the reply;
    /// [`FaultPlan::reply_delay`] stalls every reply). `None` (the
    /// default) injects nothing; tests and the `scaling_pr10` bench
    /// share plans with the service config.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            max_frame_len: MAX_FRAME_LEN,
            metrics: true,
            dedup_window: 64,
            fault: None,
        }
    }
}

/// One client session's idempotency state; see
/// [`crate::proto::opcode::INGEST_SEQ`].
#[derive(Debug, Default)]
struct SessionState {
    /// The next sequence number this session is expected to send
    /// (1-based; 1 for a fresh session).
    next_seq: u64,
    /// Ring of the most recent `(seq, outcome)` pairs, oldest first,
    /// capped at [`WireConfig::dedup_window`].
    outcomes: VecDeque<(u64, Result<IngestReceipt, ServiceError>)>,
}

/// All sessions the server has seen, shared across connections — a
/// client that reconnects after a drop continues the same session, so
/// the table must outlive any one socket.
type SessionTable = Mutex<HashMap<u64, SessionState>>;

/// Applies one sequenced ingest against the table: apply-and-record
/// for the expected sequence, stored-outcome replay for an
/// already-applied one (the retry path), typed errors for gaps and
/// aged-out retries. The table lock is held across the service call —
/// ingest is already serialized service-side, so this adds no real
/// contention, and it makes apply + record atomic with respect to a
/// concurrent retry on another connection.
fn dispatch_ingest_seq(
    handle: &ServiceHandle,
    sessions: &SessionTable,
    dedup_window: usize,
    session: u64,
    seq: u64,
    batch: &[crowd_data::Response],
) -> Reply {
    let mut table = sessions.lock().unwrap_or_else(|e| e.into_inner());
    let state = table.entry(session).or_insert_with(|| SessionState {
        next_seq: 1,
        outcomes: VecDeque::new(),
    });
    if seq == state.next_seq {
        let outcome = handle.ingest_batch(batch);
        state.next_seq += 1;
        state.outcomes.push_back((seq, outcome.clone()));
        while state.outcomes.len() > dedup_window.max(1) {
            state.outcomes.pop_front();
        }
        return match outcome {
            Ok(r) => Reply::Ingest(r),
            Err(e) => Reply::Err(e),
        };
    }
    if seq < state.next_seq {
        // A retry of something already applied: replay the recorded
        // outcome so the batch lands exactly once.
        return match state.outcomes.iter().find(|(s, _)| *s == seq) {
            Some((_, Ok(r))) => Reply::Ingest(*r),
            Some((_, Err(e))) => Reply::Err(e.clone()),
            None => Reply::Err(ServiceError::Wire(format!(
                "sequence {seq} already applied but its outcome aged out of the dedup window"
            ))),
        };
    }
    Reply::Err(ServiceError::Wire(format!(
        "sequence gap: got {seq}, expected {}",
        state.next_seq
    )))
}

/// One request opcode's live stage histograms.
#[derive(Debug, Default)]
struct OpTimers {
    decode: LatencyHistogram,
    handle: LatencyHistogram,
    write: LatencyHistogram,
}

/// The handling stage a sample belongs to.
#[derive(Debug, Clone, Copy)]
enum WireStage {
    Decode,
    Handle,
    Write,
}

/// Per-opcode frame-handling timers, shared (`Arc`) by every
/// connection thread. Indexed directly by request opcode; opcodes
/// outside the table (unknown, hence un-dispatchable) go untimed.
#[derive(Debug, Default)]
struct ServerTimers {
    ops: [OpTimers; 16],
}

impl ServerTimers {
    /// Records one stage sample; `started` is `Some` iff timing is on.
    fn record(&self, opcode: u8, stage: WireStage, started: Option<Instant>) {
        let (Some(t0), Some(op)) = (started, self.ops.get(opcode as usize)) else {
            return;
        };
        let h = match stage {
            WireStage::Decode => &op.decode,
            WireStage::Handle => &op.handle,
            WireStage::Write => &op.write,
        };
        h.record_duration(t0.elapsed());
    }

    /// Snapshot of every opcode with at least one sample, ascending
    /// by opcode.
    fn snapshot(&self) -> Vec<OpcodeTimings> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.decode.count() > 0 || op.handle.count() > 0 || op.write.count() > 0
            })
            .map(|(i, op)| OpcodeTimings {
                opcode: i as u8,
                decode: op.decode.snapshot(),
                handle: op.handle.snapshot(),
                write: op.write.snapshot(),
            })
            .collect()
    }
}

/// A running wire server; see the [module docs](self) for lifecycle.
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    closing: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` and starts accepting connections against
    /// `handle`'s service. Bind `127.0.0.1:0` to let the OS pick a
    /// port and read it back from [`WireServer::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ServiceHandle,
        config: WireConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let closing = Arc::new(AtomicBool::new(false));
        let timers = config.metrics.then(|| Arc::new(ServerTimers::default()));
        let sessions = Arc::new(SessionTable::default());
        let acceptor = {
            let closing = Arc::clone(&closing);
            std::thread::Builder::new()
                .name("wire-acceptor".into())
                .spawn(move || {
                    accept_loop(
                        listener, local_addr, handle, config, closing, timers, sessions,
                    )
                })?
        };
        Ok(Self {
            local_addr,
            closing,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once the server has begun closing (a `Shutdown` request
    /// arrived or [`WireServer::close`] was called).
    pub fn is_closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    /// Stops accepting, waits for live connections to finish their
    /// in-flight request, and joins every server thread. Does **not**
    /// shut the assessment service down — the service outlives its
    /// transports; use a `Shutdown` request (or the handle) for that.
    pub fn close(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        wake_acceptor(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor's panic would already have detached every
            // connection thread; nothing better to do than carry on.
            let _ = acceptor.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Unblocks a `TcpListener::accept` by connecting to it — the accept
/// loop re-checks its closing flag on every wakeup.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Decrements the live-connection count when a connection thread
/// exits, however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    local_addr: SocketAddr,
    handle: ServiceHandle,
    config: WireConfig,
    closing: Arc<AtomicBool>,
    timers: Option<Arc<ServerTimers>>,
    sessions: Arc<SessionTable>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    // 1-based accept-order ordinal — the connection coordinate the
    // fault plan's drop sites key on.
    let conn_ordinal = AtomicU64::new(0);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Accept errors (EMFILE, aborted handshakes) are
            // per-connection, not fatal to the listener.
            Err(_) => {
                if closing.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if closing.load(Ordering::SeqCst) {
            // Likely the wakeup self-connect; either way, we no
            // longer serve new connections.
            break;
        }
        workers.retain(|h| !h.is_finished());
        if live.load(Ordering::SeqCst) >= config.max_connections {
            refuse_over_capacity(stream, &config);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(Arc::clone(&live));
        let handle = handle.clone();
        let config = config.clone();
        let closing = Arc::clone(&closing);
        let timers = timers.clone();
        let sessions = Arc::clone(&sessions);
        let conn_id = conn_ordinal.fetch_add(1, Ordering::SeqCst) + 1;
        let spawned = std::thread::Builder::new()
            .name("wire-conn".into())
            .spawn(move || {
                let _guard = guard; // moved in; decrements on any exit
                let _ = serve_connection(
                    stream,
                    local_addr,
                    &handle,
                    &config,
                    &closing,
                    timers.as_deref(),
                    &sessions,
                    conn_id,
                );
            });
        // A failed spawn (resource exhaustion) drops the stream —
        // and `guard` went with the closure either way.
        if let Ok(h) = spawned {
            workers.push(h);
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Answers one over-capacity connection with a typed error and closes
/// it, so the client sees *why* instead of a bare RST.
fn refuse_over_capacity(stream: TcpStream, config: &WireConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut w = BufWriter::new(stream);
    let (op, payload) = encode_reply(&Reply::Err(ServiceError::Io(
        "server at connection capacity".into(),
    )));
    let _ = write_frame(&mut w, op, &payload).and_then(|()| w.flush());
}

/// Serves one connection until EOF, a poisoned stream, a transport
/// error, or server shutdown. The `io::Result` is for `?` ergonomics
/// only — connection errors terminate the connection, never the
/// server.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    local_addr: SocketAddr,
    handle: &ServiceHandle,
    config: &WireConfig,
    closing: &AtomicBool,
    timers: Option<&ServerTimers>,
    sessions: &SessionTable,
    conn_id: u64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(stream.try_clone()?, config.max_frame_len);
    let mut writer = BufWriter::new(stream);
    // 1-based request-frame ordinal on this connection — the frame
    // coordinate the fault plan's drop sites key on.
    let mut frame_ordinal = 0u64;
    loop {
        match reader.read() {
            Ok(FrameEvent::Frame { opcode, payload }) => {
                frame_ordinal += 1;
                let t0 = timers.map(|_| Instant::now());
                let decoded = decode_request(opcode, &payload);
                if let Some(t) = timers {
                    t.record(opcode, WireStage::Decode, t0);
                }
                match decoded {
                    Ok(req) => {
                        let t0 = timers.map(|_| Instant::now());
                        let (reply, shut_down) = dispatch(handle, req, timers, sessions, config);
                        if let Some(t) = timers {
                            t.record(opcode, WireStage::Handle, t0);
                        }
                        if let Some(fault) = config.fault.as_deref() {
                            // The ambiguous-outcome window: the request
                            // has been fully applied, the client will
                            // never hear about it. Exactly what the
                            // retrying client's sequence-id dedup must
                            // survive.
                            if fault.should_drop(conn_id, frame_ordinal) {
                                return Ok(());
                            }
                            if let Some(delay) = fault.reply_delay() {
                                std::thread::sleep(delay);
                            }
                        }
                        let t0 = timers.map(|_| Instant::now());
                        send_reply(&mut writer, &reply)?;
                        if let Some(t) = timers {
                            t.record(opcode, WireStage::Write, t0);
                        }
                        if shut_down {
                            closing.store(true, Ordering::SeqCst);
                            wake_acceptor(local_addr);
                        }
                    }
                    // The frame was cleanly delimited; decode failures
                    // are answered, not fatal.
                    Err(e) => {
                        send_reply(&mut writer, &Reply::Err(e.into()))?;
                    }
                }
            }
            Ok(FrameEvent::Idle) => {
                if closing.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Ok(FrameEvent::Eof) => return Ok(()),
            Err(FrameError::Wire(e)) => {
                let poisoned = e.poisons_stream();
                // Best-effort reply either way; on a poisoned stream
                // it is a parting diagnosis before the close.
                let _ = send_reply(&mut writer, &Reply::Err(e.into()));
                if poisoned {
                    return Ok(());
                }
            }
            Err(FrameError::Io(e)) => return Err(e),
        }
    }
}

fn send_reply(writer: &mut BufWriter<TcpStream>, reply: &Reply) -> io::Result<()> {
    let (op, payload) = encode_reply(reply);
    write_frame(writer, op, &payload)?;
    writer.flush()
}

/// Runs one request against the service. Infallible by construction:
/// every service error becomes an error reply. The flag is true when
/// the request was `Shutdown` (the server stops accepting after the
/// reply is sent).
fn dispatch(
    handle: &ServiceHandle,
    req: Request,
    timers: Option<&ServerTimers>,
    sessions: &SessionTable,
    config: &WireConfig,
) -> (Reply, bool) {
    let mut shut_down = false;
    let reply = match req {
        Request::IngestBatch(batch) => handle.ingest_batch(&batch).map(Reply::Ingest),
        Request::IngestBatchSeq {
            session,
            seq,
            batch,
        } => {
            return (
                dispatch_ingest_seq(handle, sessions, config.dedup_window, session, seq, &batch),
                false,
            );
        }
        Request::AssessWorker { worker, confidence } => handle
            .assess_worker(worker, confidence)
            .map(Reply::Assessment),
        Request::AssessWorkers {
            workers,
            confidence,
        } => handle
            .assess_workers(&workers, confidence)
            .map(Reply::Report),
        Request::Snapshot { confidence } => handle.snapshot(confidence).map(Reply::Report),
        Request::Drain => handle.drain().map(|()| Reply::Unit),
        Request::Stats => handle.stats().map(Reply::Stats),
        Request::Shutdown => {
            shut_down = true;
            handle.shutdown().map(Reply::Stats)
        }
        Request::Metrics => handle.metrics().map(|service| {
            Reply::Metrics(MetricsReport {
                service,
                server: timers.map(ServerTimers::snapshot).unwrap_or_default(),
            })
        }),
    };
    (reply.unwrap_or_else(Reply::Err), shut_down)
}
