//! The blocking TCP server: an acceptor thread feeding
//! thread-per-connection workers, all dispatching onto one shared
//! [`ServiceHandle`].
//!
//! No async runtime — the service behind the socket is itself
//! thread-per-shard with blocking bounded queues, so a blocking
//! connection thread is the natural impedance match: backpressure
//! propagates from a full shard queue through the connection thread
//! straight into TCP flow control.
//!
//! # Lifecycle
//!
//! [`WireServer::bind`] spawns the acceptor and returns immediately.
//! The server stops in two ways:
//!
//! * a client sends `Shutdown` — the service drains and joins its
//!   shards, the final stats go back over that connection, and the
//!   server stops accepting; or
//! * the owner calls [`WireServer::close`] (or drops the server) —
//!   the server stops accepting without touching the service.
//!
//! Either way the drain is graceful: live connections finish their
//! in-flight request, notice the closing flag at their next idle
//! poll (bounded by the read timeout), and exit; the acceptor joins
//! every connection thread before it returns.
//!
//! # Why a connection thread cannot die
//!
//! Every failure on the request path is typed: framing and decode
//! errors become [`WireError`](crate::WireError)s (answered with an
//! error reply when the frame boundary is still trustworthy, a clean
//! close when it is not), and every service failure is a
//! [`ServiceError`] the reply codec carries back whole. The dispatch
//! path contains no `unwrap`/`expect` on request-dependent data.

use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crowd_obs::LatencyHistogram;
use crowd_service::{ServiceError, ServiceHandle};

use crate::frame::{FrameError, FrameEvent, FrameReader, MAX_FRAME_LEN, write_frame};
use crate::proto::{MetricsReport, OpcodeTimings, Reply, Request, decode_request, encode_reply};

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Connections served concurrently; one past the cap is answered
    /// with a typed error reply and closed.
    pub max_connections: usize,
    /// Socket read timeout. Doubles as the closing-flag poll interval
    /// (an idle connection notices shutdown within one timeout) and as
    /// the stall bound (a peer silent for this long *inside* a frame
    /// is treated as gone).
    pub read_timeout: Duration,
    /// Socket write timeout; a peer that stops reading replies for
    /// this long loses its connection.
    pub write_timeout: Duration,
    /// Largest frame either direction will accept.
    pub max_frame_len: usize,
    /// Record per-opcode frame-handling timings (decode, dispatch,
    /// reply-write), scrapeable through the `Metrics` request. Three
    /// `Instant` reads and three wait-free histogram records per
    /// request; set `false` to serve without server-side timing.
    pub metrics: bool,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            max_frame_len: MAX_FRAME_LEN,
            metrics: true,
        }
    }
}

/// One request opcode's live stage histograms.
#[derive(Debug, Default)]
struct OpTimers {
    decode: LatencyHistogram,
    handle: LatencyHistogram,
    write: LatencyHistogram,
}

/// The handling stage a sample belongs to.
#[derive(Debug, Clone, Copy)]
enum WireStage {
    Decode,
    Handle,
    Write,
}

/// Per-opcode frame-handling timers, shared (`Arc`) by every
/// connection thread. Indexed directly by request opcode; opcodes
/// outside the table (unknown, hence un-dispatchable) go untimed.
#[derive(Debug, Default)]
struct ServerTimers {
    ops: [OpTimers; 16],
}

impl ServerTimers {
    /// Records one stage sample; `started` is `Some` iff timing is on.
    fn record(&self, opcode: u8, stage: WireStage, started: Option<Instant>) {
        let (Some(t0), Some(op)) = (started, self.ops.get(opcode as usize)) else {
            return;
        };
        let h = match stage {
            WireStage::Decode => &op.decode,
            WireStage::Handle => &op.handle,
            WireStage::Write => &op.write,
        };
        h.record_duration(t0.elapsed());
    }

    /// Snapshot of every opcode with at least one sample, ascending
    /// by opcode.
    fn snapshot(&self) -> Vec<OpcodeTimings> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.decode.count() > 0 || op.handle.count() > 0 || op.write.count() > 0
            })
            .map(|(i, op)| OpcodeTimings {
                opcode: i as u8,
                decode: op.decode.snapshot(),
                handle: op.handle.snapshot(),
                write: op.write.snapshot(),
            })
            .collect()
    }
}

/// A running wire server; see the [module docs](self) for lifecycle.
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    closing: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` and starts accepting connections against
    /// `handle`'s service. Bind `127.0.0.1:0` to let the OS pick a
    /// port and read it back from [`WireServer::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ServiceHandle,
        config: WireConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let closing = Arc::new(AtomicBool::new(false));
        let timers = config.metrics.then(|| Arc::new(ServerTimers::default()));
        let acceptor = {
            let closing = Arc::clone(&closing);
            std::thread::Builder::new()
                .name("wire-acceptor".into())
                .spawn(move || accept_loop(listener, local_addr, handle, config, closing, timers))?
        };
        Ok(Self {
            local_addr,
            closing,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once the server has begun closing (a `Shutdown` request
    /// arrived or [`WireServer::close`] was called).
    pub fn is_closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    /// Stops accepting, waits for live connections to finish their
    /// in-flight request, and joins every server thread. Does **not**
    /// shut the assessment service down — the service outlives its
    /// transports; use a `Shutdown` request (or the handle) for that.
    pub fn close(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        wake_acceptor(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor's panic would already have detached every
            // connection thread; nothing better to do than carry on.
            let _ = acceptor.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Unblocks a `TcpListener::accept` by connecting to it — the accept
/// loop re-checks its closing flag on every wakeup.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Decrements the live-connection count when a connection thread
/// exits, however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: TcpListener,
    local_addr: SocketAddr,
    handle: ServiceHandle,
    config: WireConfig,
    closing: Arc<AtomicBool>,
    timers: Option<Arc<ServerTimers>>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Accept errors (EMFILE, aborted handshakes) are
            // per-connection, not fatal to the listener.
            Err(_) => {
                if closing.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if closing.load(Ordering::SeqCst) {
            // Likely the wakeup self-connect; either way, we no
            // longer serve new connections.
            break;
        }
        workers.retain(|h| !h.is_finished());
        if live.load(Ordering::SeqCst) >= config.max_connections {
            refuse_over_capacity(stream, &config);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(Arc::clone(&live));
        let handle = handle.clone();
        let config = config.clone();
        let closing = Arc::clone(&closing);
        let timers = timers.clone();
        let spawned = std::thread::Builder::new()
            .name("wire-conn".into())
            .spawn(move || {
                let _guard = guard; // moved in; decrements on any exit
                let _ = serve_connection(
                    stream,
                    local_addr,
                    &handle,
                    &config,
                    &closing,
                    timers.as_deref(),
                );
            });
        // A failed spawn (resource exhaustion) drops the stream —
        // and `guard` went with the closure either way.
        if let Ok(h) = spawned {
            workers.push(h);
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Answers one over-capacity connection with a typed error and closes
/// it, so the client sees *why* instead of a bare RST.
fn refuse_over_capacity(stream: TcpStream, config: &WireConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut w = BufWriter::new(stream);
    let (op, payload) = encode_reply(&Reply::Err(ServiceError::Io(
        "server at connection capacity".into(),
    )));
    let _ = write_frame(&mut w, op, &payload).and_then(|()| w.flush());
}

/// Serves one connection until EOF, a poisoned stream, a transport
/// error, or server shutdown. The `io::Result` is for `?` ergonomics
/// only — connection errors terminate the connection, never the
/// server.
fn serve_connection(
    stream: TcpStream,
    local_addr: SocketAddr,
    handle: &ServiceHandle,
    config: &WireConfig,
    closing: &AtomicBool,
    timers: Option<&ServerTimers>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(stream.try_clone()?, config.max_frame_len);
    let mut writer = BufWriter::new(stream);
    loop {
        match reader.read() {
            Ok(FrameEvent::Frame { opcode, payload }) => {
                let t0 = timers.map(|_| Instant::now());
                let decoded = decode_request(opcode, &payload);
                if let Some(t) = timers {
                    t.record(opcode, WireStage::Decode, t0);
                }
                match decoded {
                    Ok(req) => {
                        let t0 = timers.map(|_| Instant::now());
                        let (reply, shut_down) = dispatch(handle, req, timers);
                        if let Some(t) = timers {
                            t.record(opcode, WireStage::Handle, t0);
                        }
                        let t0 = timers.map(|_| Instant::now());
                        send_reply(&mut writer, &reply)?;
                        if let Some(t) = timers {
                            t.record(opcode, WireStage::Write, t0);
                        }
                        if shut_down {
                            closing.store(true, Ordering::SeqCst);
                            wake_acceptor(local_addr);
                        }
                    }
                    // The frame was cleanly delimited; decode failures
                    // are answered, not fatal.
                    Err(e) => {
                        send_reply(&mut writer, &Reply::Err(e.into()))?;
                    }
                }
            }
            Ok(FrameEvent::Idle) => {
                if closing.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Ok(FrameEvent::Eof) => return Ok(()),
            Err(FrameError::Wire(e)) => {
                let poisoned = e.poisons_stream();
                // Best-effort reply either way; on a poisoned stream
                // it is a parting diagnosis before the close.
                let _ = send_reply(&mut writer, &Reply::Err(e.into()));
                if poisoned {
                    return Ok(());
                }
            }
            Err(FrameError::Io(e)) => return Err(e),
        }
    }
}

fn send_reply(writer: &mut BufWriter<TcpStream>, reply: &Reply) -> io::Result<()> {
    let (op, payload) = encode_reply(reply);
    write_frame(writer, op, &payload)?;
    writer.flush()
}

/// Runs one request against the service. Infallible by construction:
/// every service error becomes an error reply. The flag is true when
/// the request was `Shutdown` (the server stops accepting after the
/// reply is sent).
fn dispatch(handle: &ServiceHandle, req: Request, timers: Option<&ServerTimers>) -> (Reply, bool) {
    let mut shut_down = false;
    let reply = match req {
        Request::IngestBatch(batch) => handle.ingest_batch(&batch).map(Reply::Ingest),
        Request::AssessWorker { worker, confidence } => handle
            .assess_worker(worker, confidence)
            .map(Reply::Assessment),
        Request::AssessWorkers {
            workers,
            confidence,
        } => handle
            .assess_workers(&workers, confidence)
            .map(Reply::Report),
        Request::Snapshot { confidence } => handle.snapshot(confidence).map(Reply::Report),
        Request::Drain => handle.drain().map(|()| Reply::Unit),
        Request::Stats => handle.stats().map(Reply::Stats),
        Request::Shutdown => {
            shut_down = true;
            handle.shutdown().map(Reply::Stats)
        }
        Request::Metrics => handle.metrics().map(|service| {
            Reply::Metrics(MetricsReport {
                service,
                server: timers.map(ServerTimers::snapshot).unwrap_or_default(),
            })
        }),
    };
    (reply.unwrap_or_else(Reply::Err), shut_down)
}
