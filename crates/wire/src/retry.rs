//! The retrying client: reconnect + bounded exponential backoff on
//! transport failure, with **exactly-once ingest** over the
//! sequence-id path.
//!
//! [`WireClient`] is deliberately dumb about failure — one connection,
//! and a broken pipeline reports which batches are ambiguous
//! ([`crate::IngestPipelineError`]) but resolves nothing.
//! [`RetryClient`] closes the loop:
//!
//! * **Transport failures retry.** [`ServiceError::Io`] (socket died,
//!   connect refused, reply timed out) and *local*
//!   [`ServiceError::Wire`] failures (a reply frame that would not
//!   decode) tear down the connection, back off with bounded
//!   exponential delay + deterministic jitter, reconnect, and re-send.
//!   Service-side verdicts that arrive as well-formed error replies
//!   are **definitive** and never retried.
//! * **Ingest is idempotent.** Every batch travels as
//!   [`Request::IngestBatchSeq`] under this client's session id and a
//!   monotone sequence number, and a retry re-sends the **same**
//!   sequence number. The server's per-session dedup window replays
//!   the stored outcome if the first attempt actually landed — so a
//!   retry after an ambiguous timeout or a dropped connection ingests
//!   each batch *exactly once*, no matter how many attempts the
//!   transport eats.
//! * **Reads retry freely.** Snapshots, assessments, drains, stats
//!   and metrics are idempotent by construction; re-asking is always
//!   safe.
//!
//! The one contract the caller must hold: after
//! [`RetryClient::ingest_batch`] fails with a transport error (retry
//! budget exhausted), the batch's fate is unknown and the sequence
//! number is **not** advanced — re-call with the *same* batch to
//! resolve it. Substituting a different batch under the pending
//! sequence number would let the server's replayed outcome
//! misattribute it.

use std::net::{SocketAddr, ToSocketAddrs};
use std::thread;
use std::time::{Duration, SystemTime};

use crowd_core::{WorkerAssessment, WorkerReport};
use crowd_data::{Response, WorkerId};
use crowd_service::{IngestReceipt, ServiceError, ServiceStats};

use crate::client::{ClientConfig, WireClient, unexpected};
use crate::proto::{MetricsReport, Reply, Request, encode_request};

/// Tuning for a [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Per-connection tuning, applied on every (re)connect.
    pub client: ClientConfig,
    /// How many times a single request is re-sent after its first
    /// attempt fails with a retryable error.
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter — fixed per client so
    /// tests replay identical schedules.
    pub jitter_seed: u64,
    /// Explicit session id for the idempotent ingest path; `None`
    /// derives one from the wall clock at construction. Reuse an id
    /// across client instances only if they continue the same
    /// sequence numbering.
    pub session: Option<u64>,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            client: ClientConfig::default(),
            max_retries: 8,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x5245_5452_5943, // "RETRYC"
            session: None,
        }
    }
}

/// `splitmix64` — same mixer as the service's fault plan; stateless,
/// good avalanche.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Is this failure the transport's (worth a reconnect) rather than a
/// definitive service verdict? Local I/O and frame/decode failures
/// are; everything the service itself said is not.
fn retryable(e: &ServiceError) -> bool {
    matches!(e, ServiceError::Io(_) | ServiceError::Wire(_))
}

/// A self-healing connection to a [`crate::WireServer`]; see the
/// [module docs](self) for the retry and idempotency contract.
#[derive(Debug)]
pub struct RetryClient {
    addrs: Vec<SocketAddr>,
    config: RetryConfig,
    conn: Option<WireClient>,
    session: u64,
    next_seq: u64,
    /// Monotone jitter counter so successive backoffs draw different
    /// deterministic delays.
    jitter_ordinal: u64,
    reconnects: u64,
    retries: u64,
}

impl RetryClient {
    /// Connects (lazily — the first request dials) with default
    /// [`RetryConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with(addr, RetryConfig::default())
    }

    /// Connects with explicit tuning. Address resolution happens once,
    /// here; reconnects reuse the resolved set.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: RetryConfig,
    ) -> Result<Self, ServiceError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::Io(e.to_string()))?
            .collect();
        if addrs.is_empty() {
            return Err(ServiceError::Io("address resolved to nothing".into()));
        }
        let session = config.session.unwrap_or_else(|| {
            let nanos = SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            splitmix64(nanos ^ std::process::id() as u64)
        });
        Ok(Self {
            addrs,
            config,
            conn: None,
            session,
            next_seq: 1,
            jitter_ordinal: 0,
            reconnects: 0,
            retries: 0,
        })
    }

    /// The session id the idempotent ingest path runs under.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// How many times this client re-dialed the server.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// How many request attempts were retries (beyond each request's
    /// first try).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Ingests one batch **exactly once**: sent as
    /// [`Request::IngestBatchSeq`] with this client's next sequence
    /// number, retried with the *same* number across reconnects so the
    /// server's dedup absorbs any attempt that actually landed.
    ///
    /// A definitive service rejection (e.g.
    /// [`ServiceError::QueueFull`] under a rejecting policy) consumes
    /// the sequence number and returns the error; an exhausted retry
    /// budget leaves the number pending — re-call with the same batch.
    pub fn ingest_batch(&mut self, batch: &[Response]) -> Result<IngestReceipt, ServiceError> {
        let req = Request::IngestBatchSeq {
            session: self.session,
            seq: self.next_seq,
            batch: batch.to_vec(),
        };
        let reply = self.call_retrying(&req)?;
        // Any well-formed reply is a definitive, recorded outcome:
        // the server advanced the session; so do we.
        self.next_seq += 1;
        match reply {
            Reply::Ingest(r) => Ok(r),
            other => Err(unexpected("ingest receipt", &other)),
        }
    }

    /// Ingests one response. Cost: one round trip — batch instead.
    pub fn ingest(&mut self, response: Response) -> Result<IngestReceipt, ServiceError> {
        self.ingest_batch(std::slice::from_ref(&response))
    }

    /// Ingests many batches, each exactly once. One round trip per
    /// batch — the sequenced path trades [`WireClient::ingest_batches`]'
    /// pipelining for a resolved outcome per batch. Definitive
    /// per-batch rejections occupy their slot; a transport failure
    /// that outlives the retry budget aborts with the failing batch
    /// still pending (its index is `result.len()` of the receipts
    /// gathered so far — not recoverable from the error alone, so
    /// resume by re-calling over the remaining batches).
    pub fn ingest_batches(
        &mut self,
        batches: &[Vec<Response>],
    ) -> Result<Vec<Result<IngestReceipt, ServiceError>>, ServiceError> {
        let mut receipts = Vec::with_capacity(batches.len());
        for batch in batches {
            match self.ingest_batch(batch) {
                Ok(r) => receipts.push(Ok(r)),
                Err(e) if retryable(&e) => return Err(e),
                Err(e) => receipts.push(Err(e)),
            }
        }
        Ok(receipts)
    }

    /// Assesses one worker; retried freely (idempotent read).
    pub fn assess_worker(
        &mut self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment, ServiceError> {
        match self.call_definitive(&Request::AssessWorker { worker, confidence })? {
            Reply::Assessment(a) => Ok(a),
            other => Err(unexpected("assessment", &other)),
        }
    }

    /// Assesses an explicit worker set; retried freely.
    pub fn assess_workers(
        &mut self,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport, ServiceError> {
        match self.call_definitive(&Request::AssessWorkers {
            workers: workers.to_vec(),
            confidence,
        })? {
            Reply::Report(r) => Ok(r),
            other => Err(unexpected("report", &other)),
        }
    }

    /// Fleet snapshot; retried freely.
    pub fn snapshot(&mut self, confidence: f64) -> Result<WorkerReport, ServiceError> {
        match self.call_definitive(&Request::Snapshot { confidence })? {
            Reply::Report(r) => Ok(r),
            other => Err(unexpected("report", &other)),
        }
    }

    /// FIFO barrier; retried freely (a re-sent drain is still a
    /// barrier over everything the first one covered).
    pub fn drain(&mut self) -> Result<(), ServiceError> {
        match self.call_definitive(&Request::Drain)? {
            Reply::Unit => Ok(()),
            other => Err(unexpected("ack", &other)),
        }
    }

    /// Fleet counters; retried freely.
    pub fn stats(&mut self) -> Result<ServiceStats, ServiceError> {
        match self.call_definitive(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Full metrics scrape; retried freely.
    pub fn metrics(&mut self) -> Result<MetricsReport, ServiceError> {
        match self.call_definitive(&Request::Metrics)? {
            Reply::Metrics(m) => Ok(m),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Shuts the service down. **Not retried**: after a transport
    /// failure the server may already be gone, and re-dialing a dead
    /// listener would convert a successful shutdown into an error.
    pub fn shutdown(&mut self) -> Result<ServiceStats, ServiceError> {
        let conn = self.ensure_conn()?;
        let (op, payload) = encode_request(&Request::Shutdown);
        conn.send_raw(op, &payload)?;
        match conn.recv()? {
            Reply::Stats(s) => Ok(s),
            Reply::Err(e) => Err(e),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Retrying call that unwraps [`Reply::Err`] into the error
    /// channel (it is a definitive verdict, so unwrapping after the
    /// retry loop is fine).
    fn call_definitive(&mut self, req: &Request) -> Result<Reply, ServiceError> {
        match self.call_retrying(req)? {
            Reply::Err(e) => Err(e),
            reply => Ok(reply),
        }
    }

    /// One logical request: try, and on a retryable transport failure
    /// tear the connection down, back off, reconnect, re-send — up to
    /// [`RetryConfig::max_retries`] times. Returns whatever
    /// well-formed reply eventually arrives (including
    /// [`Reply::Err`]).
    fn call_retrying(&mut self, req: &Request) -> Result<Reply, ServiceError> {
        let (op, payload) = encode_request(req);
        let mut attempt = 0u32;
        loop {
            let outcome = self.try_once(op, &payload);
            match outcome {
                Ok(reply) => return Ok(reply),
                Err(e) if retryable(&e) && attempt < self.config.max_retries => {
                    self.conn = None;
                    self.retries += 1;
                    self.backoff(attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_once(&mut self, op: u8, payload: &[u8]) -> Result<Reply, ServiceError> {
        let conn = self.ensure_conn()?;
        conn.send_raw(op, payload)?;
        conn.recv()
    }

    fn ensure_conn(&mut self) -> Result<&mut WireClient, ServiceError> {
        if self.conn.is_none() {
            let mut last = None;
            for addr in &self.addrs {
                match WireClient::connect_with(addr, self.config.client.clone()) {
                    Ok(c) => {
                        self.conn = Some(c);
                        self.reconnects += 1;
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if self.conn.is_none() {
                return Err(last.unwrap_or_else(|| ServiceError::Io("no addresses".into())));
            }
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Bounded exponential backoff with deterministic jitter: delay
    /// `d = min(base · 2^attempt, max)`, sleep `d/2 + jitter(d/2)`.
    fn backoff(&mut self, attempt: u32) {
        let base = self.config.backoff_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(20));
        let d = exp.min(self.config.backoff_max);
        let half = d / 2;
        self.jitter_ordinal += 1;
        let jitter_nanos = if half.is_zero() {
            0
        } else {
            splitmix64(self.config.jitter_seed ^ self.jitter_ordinal) % half.as_nanos() as u64
        };
        thread::sleep(half + Duration::from_nanos(jitter_nanos));
    }
}
