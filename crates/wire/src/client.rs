//! The blocking client: one TCP connection, request/reply framing,
//! and a window-bounded pipelined ingest path.
//!
//! Every method returns `Result<_, ServiceError>` — service failures
//! arrive over the wire as the same typed taxonomy an in-process
//! caller sees, protocol violations surface as
//! [`ServiceError::Wire`], and socket failures as
//! [`ServiceError::Io`]. Nothing on the client path panics on bytes a
//! peer controls.

use std::fmt;
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::time::Duration;

use crowd_core::{WorkerAssessment, WorkerReport};
use crowd_data::{Response, WorkerId};
use crowd_service::{IngestReceipt, ServiceError, ServiceStats};

use crate::frame::{FrameEvent, FrameReader, MAX_FRAME_LEN, WireError, write_frame};
use crate::proto::{
    MetricsReport, Reply, Request, decode_reply, encode_ingest_batch_payload, encode_request,
    opcode,
};

/// Tuning knobs for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long to wait for a reply before giving up; `None` blocks
    /// indefinitely (the default — assessment latency is the
    /// server's to bound).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Largest reply frame to accept.
    pub max_frame_len: usize,
    /// How many ingest requests [`WireClient::ingest_batches`] keeps
    /// in flight before it starts collecting receipts. Bounds the
    /// bytes parked in the socket pair so a pipelined burst cannot
    /// deadlock against the server's reply stream.
    pub pipeline_window: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(5)),
            max_frame_len: MAX_FRAME_LEN,
            pipeline_window: 32,
        }
    }
}

/// What a mid-pipeline transport failure left behind: which batches
/// the server **definitively** answered, which are **ambiguous**
/// (sent, reply never seen — the server may or may not have applied
/// them), and which were never attempted.
///
/// For a call over `batches[0..n]`:
///
/// * `acked[i]` is the server's verdict on `batches[i]` — applied
///   ([`Ok`]) or definitively rejected ([`Err`], e.g. a
///   [`ServiceError::QueueFull`] under a rejecting policy).
/// * `ambiguous` indexes the batches whose requests went onto the
///   socket but whose replies died with the connection. Re-sending
///   them blindly risks double ingest; resolve them with the
///   sequence-id path ([`crate::RetryClient`]) or an out-of-band
///   count reconciliation.
/// * `self.ambiguous.end..n` were never written — safe to retry.
#[derive(Debug, Clone)]
pub struct IngestPipelineError {
    /// The transport/protocol failure that broke the pipeline.
    pub error: ServiceError,
    /// Per-batch outcomes the server definitively answered, in batch
    /// order (`acked.len() == ambiguous.start`).
    pub acked: Vec<Result<IngestReceipt, ServiceError>>,
    /// Index range of batches with unknown outcome.
    pub ambiguous: Range<usize>,
}

impl fmt::Display for IngestPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest pipeline failed after {} acknowledged batches \
             (batches {}..{} ambiguous): {}",
            self.acked.len(),
            self.ambiguous.start,
            self.ambiguous.end,
            self.error
        )
    }
}

impl std::error::Error for IngestPipelineError {}

impl From<IngestPipelineError> for ServiceError {
    /// Drops the partial-outcome detail, keeping the transport error —
    /// for callers that treat any pipeline failure as fatal.
    fn from(e: IngestPipelineError) -> Self {
        e.error
    }
}

/// A blocking connection to a [`crate::WireServer`].
///
/// Methods take `&mut self` because a connection is one serial
/// request/reply stream; clone-per-thread does not apply — open one
/// client per thread instead (the server is thread-per-connection).
#[derive(Debug)]
pub struct WireClient {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    window: usize,
}

impl WireClient {
    /// Connects with default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit tuning.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(io_err)?;
        stream
            .set_write_timeout(config.write_timeout)
            .map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = FrameReader::new(stream.try_clone().map_err(io_err)?, config.max_frame_len);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            window: config.pipeline_window.max(1),
        })
    }

    /// Ingests one batch. Cost: one round trip.
    pub fn ingest_batch(&mut self, batch: &[Response]) -> Result<IngestReceipt, ServiceError> {
        self.send_raw(opcode::INGEST_BATCH, &encode_ingest_batch_payload(batch))?;
        match self.recv()? {
            Reply::Ingest(r) => Ok(r),
            other => Err(unexpected("ingest receipt", &other)),
        }
    }

    /// Ingests one response. Cost: one round trip — batch instead.
    pub fn ingest(&mut self, response: Response) -> Result<IngestReceipt, ServiceError> {
        self.ingest_batch(std::slice::from_ref(&response))
    }

    /// Ingests many batches with request pipelining: up to
    /// [`ClientConfig::pipeline_window`] requests ride the socket
    /// before the first receipt is collected, so the cost is one
    /// round trip per *window*, not per batch. Receipts come back in
    /// batch order; a per-batch service failure (say,
    /// [`ServiceError::QueueFull`] under a rejecting backpressure
    /// policy) occupies its batch's slot without aborting the rest.
    /// The outer error is transport/protocol failure, and it is
    /// *accountable*: [`IngestPipelineError`] carries every receipt
    /// the server definitively answered before the break plus the
    /// index range of batches whose outcome is ambiguous, so upstream
    /// retry logic knows exactly what is safe to re-send. The
    /// connection stays usable only when `Ok` comes back.
    pub fn ingest_batches(
        &mut self,
        batches: &[Vec<Response>],
    ) -> Result<Vec<Result<IngestReceipt, ServiceError>>, IngestPipelineError> {
        let mut receipts = Vec::with_capacity(batches.len());
        let mut sent = 0;
        while receipts.len() < batches.len() {
            while sent < batches.len() && sent - receipts.len() < self.window {
                let payload = encode_ingest_batch_payload(&batches[sent]);
                if let Err(e) = self.send_raw(opcode::INGEST_BATCH, &payload) {
                    // The write side broke mid-pipeline; collect what
                    // the server already answered, then fail with the
                    // send's error and an honest ambiguous set.
                    self.drain_into(&mut receipts, sent);
                    return Err(pipeline_err(e, receipts, sent));
                }
                sent += 1;
            }
            match self.recv() {
                Ok(Reply::Ingest(r)) => receipts.push(Ok(r)),
                Ok(Reply::Err(e)) => receipts.push(Err(e)),
                Ok(other) => {
                    // Reply-stream desync: nothing past this point can
                    // be attributed to a batch, so everything sent but
                    // unanswered is ambiguous.
                    let e = unexpected("ingest receipt", &other);
                    return Err(pipeline_err(e, receipts, sent));
                }
                Err(e) => return Err(pipeline_err(e, receipts, sent)),
            }
        }
        Ok(receipts)
    }

    /// Assesses one worker. Cost: one round trip; the server answers
    /// from the worker's home shard.
    pub fn assess_worker(
        &mut self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment, ServiceError> {
        match self.call(&Request::AssessWorker { worker, confidence })? {
            Reply::Assessment(a) => Ok(a),
            other => Err(unexpected("assessment", &other)),
        }
    }

    /// Assesses an explicit worker set. Cost: one round trip carrying
    /// the whole report; per-worker estimation failures ride in the
    /// report's `failures`, not the error channel.
    pub fn assess_workers(
        &mut self,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport, ServiceError> {
        match self.call(&Request::AssessWorkers {
            workers: workers.to_vec(),
            confidence,
        })? {
            Reply::Report(r) => Ok(r),
            other => Err(unexpected("report", &other)),
        }
    }

    /// Assesses the whole fleet. Cost: one round trip; the report is
    /// bit-identical to [`crowd_service::ServiceHandle::snapshot`] on
    /// the server.
    pub fn snapshot(&mut self, confidence: f64) -> Result<WorkerReport, ServiceError> {
        match self.call(&Request::Snapshot { confidence })? {
            Reply::Report(r) => Ok(r),
            other => Err(unexpected("report", &other)),
        }
    }

    /// FIFO barrier: returns once every response ingested earlier on
    /// *any* connection is reflected in shard state. Cost: one round
    /// trip plus the server-side drain.
    pub fn drain(&mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Drain)? {
            Reply::Unit => Ok(()),
            other => Err(unexpected("ack", &other)),
        }
    }

    /// Fleet counters. Cost: one round trip.
    pub fn stats(&mut self) -> Result<ServiceStats, ServiceError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Full metrics scrape: the service's stage histograms, journal
    /// tail and counters, plus the wire server's own per-opcode
    /// timings. Cost: one round trip; render with
    /// [`MetricsReport::render_text`] for a Prometheus-style page.
    pub fn metrics(&mut self) -> Result<MetricsReport, ServiceError> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(m) => Ok(m),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Shuts the *service* down and returns its final counters; the
    /// server stops accepting afterwards, and other live connections
    /// see [`ServiceError::ShuttingDown`] on further requests.
    pub fn shutdown(&mut self) -> Result<ServiceStats, ServiceError> {
        match self.call(&Request::Shutdown)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("stats", &other)),
        }
    }

    pub(crate) fn call(&mut self, req: &Request) -> Result<Reply, ServiceError> {
        let (op, payload) = encode_request(req);
        self.send_raw(op, &payload)?;
        self.recv()
    }

    pub(crate) fn send_raw(&mut self, op: u8, payload: &[u8]) -> Result<(), ServiceError> {
        write_frame(&mut self.writer, op, payload).map_err(io_err)
    }

    pub(crate) fn recv(&mut self) -> Result<Reply, ServiceError> {
        self.writer.flush().map_err(io_err)?;
        match self.reader.read() {
            // With a read timeout configured, a boundary timeout
            // while a reply is owed means the server stalled.
            Ok(FrameEvent::Idle) => Err(ServiceError::Io("timed out waiting for a reply".into())),
            Ok(FrameEvent::Eof) => Err(ServiceError::Io("server closed the connection".into())),
            Ok(FrameEvent::Frame { opcode, payload }) => Ok(decode_reply(opcode, &payload)?),
            Err(e) => Err(e.into()),
        }
    }

    /// Best-effort collection of outstanding replies after a
    /// mid-pipeline send failure: every reply still readable is a
    /// definitive verdict and shrinks the ambiguous set; the first
    /// read failure stops (the error the caller sees stays the
    /// send's, not a later desync).
    fn drain_into(&mut self, receipts: &mut Vec<Result<IngestReceipt, ServiceError>>, sent: usize) {
        while receipts.len() < sent {
            match self.recv() {
                Ok(Reply::Ingest(r)) => receipts.push(Ok(r)),
                Ok(Reply::Err(e)) => receipts.push(Err(e)),
                _ => break,
            }
        }
    }
}

fn pipeline_err(
    error: ServiceError,
    acked: Vec<Result<IngestReceipt, ServiceError>>,
    sent: usize,
) -> IngestPipelineError {
    let ambiguous = acked.len()..sent;
    IngestPipelineError {
        error,
        acked,
        ambiguous,
    }
}

pub(crate) fn unexpected(expected: &'static str, got: &Reply) -> ServiceError {
    if let Reply::Err(e) = got {
        return e.clone();
    }
    WireError::UnexpectedReply {
        expected,
        got: got.kind(),
    }
    .into()
}

fn io_err(e: io::Error) -> ServiceError {
    ServiceError::Io(e.to_string())
}
