//! The framing layer: length-prefixed frames and the panic-free
//! primitive codec every payload is built from.
//!
//! A frame on the wire is
//!
//! ```text
//! ┌────────────────┬─────────┬──────────────────┐
//! │ len: u32 LE    │ opcode  │ payload          │
//! │ (opcode+payload│ 1 byte  │ len − 1 bytes    │
//! │  byte count)   │         │                  │
//! └────────────────┴─────────┴──────────────────┘
//! ```
//!
//! All integers are little-endian; `f64` values travel as their IEEE
//! 754 bit patterns (`to_bits`/`from_bits`), which is what makes
//! decoded reports **bit-identical** to the structs the server
//! serialized. Strings are a `u32` byte length followed by UTF-8.
//!
//! Decoding never panics and never reads out of bounds: every failure
//! mode — truncated frame, oversized frame, unknown opcode, malformed
//! payload, trailing bytes — is a typed [`WireError`], so a connection
//! thread can always turn a bad frame into an error reply (or a clean
//! close) instead of dying.

use std::io::{self, Read, Write};

/// Default cap on `len` (opcode + payload bytes) a peer will accept.
/// Large enough for ~1.6M-response ingest batches and fleet-scale
/// reports; small enough that a corrupt length prefix cannot make a
/// peer allocate unbounded memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A protocol-level decoding failure. See the [module docs](self) for
/// which failures poison the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended (or stalled past its timeout) inside a frame.
    Truncated {
        /// Bytes the frame section needed.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The length prefix exceeded the receiver's frame cap.
    FrameTooLarge {
        /// The claimed frame length.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// A frame with `len == 0` — no room for an opcode.
    EmptyFrame,
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// The payload did not parse as the opcode's grammar.
    Malformed {
        /// What the decoder was parsing when it failed.
        what: &'static str,
    },
    /// The payload parsed but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A structurally valid reply of the wrong kind for the request.
    UnexpectedReply {
        /// The reply kind the request called for.
        expected: &'static str,
        /// The reply kind that arrived.
        got: &'static str,
    },
}

impl WireError {
    /// True when the receiver can no longer trust frame boundaries
    /// after this error and must close the connection; false when the
    /// frame was cleanly delimited and the stream can continue after
    /// an error reply.
    pub fn poisons_stream(&self) -> bool {
        matches!(
            self,
            Self::Truncated { .. } | Self::FrameTooLarge { .. } | Self::UnexpectedReply { .. }
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            Self::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            Self::EmptyFrame => write!(f, "empty frame (no opcode)"),
            Self::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            Self::Malformed { what } => write!(f, "malformed payload while decoding {what}"),
            Self::TrailingBytes { extra } => {
                write!(f, "payload has {extra} trailing bytes")
            }
            Self::UnexpectedReply { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for crowd_service::ServiceError {
    fn from(e: WireError) -> Self {
        crowd_service::ServiceError::Wire(e.to_string())
    }
}

/// A framing-layer failure: either the transport broke or the peer
/// violated the protocol.
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure.
    Io(io::Error),
    /// Protocol-level failure.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for crowd_service::ServiceError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => crowd_service::ServiceError::Io(e.to_string()),
            FrameError::Wire(e) => e.into(),
        }
    }
}

/// What one [`FrameReader::read`] call produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame.
    Frame {
        /// The opcode byte.
        opcode: u8,
        /// The payload (frame body after the opcode).
        payload: Vec<u8>,
    },
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// A read timeout expired at a frame boundary with no bytes in
    /// flight — the poll point where a server checks its shutdown
    /// flag. Never produced on sockets without a read timeout.
    Idle,
}

/// Incremental frame reader over any [`Read`].
///
/// Handles split delivery (a frame arriving one byte at a time is
/// reassembled), distinguishes idle timeouts at frame boundaries from
/// stalls inside a frame (the former is [`FrameEvent::Idle`], the
/// latter a hard error — a peer that stops mid-frame for a full
/// timeout is gone), and enforces the frame cap **before** allocating
/// the payload buffer.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    max_frame_len: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a transport with the given frame cap.
    pub fn new(inner: R, max_frame_len: usize) -> Self {
        Self {
            inner,
            max_frame_len,
        }
    }

    /// Reads one frame; see [`FrameEvent`] for the non-frame outcomes.
    pub fn read(&mut self) -> Result<FrameEvent, FrameError> {
        let mut len_buf = [0u8; 4];
        match self.read_section(&mut len_buf, true)? {
            Section::Done => {}
            Section::Eof => return Ok(FrameEvent::Eof),
            Section::Idle => return Ok(FrameEvent::Idle),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len == 0 {
            return Err(FrameError::Wire(WireError::EmptyFrame));
        }
        if len > self.max_frame_len {
            return Err(FrameError::Wire(WireError::FrameTooLarge {
                len,
                max: self.max_frame_len,
            }));
        }
        let mut body = vec![0u8; len];
        match self.read_section(&mut body, false)? {
            Section::Done => {}
            // EOF inside a frame body is a truncation either way.
            Section::Eof | Section::Idle => {
                return Err(FrameError::Wire(WireError::Truncated {
                    expected: len,
                    got: 0,
                }));
            }
        }
        let opcode = body[0];
        body.copy_within(1.., 0);
        body.truncate(len - 1);
        Ok(FrameEvent::Frame {
            opcode,
            payload: body,
        })
    }

    /// Fills `buf`, tolerating arbitrarily split reads. At a frame
    /// boundary (`at_boundary`, zero bytes consumed) a clean EOF or a
    /// timeout is a normal outcome; anywhere else both are protocol
    /// violations.
    fn read_section(&mut self, buf: &mut [u8], at_boundary: bool) -> Result<Section, FrameError> {
        let mut got = 0;
        while got < buf.len() {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) => {
                    return if got == 0 && at_boundary {
                        Ok(Section::Eof)
                    } else {
                        Err(FrameError::Wire(WireError::Truncated {
                            expected: buf.len(),
                            got,
                        }))
                    };
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if got == 0 && at_boundary {
                        return Ok(Section::Idle);
                    }
                    // A full read-timeout of silence mid-frame: the
                    // peer stalled inside a frame; the stream can no
                    // longer be trusted.
                    return Err(FrameError::Io(e));
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(Section::Done)
    }
}

enum Section {
    Done,
    Eof,
    Idle,
}

/// Writes one frame (length prefix, opcode, payload) to `w`. The
/// caller is responsible for flushing buffered writers at
/// request/pipeline boundaries.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload
        .len()
        .checked_add(1)
        .filter(|&l| u32::try_from(l).is_ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame length overflows u32"))?;
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)
}

// ---------------------------------------------------------------------------
// Primitive payload codec.

/// Appends a `u16` (LE).
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` (LE).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (LE).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as `u64` (LE) — the wire is 64-bit regardless of
/// host width.
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends an `f64` as its IEEE 754 bit pattern (LE) — exact, every
/// NaN payload and signed zero included.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a bool as one byte (0 or 1).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Appends a string as `u32` byte length + UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked, panic-free payload reader.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed { what })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u16` (LE).
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `u64` and narrows it to the host's `usize`.
    pub fn usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        usize::try_from(self.u64(what)?).map_err(|_| WireError::Malformed { what })
    }

    /// Reads an `f64` from its bit pattern — exact.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a strict bool (0 or 1; anything else is malformed).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed { what }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed { what })
    }

    /// Reads a `u32` element count and sanity-bounds it: each element
    /// occupies at least `min_elem_bytes`, so a count claiming more
    /// elements than the remaining payload could hold is malformed
    /// (rejecting absurd allocations before they happen).
    pub fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(WireError::Malformed { what });
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::TrailingBytes { extra }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"hello").unwrap();
        assert_eq!(buf.len(), 4 + 1 + 5);
        assert_eq!(&buf[..4], &6u32.to_le_bytes());
        let mut r = FrameReader::new(&buf[..], MAX_FRAME_LEN);
        match r.read().unwrap() {
            FrameEvent::Frame { opcode, payload } => {
                assert_eq!(opcode, 0x42);
                assert_eq!(payload, b"hello");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        assert!(matches!(r.read().unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn zero_length_and_oversized_frames_are_rejected() {
        let zero = 0u32.to_le_bytes();
        let mut r = FrameReader::new(&zero[..], MAX_FRAME_LEN);
        assert!(matches!(
            r.read(),
            Err(FrameError::Wire(WireError::EmptyFrame))
        ));
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut r = FrameReader::new(&huge[..], MAX_FRAME_LEN);
        match r.read() {
            Err(FrameError::Wire(WireError::FrameTooLarge { len, max })) => {
                assert_eq!(len, MAX_FRAME_LEN + 1);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        // Header cut short.
        let mut r = FrameReader::new(&[7u8, 0][..], MAX_FRAME_LEN);
        assert!(matches!(
            r.read(),
            Err(FrameError::Wire(WireError::Truncated { .. }))
        ));
        // Body cut short.
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"abcdef").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = FrameReader::new(&buf[..], MAX_FRAME_LEN);
        assert!(matches!(
            r.read(),
            Err(FrameError::Wire(WireError::Truncated { .. }))
        ));
    }

    /// A reader that yields one byte per call — the worst split-read
    /// schedule a TCP stream can produce.
    struct OneByte<'a>(&'a [u8]);

    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, &[1, 2, 3, 4]).unwrap();
        let mut r = FrameReader::new(OneByte(&buf), MAX_FRAME_LEN);
        match r.read().unwrap() {
            FrameEvent::Frame { opcode, payload } => {
                assert_eq!(opcode, 9);
                assert_eq!(payload, vec![1, 2, 3, 4]);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn cursor_is_bounds_checked() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.u16("x").unwrap(), 0x0201);
        assert!(matches!(c.u32("x"), Err(WireError::Malformed { .. })));
        assert_eq!(c.u8("x").unwrap(), 3);
        assert!(c.finish().is_ok());
        let c = Cursor::new(&[9]);
        assert!(matches!(
            c.finish(),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn count_rejects_absurd_claims() {
        // Claims 2^32-1 elements of ≥ 4 bytes in a 6-byte payload.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX);
        put_u16(&mut payload, 0);
        let mut c = Cursor::new(&payload);
        assert!(matches!(
            c.count(4, "elems"),
            Err(WireError::Malformed { .. })
        ));
    }
}
