//! The protocol grammar: request/reply opcodes and the payload codecs
//! for every type that crosses the wire, including the full
//! [`ServiceError`] taxonomy.
//!
//! # Opcode table
//!
//! | Opcode | Frame            | Payload grammar |
//! |--------|------------------|-----------------|
//! | `0x01` | `IngestBatch`    | `count: u32, count × (worker: u32, task: u32, label: u16)` |
//! | `0x02` | `AssessWorker`   | `worker: u32, confidence: f64` |
//! | `0x03` | `AssessWorkers`  | `count: u32, count × worker: u32, confidence: f64` |
//! | `0x04` | `Snapshot`       | `confidence: f64` |
//! | `0x05` | `Drain`          | empty |
//! | `0x06` | `Stats`          | empty |
//! | `0x07` | `Shutdown`       | empty |
//! | `0x08` | `Metrics`        | empty |
//! | `0x09` | `IngestBatchSeq` | `session: u64, seq: u64,` then the `IngestBatch` grammar |
//! | `0x81` | `OkIngest`       | `routed: u64, shed_batches: u64, shed_responses: u64` |
//! | `0x82` | `OkAssessment`   | one assessment (see below) |
//! | `0x83` | `OkReport`       | `n: u32, n × assessment, k: u32, k × (worker: u32, estimate-error)` |
//! | `0x84` | `OkUnit`         | empty |
//! | `0x85` | `OkStats`        | fleet counters (see [`ServiceStats`]) |
//! | `0x86` | `OkMetrics`      | `enabled: u8, fleet counters, s: u32, s × stage-timings, e: u32, e × event, dropped: u64, o: u32, o × opcode-timings` |
//! | `0xEE` | `Err`            | one tagged [`ServiceError`] |
//!
//! A histogram travels as `count: u64, sum: u64, max: u64` followed
//! by all 64 fixed log₂ bucket counts (`crowd_obs` layout, 536 bytes
//! flat); stage-timings are three histograms (queue-wait,
//! batch-apply, drain-eval); an event is `seq: u64, ts_ns: u64,
//! kind: u8, shard: u32, a: u64, b: u64, label: string`; and
//! opcode-timings are `opcode: u8` plus three histograms (decode,
//! handle, reply-write). Histogram counts are bit-exact `u64`s, so a
//! scraped distribution is byte-identical to the server's.
//!
//! An assessment is `worker: u32, center: f64, half_width: f64,
//! confidence: f64, triples_used: u64, weights_fell_back: u8`; the
//! three `f64`s are IEEE bit patterns, so a decoded report is
//! bit-identical to the one the server serialized.
//!
//! Errors are tagged unions (one `u8` discriminant, then the
//! variant's fields) at three levels: [`ServiceError`] wraps
//! [`DataError`] and [`EstimateError`], which in turn wraps
//! [`crowd_stats::StatsError`]. `&'static str` diagnostic fields
//! travel as strings and are decoded against the small table of
//! values the workspace actually produces (unknown values fall back
//! to a documented generic: `"id"` for id kinds, `"parameter"` for
//! probability names) — everything else round-trips exactly.

use crowd_core::{EstimateError, WorkerAssessment, WorkerReport};
use crowd_data::{DataError, Label, Response, TaskId, WorkerId};
use crowd_obs::{Event, EventKind, HistogramSnapshot, MetricsRegistry};
use crowd_service::{
    BatchHistogram, IngestReceipt, ServiceError, ServiceMetrics, ServiceStats, ShardStats,
    StageTimings,
};
use crowd_stats::{ConfidenceInterval, StatsError};

use crate::frame::{
    Cursor, WireError, put_bool, put_f64, put_str, put_u16, put_u32, put_u64, put_usize,
};

/// The protocol's opcode bytes. Requests use the low range, replies
/// the high; `0xEE` is the error reply.
pub mod opcode {
    /// Ingest a batch of responses.
    pub const INGEST_BATCH: u8 = 0x01;
    /// Assess one worker (binary).
    pub const ASSESS_WORKER: u8 = 0x02;
    /// Assess an explicit worker set (binary).
    pub const ASSESS_WORKERS: u8 = 0x03;
    /// Fleet snapshot (binary).
    pub const SNAPSHOT: u8 = 0x04;
    /// FIFO drain barrier.
    pub const DRAIN: u8 = 0x05;
    /// Fleet counters.
    pub const STATS: u8 = 0x06;
    /// Graceful service shutdown.
    pub const SHUTDOWN: u8 = 0x07;
    /// Full metrics scrape (stats + stage histograms + journal +
    /// server timings).
    pub const METRICS: u8 = 0x08;
    /// Ingest a batch of responses idempotently: the payload leads
    /// with a client session id and a per-session sequence number, and
    /// the server deduplicates — re-sending a sequence the session
    /// already applied replays the stored outcome instead of
    /// re-ingesting. What makes retry-after-ambiguous-timeout safe.
    pub const INGEST_SEQ: u8 = 0x09;
    /// Reply: ingest receipt.
    pub const OK_INGEST: u8 = 0x81;
    /// Reply: one worker assessment.
    pub const OK_ASSESSMENT: u8 = 0x82;
    /// Reply: a worker report (assessments + failures).
    pub const OK_REPORT: u8 = 0x83;
    /// Reply: acknowledged, no body (drain).
    pub const OK_UNIT: u8 = 0x84;
    /// Reply: fleet counters.
    pub const OK_STATS: u8 = 0x85;
    /// Reply: a metrics scrape.
    pub const OK_METRICS: u8 = 0x86;
    /// Reply: a [`crowd_service::ServiceError`].
    pub const ERR: u8 = 0xEE;
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ingest a batch of responses ([`crowd_service::ServiceHandle::ingest_batch`]).
    IngestBatch(Vec<Response>),
    /// Assess one worker ([`crowd_service::ServiceHandle::assess_worker`]).
    AssessWorker {
        /// The worker to evaluate.
        worker: WorkerId,
        /// Confidence level for the interval.
        confidence: f64,
    },
    /// Assess an explicit worker set ([`crowd_service::ServiceHandle::assess_workers`]).
    AssessWorkers {
        /// The workers to evaluate.
        workers: Vec<WorkerId>,
        /// Confidence level for the intervals.
        confidence: f64,
    },
    /// Fleet snapshot ([`crowd_service::ServiceHandle::snapshot`]).
    Snapshot {
        /// Confidence level for the intervals.
        confidence: f64,
    },
    /// FIFO barrier ([`crowd_service::ServiceHandle::drain`]).
    Drain,
    /// Fleet counters ([`crowd_service::ServiceHandle::stats`]).
    Stats,
    /// Graceful shutdown ([`crowd_service::ServiceHandle::shutdown`]);
    /// the reply carries the final counters, and the server stops
    /// accepting connections afterwards.
    Shutdown,
    /// Full metrics scrape ([`crowd_service::ServiceHandle::metrics`]
    /// plus the wire server's own per-opcode timings).
    Metrics,
    /// Idempotent sequenced ingest: like
    /// [`Request::IngestBatch`], but identified by `(session, seq)` so
    /// the server can deduplicate retries (see
    /// [`opcode::INGEST_SEQ`]).
    IngestBatchSeq {
        /// The client's session id (chosen by the client, stable
        /// across reconnects).
        session: u64,
        /// 1-based per-session batch sequence number; must arrive in
        /// order, gaps are rejected.
        seq: u64,
        /// The responses to ingest.
        batch: Vec<Response>,
    },
}

/// The wire server's per-opcode handling-stage timings, one entry per
/// request opcode that has been seen. All values are nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpcodeTimings {
    /// The request opcode these distributions cover.
    pub opcode: u8,
    /// Payload-decode time per frame.
    pub decode: HistogramSnapshot,
    /// Dispatch time (the service call) per request.
    pub handle: HistogramSnapshot,
    /// Reply encode + socket write time per request.
    pub write: HistogramSnapshot,
}

/// A full metrics scrape: the service's metrics plus the wire
/// server's own per-opcode timings.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// The service-side scrape (counters, stage histograms, journal).
    pub service: ServiceMetrics,
    /// Per-opcode server timings, ascending by opcode; opcodes the
    /// server never saw are omitted.
    pub server: Vec<OpcodeTimings>,
}

impl MetricsReport {
    /// Prometheus text exposition of the whole scrape:
    /// [`ServiceMetrics::render_text`] followed by the server's
    /// per-opcode timing histograms
    /// (`crowd_wire_stage_ns{opcode=…,stage=…}`).
    pub fn render_text(&self) -> String {
        let mut text = self.service.render_text();
        let reg = MetricsRegistry::new();
        for t in &self.server {
            let stages: [(&str, &HistogramSnapshot); 3] = [
                ("decode", &t.decode),
                ("handle", &t.handle),
                ("write", &t.write),
            ];
            for (stage, snap) in stages {
                reg.frozen_histogram(
                    &format!(
                        "crowd_wire_stage_ns{{opcode=\"0x{:02x}\",stage=\"{stage}\"}}",
                        t.opcode
                    ),
                    "Wire server per-opcode frame handling time, ns.",
                    snap.clone(),
                );
            }
        }
        text.push_str(&reg.render_text());
        text
    }
}

/// One decoded reply frame.
#[derive(Debug, Clone)]
pub enum Reply {
    /// Receipt for an ingested batch.
    Ingest(IngestReceipt),
    /// One worker's assessment.
    Assessment(WorkerAssessment),
    /// A report over several workers (snapshot / assess-workers).
    Report(WorkerReport),
    /// Acknowledged; no body.
    Unit,
    /// Fleet counters.
    Stats(ServiceStats),
    /// A full metrics scrape.
    Metrics(MetricsReport),
    /// The service (or protocol) failed the request.
    Err(ServiceError),
}

impl Reply {
    /// The reply's kind, for [`WireError::UnexpectedReply`] diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Ingest(_) => "ingest receipt",
            Self::Assessment(_) => "assessment",
            Self::Report(_) => "report",
            Self::Unit => "ack",
            Self::Stats(_) => "stats",
            Self::Metrics(_) => "metrics",
            Self::Err(_) => "error",
        }
    }
}

// ---------------------------------------------------------------------------
// Requests.

/// Encodes an `IngestBatch` payload straight from a borrowed slice —
/// what the client's pipelined ingest path uses so queuing a batch
/// never clones it.
pub fn encode_ingest_batch_payload(batch: &[Response]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + batch.len() * 10);
    put_u32(&mut p, batch.len() as u32);
    for r in batch {
        put_u32(&mut p, r.worker.0);
        put_u32(&mut p, r.task.0);
        put_u16(&mut p, r.label.0);
    }
    p
}

/// Encodes an `IngestBatchSeq` payload from a borrowed slice — the
/// retrying client's pipelined path, like
/// [`encode_ingest_batch_payload`] but led by the `(session, seq)`
/// idempotency key.
pub fn encode_ingest_seq_payload(session: u64, seq: u64, batch: &[Response]) -> Vec<u8> {
    let mut p = Vec::with_capacity(16 + 4 + batch.len() * 10);
    put_u64(&mut p, session);
    put_u64(&mut p, seq);
    put_u32(&mut p, batch.len() as u32);
    for r in batch {
        put_u32(&mut p, r.worker.0);
        put_u32(&mut p, r.task.0);
        put_u16(&mut p, r.label.0);
    }
    p
}

/// Encodes a request as `(opcode, payload)`.
pub fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    match req {
        Request::IngestBatch(batch) => (opcode::INGEST_BATCH, encode_ingest_batch_payload(batch)),
        Request::AssessWorker { worker, confidence } => {
            put_u32(&mut p, worker.0);
            put_f64(&mut p, *confidence);
            (opcode::ASSESS_WORKER, p)
        }
        Request::AssessWorkers {
            workers,
            confidence,
        } => {
            put_u32(&mut p, workers.len() as u32);
            for w in workers {
                put_u32(&mut p, w.0);
            }
            put_f64(&mut p, *confidence);
            (opcode::ASSESS_WORKERS, p)
        }
        Request::Snapshot { confidence } => {
            put_f64(&mut p, *confidence);
            (opcode::SNAPSHOT, p)
        }
        Request::Drain => (opcode::DRAIN, p),
        Request::Stats => (opcode::STATS, p),
        Request::Shutdown => (opcode::SHUTDOWN, p),
        Request::Metrics => (opcode::METRICS, p),
        Request::IngestBatchSeq {
            session,
            seq,
            batch,
        } => (
            opcode::INGEST_SEQ,
            encode_ingest_seq_payload(*session, *seq, batch),
        ),
    }
}

/// Decodes a request frame. Never panics: unknown opcodes, short or
/// oversharing payloads all come back as typed [`WireError`]s.
pub fn decode_request(op: u8, payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let req = match op {
        opcode::INGEST_BATCH => {
            let n = c.count(10, "ingest batch count")?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(Response {
                    worker: WorkerId(c.u32("response worker id")?),
                    task: TaskId(c.u32("response task id")?),
                    label: Label(c.u16("response label")?),
                });
            }
            Request::IngestBatch(batch)
        }
        opcode::ASSESS_WORKER => Request::AssessWorker {
            worker: WorkerId(c.u32("assess worker id")?),
            confidence: c.f64("assess confidence")?,
        },
        opcode::ASSESS_WORKERS => {
            let n = c.count(4, "assess worker count")?;
            let mut workers = Vec::with_capacity(n);
            for _ in 0..n {
                workers.push(WorkerId(c.u32("assess worker id")?));
            }
            Request::AssessWorkers {
                workers,
                confidence: c.f64("assess confidence")?,
            }
        }
        opcode::SNAPSHOT => Request::Snapshot {
            confidence: c.f64("snapshot confidence")?,
        },
        opcode::DRAIN => Request::Drain,
        opcode::STATS => Request::Stats,
        opcode::SHUTDOWN => Request::Shutdown,
        opcode::METRICS => Request::Metrics,
        opcode::INGEST_SEQ => {
            let session = c.u64("ingest session id")?;
            let seq = c.u64("ingest sequence number")?;
            let n = c.count(10, "ingest batch count")?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(Response {
                    worker: WorkerId(c.u32("response worker id")?),
                    task: TaskId(c.u32("response task id")?),
                    label: Label(c.u16("response label")?),
                });
            }
            Request::IngestBatchSeq {
                session,
                seq,
                batch,
            }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Replies.

/// Encodes a reply as `(opcode, payload)`.
pub fn encode_reply(reply: &Reply) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    match reply {
        Reply::Ingest(r) => {
            put_usize(&mut p, r.routed);
            put_usize(&mut p, r.shed_batches);
            put_usize(&mut p, r.shed_responses);
            (opcode::OK_INGEST, p)
        }
        Reply::Assessment(a) => {
            put_assessment(&mut p, a);
            (opcode::OK_ASSESSMENT, p)
        }
        Reply::Report(r) => {
            put_u32(&mut p, r.assessments.len() as u32);
            for a in &r.assessments {
                put_assessment(&mut p, a);
            }
            put_u32(&mut p, r.failures.len() as u32);
            for (w, e) in &r.failures {
                put_u32(&mut p, w.0);
                put_estimate_error(&mut p, e);
            }
            (opcode::OK_REPORT, p)
        }
        Reply::Unit => (opcode::OK_UNIT, p),
        Reply::Stats(s) => {
            put_service_stats(&mut p, s);
            (opcode::OK_STATS, p)
        }
        Reply::Metrics(m) => {
            put_bool(&mut p, m.service.enabled);
            put_service_stats(&mut p, &m.service.stats);
            put_u32(&mut p, m.service.stages.len() as u32);
            for st in &m.service.stages {
                put_stage_timings(&mut p, st);
            }
            put_u32(&mut p, m.service.events.len() as u32);
            for e in &m.service.events {
                put_event(&mut p, e);
            }
            put_u64(&mut p, m.service.events_dropped);
            put_u32(&mut p, m.server.len() as u32);
            for t in &m.server {
                p.push(t.opcode);
                put_histogram(&mut p, &t.decode);
                put_histogram(&mut p, &t.handle);
                put_histogram(&mut p, &t.write);
            }
            (opcode::OK_METRICS, p)
        }
        Reply::Err(e) => {
            put_service_error(&mut p, e);
            (opcode::ERR, p)
        }
    }
}

/// Decodes a reply frame; the exact inverse of [`encode_reply`].
pub fn decode_reply(op: u8, payload: &[u8]) -> Result<Reply, WireError> {
    let mut c = Cursor::new(payload);
    let reply = match op {
        opcode::OK_INGEST => Reply::Ingest(IngestReceipt {
            routed: c.usize("receipt routed")?,
            shed_batches: c.usize("receipt shed batches")?,
            shed_responses: c.usize("receipt shed responses")?,
        }),
        opcode::OK_ASSESSMENT => Reply::Assessment(get_assessment(&mut c)?),
        opcode::OK_REPORT => {
            let n = c.count(29, "report assessment count")?;
            let mut assessments = Vec::with_capacity(n);
            for _ in 0..n {
                assessments.push(get_assessment(&mut c)?);
            }
            let k = c.count(5, "report failure count")?;
            let mut failures = Vec::with_capacity(k);
            for _ in 0..k {
                let w = WorkerId(c.u32("failure worker id")?);
                failures.push((w, get_estimate_error(&mut c)?));
            }
            Reply::Report(WorkerReport {
                assessments,
                failures,
            })
        }
        opcode::OK_UNIT => Reply::Unit,
        opcode::OK_STATS => Reply::Stats(get_service_stats(&mut c)?),
        opcode::OK_METRICS => {
            let enabled = c.bool("metrics enabled flag")?;
            let stats = get_service_stats(&mut c)?;
            let s = c.count(3 * HISTOGRAM_WIRE_BYTES, "metrics stage count")?;
            let mut stages = Vec::with_capacity(s);
            for _ in 0..s {
                stages.push(get_stage_timings(&mut c)?);
            }
            let e = c.count(EVENT_MIN_BYTES, "metrics event count")?;
            let mut events = Vec::with_capacity(e);
            for _ in 0..e {
                events.push(get_event(&mut c)?);
            }
            let events_dropped = c.u64("metrics events dropped")?;
            let o = c.count(1 + 3 * HISTOGRAM_WIRE_BYTES, "metrics opcode count")?;
            let mut server = Vec::with_capacity(o);
            for _ in 0..o {
                server.push(OpcodeTimings {
                    opcode: c.u8("timed opcode")?,
                    decode: get_histogram(&mut c, "opcode decode histogram")?,
                    handle: get_histogram(&mut c, "opcode handle histogram")?,
                    write: get_histogram(&mut c, "opcode write histogram")?,
                });
            }
            Reply::Metrics(MetricsReport {
                service: ServiceMetrics {
                    enabled,
                    stats,
                    stages,
                    events,
                    events_dropped,
                },
                server,
            })
        }
        opcode::ERR => Reply::Err(get_service_error(&mut c)?),
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(reply)
}

fn put_assessment(p: &mut Vec<u8>, a: &WorkerAssessment) {
    put_u32(p, a.worker.0);
    put_f64(p, a.interval.center);
    put_f64(p, a.interval.half_width);
    put_f64(p, a.interval.confidence);
    put_usize(p, a.triples_used);
    put_bool(p, a.weights_fell_back);
}

fn get_assessment(c: &mut Cursor<'_>) -> Result<WorkerAssessment, WireError> {
    Ok(WorkerAssessment {
        worker: WorkerId(c.u32("assessment worker id")?),
        interval: ConfidenceInterval {
            center: c.f64("interval center")?,
            half_width: c.f64("interval half-width")?,
            confidence: c.f64("interval confidence")?,
        },
        triples_used: c.usize("assessment triples")?,
        weights_fell_back: c.bool("assessment weight fallback")?,
    })
}

fn put_service_stats(p: &mut Vec<u8>, s: &ServiceStats) {
    put_u32(p, s.shards.len() as u32);
    for sh in &s.shards {
        put_shard_stats(p, sh);
    }
    put_u64(p, s.submitted);
    put_u64(p, s.dropped_batches);
    put_u64(p, s.dropped_responses);
    for &b in s.batch_sizes.counts() {
        put_u64(p, b);
    }
}

fn get_service_stats(c: &mut Cursor<'_>) -> Result<ServiceStats, WireError> {
    let n = c.count(15 * 8, "stats shard count")?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(get_shard_stats(&mut *c)?);
    }
    let submitted = c.u64("stats submitted")?;
    let dropped_batches = c.u64("stats dropped batches")?;
    let dropped_responses = c.u64("stats dropped responses")?;
    let mut buckets = [0u64; BatchHistogram::BUCKETS];
    for b in &mut buckets {
        *b = c.u64("stats histogram bucket")?;
    }
    Ok(ServiceStats {
        shards,
        submitted,
        dropped_batches,
        dropped_responses,
        batch_sizes: BatchHistogram::from_counts(buckets),
    })
}

/// Flat wire size of one histogram snapshot: count, sum, max, then
/// all [`crowd_obs::BUCKETS`] bucket counts, each 8 bytes.
const HISTOGRAM_WIRE_BYTES: usize = (3 + crowd_obs::BUCKETS) * 8;

/// Minimum wire size of one journal event (empty label).
const EVENT_MIN_BYTES: usize = 8 + 8 + 1 + 4 + 8 + 8 + 4;

fn put_histogram(p: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u64(p, h.count());
    put_u64(p, h.sum());
    put_u64(p, h.max());
    for &b in h.buckets() {
        put_u64(p, b);
    }
}

fn get_histogram(c: &mut Cursor<'_>, what: &'static str) -> Result<HistogramSnapshot, WireError> {
    let count = c.u64(what)?;
    let sum = c.u64(what)?;
    let max = c.u64(what)?;
    let mut buckets = [0u64; crowd_obs::BUCKETS];
    for b in &mut buckets {
        *b = c.u64(what)?;
    }
    Ok(HistogramSnapshot::from_parts(buckets, count, sum, max))
}

fn put_stage_timings(p: &mut Vec<u8>, s: &StageTimings) {
    put_histogram(p, &s.queue_wait);
    put_histogram(p, &s.batch_apply);
    put_histogram(p, &s.drain_eval);
}

fn get_stage_timings(c: &mut Cursor<'_>) -> Result<StageTimings, WireError> {
    Ok(StageTimings {
        queue_wait: get_histogram(c, "queue-wait histogram")?,
        batch_apply: get_histogram(c, "batch-apply histogram")?,
        drain_eval: get_histogram(c, "drain-eval histogram")?,
    })
}

fn put_event(p: &mut Vec<u8>, e: &Event) {
    put_u64(p, e.seq);
    put_u64(p, e.timestamp_ns);
    p.push(e.kind as u8);
    put_u32(p, e.shard);
    put_u64(p, e.a);
    put_u64(p, e.b);
    put_str(p, &e.label);
}

fn get_event(c: &mut Cursor<'_>) -> Result<Event, WireError> {
    Ok(Event {
        seq: c.u64("event seq")?,
        timestamp_ns: c.u64("event timestamp")?,
        kind: EventKind::from_u8(c.u8("event kind")?).ok_or(WireError::Malformed {
            what: "event kind tag",
        })?,
        shard: c.u32("event shard")?,
        a: c.u64("event a")?,
        b: c.u64("event b")?,
        label: c.string("event label")?,
    })
}

fn put_shard_stats(p: &mut Vec<u8>, s: &ShardStats) {
    put_usize(p, s.shard);
    put_u64(p, s.batches);
    put_u64(p, s.responses);
    put_u64(p, s.rejected);
    put_u64(p, s.assess_requests);
    put_usize(p, s.reanchors);
    put_usize(p, s.gram_patches);
    put_usize(p, s.gram_rebuilds);
    put_usize(p, s.queue_high_water);
    put_u64(p, s.cache_hits);
    put_u64(p, s.cache_misses);
    put_u64(p, s.cache_full_refreshes);
    put_u64(p, s.recoveries);
    put_u64(p, s.checkpoints);
    put_u64(p, s.wal_replayed);
}

fn get_shard_stats(c: &mut Cursor<'_>) -> Result<ShardStats, WireError> {
    Ok(ShardStats {
        shard: c.usize("shard id")?,
        batches: c.u64("shard batches")?,
        responses: c.u64("shard responses")?,
        rejected: c.u64("shard rejected")?,
        assess_requests: c.u64("shard assess requests")?,
        reanchors: c.usize("shard reanchors")?,
        gram_patches: c.usize("shard gram patches")?,
        gram_rebuilds: c.usize("shard gram rebuilds")?,
        queue_high_water: c.usize("shard queue high-water")?,
        cache_hits: c.u64("shard cache hits")?,
        cache_misses: c.u64("shard cache misses")?,
        cache_full_refreshes: c.u64("shard cache full refreshes")?,
        recoveries: c.u64("shard recoveries")?,
        checkpoints: c.u64("shard checkpoints")?,
        wal_replayed: c.u64("shard wal replayed")?,
    })
}

// ---------------------------------------------------------------------------
// The error taxonomy, as nested tagged unions.

/// Decodes an id-kind diagnostic back to the statics the workspace
/// uses; unknown values fall back to `"id"`.
fn id_kind(s: &str) -> &'static str {
    match s {
        "worker" => "worker",
        "task" => "task",
        _ => "id",
    }
}

/// Decodes a probability-name diagnostic back to the statics
/// `crowd_stats` uses; unknown values fall back to `"parameter"`.
fn probability_what(s: &str) -> &'static str {
    match s {
        "confidence" => "confidence",
        "quantile argument" => "quantile argument",
        "success fraction" => "success fraction",
        _ => "parameter",
    }
}

/// Appends a [`ServiceError`] as a tagged union.
pub fn put_service_error(p: &mut Vec<u8>, e: &ServiceError) {
    match e {
        ServiceError::QueueFull { shard, dropped } => {
            p.push(0);
            put_usize(p, *shard);
            put_usize(p, *dropped);
        }
        ServiceError::ShuttingDown => p.push(1),
        ServiceError::ShardUnavailable { shard } => {
            p.push(2);
            put_usize(p, *shard);
        }
        ServiceError::ShardPanicked { shard } => {
            p.push(3);
            put_usize(p, *shard);
        }
        ServiceError::Data(d) => {
            p.push(4);
            put_data_error(p, d);
        }
        ServiceError::Estimate(e) => {
            p.push(5);
            put_estimate_error(p, e);
        }
        ServiceError::Wire(msg) => {
            p.push(6);
            put_str(p, msg);
        }
        ServiceError::Io(msg) => {
            p.push(7);
            put_str(p, msg);
        }
    }
}

/// Reads a [`ServiceError`] tagged union.
pub fn get_service_error(c: &mut Cursor<'_>) -> Result<ServiceError, WireError> {
    Ok(match c.u8("service error tag")? {
        0 => ServiceError::QueueFull {
            shard: c.usize("queue-full shard")?,
            dropped: c.usize("queue-full dropped")?,
        },
        1 => ServiceError::ShuttingDown,
        2 => ServiceError::ShardUnavailable {
            shard: c.usize("unavailable shard")?,
        },
        3 => ServiceError::ShardPanicked {
            shard: c.usize("panicked shard")?,
        },
        4 => ServiceError::Data(get_data_error(c)?),
        5 => ServiceError::Estimate(get_estimate_error(c)?),
        6 => ServiceError::Wire(c.string("wire error message")?),
        7 => ServiceError::Io(c.string("io error message")?),
        _ => {
            return Err(WireError::Malformed {
                what: "service error tag",
            });
        }
    })
}

fn put_data_error(p: &mut Vec<u8>, e: &DataError) {
    match e {
        DataError::LabelOutOfRange { label, arity } => {
            p.push(0);
            put_u16(p, *label);
            put_u16(p, *arity);
        }
        DataError::DuplicateResponse { worker, task } => {
            p.push(1);
            put_u32(p, worker.0);
            put_u32(p, task.0);
        }
        DataError::Csv { line, reason } => {
            p.push(2);
            put_usize(p, *line);
            put_str(p, reason);
        }
        DataError::UnknownId { kind, id } => {
            p.push(3);
            put_str(p, kind);
            put_u32(p, *id);
        }
    }
}

fn get_data_error(c: &mut Cursor<'_>) -> Result<DataError, WireError> {
    Ok(match c.u8("data error tag")? {
        0 => DataError::LabelOutOfRange {
            label: c.u16("label value")?,
            arity: c.u16("label arity")?,
        },
        1 => DataError::DuplicateResponse {
            worker: WorkerId(c.u32("duplicate worker")?),
            task: TaskId(c.u32("duplicate task")?),
        },
        2 => DataError::Csv {
            line: c.usize("csv line")?,
            reason: c.string("csv reason")?,
        },
        3 => DataError::UnknownId {
            kind: id_kind(&c.string("id kind")?),
            id: c.u32("unknown id")?,
        },
        _ => {
            return Err(WireError::Malformed {
                what: "data error tag",
            });
        }
    })
}

fn put_estimate_error(p: &mut Vec<u8>, e: &EstimateError) {
    match e {
        EstimateError::InsufficientOverlap { a, b, got, need } => {
            p.push(0);
            put_u32(p, a.0);
            put_u32(p, b.0);
            put_usize(p, *got);
            put_usize(p, *need);
        }
        EstimateError::NotEnoughWorkers { got, need } => {
            p.push(1);
            put_usize(p, *got);
            put_usize(p, *need);
        }
        EstimateError::NoUsableTriples { worker } => {
            p.push(2);
            put_u32(p, worker.0);
        }
        EstimateError::Degenerate { what } => {
            p.push(3);
            put_str(p, what);
        }
        EstimateError::RequiresRegularData => p.push(4),
        EstimateError::Numerical(msg) => {
            p.push(5);
            put_str(p, msg);
        }
        EstimateError::Stats(s) => {
            p.push(6);
            put_stats_error(p, s);
        }
    }
}

fn get_estimate_error(c: &mut Cursor<'_>) -> Result<EstimateError, WireError> {
    Ok(match c.u8("estimate error tag")? {
        0 => EstimateError::InsufficientOverlap {
            a: WorkerId(c.u32("overlap worker a")?),
            b: WorkerId(c.u32("overlap worker b")?),
            got: c.usize("overlap got")?,
            need: c.usize("overlap need")?,
        },
        1 => EstimateError::NotEnoughWorkers {
            got: c.usize("workers got")?,
            need: c.usize("workers need")?,
        },
        2 => EstimateError::NoUsableTriples {
            worker: WorkerId(c.u32("triples worker")?),
        },
        3 => EstimateError::Degenerate {
            what: c.string("degenerate what")?,
        },
        4 => EstimateError::RequiresRegularData,
        5 => EstimateError::Numerical(c.string("numerical message")?),
        6 => EstimateError::Stats(get_stats_error(c)?),
        _ => {
            return Err(WireError::Malformed {
                what: "estimate error tag",
            });
        }
    })
}

fn put_stats_error(p: &mut Vec<u8>, e: &StatsError) {
    match e {
        StatsError::InvalidProbability { value, what } => {
            p.push(0);
            put_f64(p, *value);
            put_str(p, what);
        }
        StatsError::NegativeVariance { variance } => {
            p.push(1);
            put_f64(p, *variance);
        }
        StatsError::DimensionMismatch {
            gradient,
            covariance,
        } => {
            p.push(2);
            put_usize(p, *gradient);
            put_usize(p, *covariance);
        }
        StatsError::SingularCovariance => p.push(3),
        StatsError::InsufficientData { got, need } => {
            p.push(4);
            put_usize(p, *got);
            put_usize(p, *need);
        }
    }
}

fn get_stats_error(c: &mut Cursor<'_>) -> Result<StatsError, WireError> {
    Ok(match c.u8("stats error tag")? {
        0 => StatsError::InvalidProbability {
            value: c.f64("probability value")?,
            what: probability_what(&c.string("probability what")?),
        },
        1 => StatsError::NegativeVariance {
            variance: c.f64("variance value")?,
        },
        2 => StatsError::DimensionMismatch {
            gradient: c.usize("mismatch gradient")?,
            covariance: c.usize("mismatch covariance")?,
        },
        3 => StatsError::SingularCovariance,
        4 => StatsError::InsufficientData {
            got: c.usize("data got")?,
            need: c.usize("data need")?,
        },
        _ => {
            return Err(WireError::Malformed {
                what: "stats error tag",
            });
        }
    })
}
