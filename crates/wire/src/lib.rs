//! `crowd_wire` — a length-prefixed binary TCP protocol, blocking
//! server, and blocking client for the sharded assessment service.
//!
//! The service ([`crowd_service`]) already runs thread-per-shard with
//! bounded blocking queues; this crate puts a socket in front of it
//! without changing that model: a thread-per-connection server
//! ([`WireServer`]) dispatches decoded requests straight onto a
//! shared [`crowd_service::ServiceHandle`], and a blocking client
//! ([`WireClient`]) speaks the same frames from another process. No
//! async runtime anywhere — backpressure propagates from full shard
//! queues through connection threads into TCP flow control.
//!
//! # Frame grammar
//!
//! ```text
//! frame   := len:u32 LE  opcode:u8  payload
//! len     := byte count of opcode + payload  (1 ≤ len ≤ max_frame_len)
//! ```
//!
//! Integers are little-endian, `usize` travels as `u64`, `f64` as its
//! IEEE 754 bit pattern — which is why a report decoded from the wire
//! is **bit-identical** to the struct the server serialized, and why
//! the wire path can be gated on byte equality against the in-process
//! path before any throughput number is trusted. The opcode table and
//! payload grammars live in [`proto`]; the framing rules and failure
//! taxonomy in [`frame`].
//!
//! # Per-request cost
//!
//! | Request | Round trips | Server-side work |
//! |---|---|---|
//! | `IngestBatch` | 1 (amortized 1/window when pipelined) | route + enqueue; shard work is asynchronous |
//! | `AssessWorker` | 1 | one shard answers from its maintained state |
//! | `AssessWorkers` | 1 | home shards of the named workers |
//! | `Snapshot` | 1 | every shard assesses its workers; FIFO drain point |
//! | `Drain` | 1 | barrier across all shard queues |
//! | `Stats` | 1 | counter merge, no estimation |
//! | `Metrics` | 1 | wait-free histogram/journal snapshots + one `Stats` merge |
//! | `Shutdown` | 1 | full drain + shard join; server stops accepting |
//!
//! # Failure model
//!
//! Nothing a peer sends can panic a connection thread, and nothing
//! the service returns is flattened to a string prematurely: the full
//! [`crowd_service::ServiceError`] taxonomy — nested
//! [`crowd_data::DataError`], [`crowd_core::EstimateError`] and
//! [`crowd_stats::StatsError`] included — crosses the wire as typed
//! frames and is rebuilt on the client. Malformed-but-delimited
//! frames get an error reply and the connection lives on; only
//! failures that destroy frame-boundary trust
//! ([`WireError::poisons_stream`]) close it.

pub mod client;
pub mod frame;
pub mod proto;
pub mod retry;
pub mod server;

pub use client::{ClientConfig, IngestPipelineError, WireClient};
pub use frame::{FrameError, FrameEvent, FrameReader, MAX_FRAME_LEN, WireError};
pub use proto::{MetricsReport, OpcodeTimings, Reply, Request};
pub use retry::{RetryClient, RetryConfig};
pub use server::{WireConfig, WireServer};
