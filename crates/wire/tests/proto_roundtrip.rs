//! Property tests on the protocol codec: every request and reply —
//! the full nested error taxonomy included — must survive
//! encode → decode → re-encode with byte-identical output, and no
//! truncation or corruption of a payload may ever panic the decoder.
//!
//! Byte-level (rather than structural) equality is the property that
//! matters: it is what makes over-the-wire reports bit-identical to
//! in-process ones, NaN payloads and signed zeros included, and it
//! holds even for values `PartialEq` would reject (`NaN != NaN`).

use crowd_core::{EstimateError, WorkerAssessment, WorkerReport};
use crowd_data::{DataError, Label, Response, TaskId, WorkerId};
use crowd_obs::{Event, EventKind, HistogramSnapshot};
use crowd_service::{
    BatchHistogram, IngestReceipt, ServiceError, ServiceMetrics, ServiceStats, ShardStats,
    StageTimings,
};
use crowd_stats::{ConfidenceInterval, StatsError};
use crowd_wire::frame::WireError;
use crowd_wire::proto::{decode_reply, decode_request, encode_reply, encode_request, opcode};
use crowd_wire::{MetricsReport, OpcodeTimings, Reply, Request};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies (the vendored proptest has no `prop_oneof`; variants are
// chosen by an integer selector over a tuple of candidate fields).

/// Any `f64` bit pattern worth carrying: ordinary values plus the
/// edge cases bit-exactness is about.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0..10usize, -1.0e6..1.0e6).prop_map(|(sel, v)| match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => f64::MIN_POSITIVE / 2.0,
        _ => v,
    })
}

/// Short strings including multi-byte UTF-8.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0x20u32..0x24F, 0..12).prop_map(|cs| {
        cs.into_iter()
            .map(|c| char::from_u32(c).unwrap_or('?'))
            .collect()
    })
}

fn arb_stats_error() -> impl Strategy<Value = StatsError> {
    (0..5usize, arb_f64(), 0..3usize, (0..100usize, 0..100usize)).prop_map(
        |(sel, v, what, (a, b))| match sel {
            0 => StatsError::InvalidProbability {
                value: v,
                what: ["confidence", "quantile argument", "success fraction"][what],
            },
            1 => StatsError::NegativeVariance { variance: v },
            2 => StatsError::DimensionMismatch {
                gradient: a,
                covariance: b,
            },
            3 => StatsError::SingularCovariance,
            _ => StatsError::InsufficientData { got: a, need: b },
        },
    )
}

fn arb_estimate_error() -> impl Strategy<Value = EstimateError> {
    (
        0..7usize,
        (0..500u32, 0..500u32, 0..50usize, 0..50usize),
        arb_string(),
        arb_stats_error(),
    )
        .prop_map(|(sel, (w1, w2, got, need), s, st)| match sel {
            0 => EstimateError::InsufficientOverlap {
                a: WorkerId(w1),
                b: WorkerId(w2),
                got,
                need,
            },
            1 => EstimateError::NotEnoughWorkers { got, need },
            2 => EstimateError::NoUsableTriples {
                worker: WorkerId(w1),
            },
            3 => EstimateError::Degenerate { what: s },
            4 => EstimateError::RequiresRegularData,
            5 => EstimateError::Numerical(s),
            _ => EstimateError::Stats(st),
        })
}

fn arb_data_error() -> impl Strategy<Value = DataError> {
    (
        0..4usize,
        (0..16u16, 1..16u16),
        (0..500u32, 0..500u32),
        0..10_000usize,
        arb_string(),
    )
        .prop_map(|(sel, (label, arity), (w, t), line, s)| match sel {
            0 => DataError::LabelOutOfRange { label, arity },
            1 => DataError::DuplicateResponse {
                worker: WorkerId(w),
                task: TaskId(t),
            },
            2 => DataError::Csv { line, reason: s },
            _ => DataError::UnknownId {
                kind: ["worker", "task"][line % 2],
                id: w,
            },
        })
}

fn arb_service_error() -> impl Strategy<Value = ServiceError> {
    (
        0..8usize,
        (0..64usize, 0..10_000usize),
        arb_data_error(),
        arb_estimate_error(),
        arb_string(),
    )
        .prop_map(|(sel, (shard, dropped), d, e, s)| match sel {
            0 => ServiceError::QueueFull { shard, dropped },
            1 => ServiceError::ShuttingDown,
            2 => ServiceError::ShardUnavailable { shard },
            3 => ServiceError::ShardPanicked { shard },
            4 => ServiceError::Data(d),
            5 => ServiceError::Estimate(e),
            6 => ServiceError::Wire(s),
            _ => ServiceError::Io(s),
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (0..500u32, 0..500u32, 0..8u16).prop_map(|(w, t, l)| Response {
        worker: WorkerId(w),
        task: TaskId(t),
        label: Label(l),
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0..9usize,
        proptest::collection::vec(arb_response(), 0..50),
        proptest::collection::vec(0..500u32, 0..20),
        arb_f64(),
        (0..u64::MAX / 2, 1..u64::MAX / 2),
    )
        .prop_map(
            |(sel, batch, workers, confidence, (session, seq))| match sel {
                0 => Request::IngestBatch(batch),
                1 => Request::AssessWorker {
                    worker: WorkerId(workers.first().copied().unwrap_or(7)),
                    confidence,
                },
                2 => Request::AssessWorkers {
                    workers: workers.into_iter().map(WorkerId).collect(),
                    confidence,
                },
                3 => Request::Snapshot { confidence },
                4 => Request::Drain,
                5 => Request::Stats,
                6 => Request::Shutdown,
                7 => Request::IngestBatchSeq {
                    session,
                    seq,
                    batch,
                },
                _ => Request::Metrics,
            },
        )
}

fn arb_assessment() -> impl Strategy<Value = WorkerAssessment> {
    (
        0..500u32,
        (arb_f64(), arb_f64(), arb_f64()),
        0..100_000usize,
        any::<bool>(),
    )
        .prop_map(
            |(w, (center, half_width, confidence), triples, fb)| WorkerAssessment {
                worker: WorkerId(w),
                interval: ConfidenceInterval {
                    center,
                    half_width,
                    confidence,
                },
                triples_used: triples,
                weights_fell_back: fb,
            },
        )
}

fn arb_report() -> impl Strategy<Value = WorkerReport> {
    (
        proptest::collection::vec(arb_assessment(), 0..10),
        proptest::collection::vec((0..500u32, arb_estimate_error()), 0..6),
    )
        .prop_map(|(assessments, failures)| WorkerReport {
            assessments,
            failures: failures
                .into_iter()
                .map(|(w, e)| (WorkerId(w), e))
                .collect(),
        })
}

fn arb_shard_stats() -> impl Strategy<Value = ShardStats> {
    proptest::collection::vec(0..u64::MAX / 2, 15).prop_map(|v| ShardStats {
        shard: v[0] as usize % 64,
        batches: v[1],
        responses: v[2],
        rejected: v[3],
        assess_requests: v[4],
        reanchors: v[5] as usize,
        gram_patches: v[6] as usize,
        gram_rebuilds: v[7] as usize,
        queue_high_water: v[8] as usize,
        cache_hits: v[9],
        cache_misses: v[10],
        cache_full_refreshes: v[11],
        recoveries: v[12],
        checkpoints: v[13],
        wal_replayed: v[14],
    })
}

fn arb_service_stats() -> impl Strategy<Value = ServiceStats> {
    (
        proptest::collection::vec(arb_shard_stats(), 0..6),
        proptest::collection::vec(0..1_000_000u64, 12),
        (0..1_000_000u64, 0..1_000u64, 0..1_000u64),
    )
        .prop_map(|(shards, buckets, (submitted, db, dr))| {
            let mut counts = [0u64; BatchHistogram::BUCKETS];
            counts.copy_from_slice(&buckets);
            ServiceStats {
                shards,
                submitted,
                dropped_batches: db,
                dropped_responses: dr,
                batch_sizes: BatchHistogram::from_counts(counts),
            }
        })
}

/// Arbitrary histogram snapshots. The wire carries count/sum/max and
/// the buckets verbatim, so they need no mutual consistency here —
/// byte identity is the property, not statistics.
fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(0..u64::MAX / 2, crowd_obs::BUCKETS),
        (0..u64::MAX / 2, 0..u64::MAX / 2, 0..u64::MAX / 2),
    )
        .prop_map(|(b, (count, sum, max))| {
            let mut buckets = [0u64; crowd_obs::BUCKETS];
            buckets.copy_from_slice(&b);
            HistogramSnapshot::from_parts(buckets, count, sum, max)
        })
}

fn arb_stage_timings() -> impl Strategy<Value = StageTimings> {
    (arb_histogram(), arb_histogram(), arb_histogram()).prop_map(|(q, ba, de)| StageTimings {
        queue_wait: q,
        batch_apply: ba,
        drain_eval: de,
    })
}

/// Journal events with every kind tag and multi-byte UTF-8 labels.
fn arb_event() -> impl Strategy<Value = Event> {
    (
        (0..u64::MAX / 2, 0..u64::MAX / 2),
        0..8u16,
        (0..500u32, any::<bool>()),
        (0..u64::MAX / 2, 0..u64::MAX / 2),
        arb_string(),
    )
        .prop_map(|((seq, ts), kind, (shard, fleet), (a, b), label)| Event {
            seq,
            timestamp_ns: ts,
            kind: EventKind::from_u8(kind as u8).expect("all kind tags covered"),
            shard: if fleet { crowd_obs::NO_SHARD } else { shard },
            a,
            b,
            label,
        })
}

fn arb_metrics_report() -> impl Strategy<Value = MetricsReport> {
    (
        (any::<bool>(), 0..1_000u64),
        arb_service_stats(),
        proptest::collection::vec(arb_stage_timings(), 0..3),
        proptest::collection::vec(arb_event(), 0..5),
        proptest::collection::vec((0..16u16, arb_stage_timings()), 0..3),
    )
        .prop_map(
            |((enabled, dropped), stats, stages, events, server)| MetricsReport {
                service: ServiceMetrics {
                    enabled,
                    stats,
                    stages,
                    events,
                    events_dropped: dropped,
                },
                server: server
                    .into_iter()
                    .map(|(op, t)| OpcodeTimings {
                        opcode: op as u8,
                        decode: t.queue_wait,
                        handle: t.batch_apply,
                        write: t.drain_eval,
                    })
                    .collect(),
            },
        )
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0..7usize,
        (0..100_000usize, 0..100usize, 0..100usize),
        arb_assessment(),
        (arb_report(), arb_service_stats(), arb_service_error()),
        arb_metrics_report(),
    )
        .prop_map(
            |(sel, (routed, sb, sr), a, (report, stats, err), metrics)| match sel {
                0 => Reply::Ingest(IngestReceipt {
                    routed,
                    shed_batches: sb,
                    shed_responses: sr,
                }),
                1 => Reply::Assessment(a),
                2 => Reply::Report(report),
                3 => Reply::Unit,
                4 => Reply::Stats(stats),
                5 => Reply::Metrics(metrics),
                _ => Reply::Err(err),
            },
        )
}

// ---------------------------------------------------------------------------
// Properties.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip_byte_identically(req in arb_request()) {
        let (op, payload) = encode_request(&req);
        let decoded = decode_request(op, &payload).expect("encoder output must decode");
        let (op2, payload2) = encode_request(&decoded);
        prop_assert_eq!(op, op2);
        prop_assert_eq!(payload, payload2);
    }

    #[test]
    fn replies_roundtrip_byte_identically(reply in arb_reply()) {
        let (op, payload) = encode_reply(&reply);
        let decoded = decode_reply(op, &payload).expect("encoder output must decode");
        let (op2, payload2) = encode_reply(&decoded);
        prop_assert_eq!(op, op2);
        prop_assert_eq!(payload, payload2);
    }

    #[test]
    fn truncated_request_payloads_are_typed_errors(req in arb_request(), frac in 0.0..1.0f64) {
        let (op, payload) = encode_request(&req);
        prop_assume!(!payload.is_empty());
        let cut = ((payload.len() as f64) * frac) as usize;
        let r = decode_request(op, &payload[..cut.min(payload.len() - 1)]);
        prop_assert!(r.is_err(), "strict prefix decoded: {r:?}");
    }

    #[test]
    fn truncated_reply_payloads_are_typed_errors(reply in arb_reply(), frac in 0.0..1.0f64) {
        let (op, payload) = encode_reply(&reply);
        prop_assume!(!payload.is_empty());
        let cut = ((payload.len() as f64) * frac) as usize;
        let r = decode_reply(op, &payload[..cut.min(payload.len() - 1)]);
        prop_assert!(r.is_err(), "strict prefix decoded: {r:?}");
    }

    #[test]
    fn corrupted_bytes_never_panic_the_decoder(
        op in 0..=255u32,
        bytes in proptest::collection::vec(0..=255u32, 0..200),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        // Outcome irrelevant; the property is "returns instead of
        // panicking" on arbitrary input.
        let _ = decode_request(op as u8, &bytes);
        let _ = decode_reply(op as u8, &bytes);
    }

    #[test]
    fn trailing_bytes_are_rejected(req in arb_request(), extra in 1..16usize) {
        let (op, mut payload) = encode_request(&req);
        payload.extend(std::iter::repeat_n(0u8, extra));
        let r = decode_request(op, &payload);
        // Most grammars report the exact overhang; variable-length
        // ones may diagnose it as malformation mid-payload instead.
        prop_assert!(r.is_err(), "oversharing payload decoded: {r:?}");
    }
}

// ---------------------------------------------------------------------------
// Targeted cases the properties subsume but the reader should see.

#[test]
fn unknown_opcodes_are_rejected_by_both_decoders() {
    assert_eq!(
        decode_request(0x7f, &[]),
        Err(WireError::UnknownOpcode(0x7f))
    );
    assert!(matches!(
        decode_reply(0x02, &[]),
        Err(WireError::UnknownOpcode(0x02))
    ));
}

#[test]
fn the_full_error_taxonomy_roundtrips_structurally() {
    let cases = vec![
        ServiceError::QueueFull {
            shard: 3,
            dropped: 41,
        },
        ServiceError::ShuttingDown,
        ServiceError::ShardUnavailable { shard: 7 },
        ServiceError::ShardPanicked { shard: 2 },
        ServiceError::Data(DataError::UnknownId {
            kind: "worker",
            id: 999,
        }),
        ServiceError::Estimate(EstimateError::Stats(StatsError::InvalidProbability {
            value: 1.5,
            what: "confidence",
        })),
        ServiceError::Wire("truncated frame: needed 8 bytes, got 3".into()),
        ServiceError::Io("connection reset by peer".into()),
    ];
    for e in cases {
        let (op, payload) = encode_reply(&Reply::Err(e.clone()));
        assert_eq!(op, opcode::ERR);
        match decode_reply(op, &payload).unwrap() {
            Reply::Err(back) => assert_eq!(back, e),
            other => panic!("expected an error reply, got {other:?}"),
        }
    }
}

#[test]
fn unknown_static_str_diagnostics_fall_back_documentedly() {
    // A hand-built frame claiming an id kind this workspace never
    // produces must decode to the documented fallback, not panic or
    // leak a fabricated 'static reference.
    let mut payload = vec![4u8, 3u8]; // ServiceError::Data, DataError::UnknownId
    payload.extend_from_slice(&7u32.to_le_bytes()); // kind string length
    payload.extend_from_slice(b"gremlin");
    payload.extend_from_slice(&42u32.to_le_bytes());
    match decode_reply(opcode::ERR, &payload).unwrap() {
        Reply::Err(ServiceError::Data(DataError::UnknownId { kind, id })) => {
            assert_eq!(kind, "id");
            assert_eq!(id, 42);
        }
        other => panic!("unexpected decode: {other:?}"),
    }
}

#[test]
fn metrics_request_is_an_empty_payload() {
    let (op, payload) = encode_request(&Request::Metrics);
    assert_eq!(op, opcode::METRICS);
    assert!(payload.is_empty());
    assert_eq!(decode_request(op, &payload), Ok(Request::Metrics));
}

#[test]
fn unknown_event_kind_tags_are_typed_errors() {
    // A metrics reply whose journal carries a kind tag this build
    // does not know must decode to a typed error, not a panic and not
    // a fabricated kind.
    let reply = Reply::Metrics(MetricsReport {
        service: ServiceMetrics {
            enabled: true,
            stats: ServiceStats::default(),
            stages: vec![],
            events: vec![Event {
                seq: 0,
                timestamp_ns: 1,
                kind: EventKind::SlowOp,
                shard: 3,
                a: 9,
                b: 2,
                label: "drain_eval".into(),
            }],
            events_dropped: 0,
        },
        server: vec![],
    });
    let (op, mut payload) = encode_reply(&reply);
    assert_eq!(op, opcode::OK_METRICS);
    // Offset of the event's kind byte: enabled + empty stats (shard
    // count + three fleet counters + 12 batch buckets) + stage count
    // + event count + seq + timestamp.
    let kind_at = 1 + (4 + 3 * 8 + BatchHistogram::BUCKETS * 8) + 4 + 4 + 8 + 8;
    assert_eq!(payload[kind_at], EventKind::SlowOp as u8);
    payload[kind_at] = 0xFF;
    assert!(matches!(
        decode_reply(op, &payload),
        Err(WireError::Malformed {
            what: "event kind tag"
        })
    ));
}

#[test]
fn nan_intervals_cross_the_wire_bit_exactly() {
    let quiet = f64::from_bits(0x7ff8_0000_0000_1234);
    let a = WorkerAssessment {
        worker: WorkerId(5),
        interval: ConfidenceInterval {
            center: quiet,
            half_width: -0.0,
            confidence: 0.95,
        },
        triples_used: 12,
        weights_fell_back: false,
    };
    let (op, payload) = encode_reply(&Reply::Assessment(a));
    match decode_reply(op, &payload).unwrap() {
        Reply::Assessment(b) => {
            assert_eq!(b.interval.center.to_bits(), 0x7ff8_0000_0000_1234);
            assert_eq!(b.interval.half_width.to_bits(), (-0.0f64).to_bits());
        }
        other => panic!("unexpected decode: {other:?}"),
    }
}
