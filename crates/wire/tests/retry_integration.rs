//! The retry/idempotency contract over real sockets under
//! deterministic fault injection: a [`RetryClient`] driven through
//! server-side connection drops ([`FaultPlan::should_drop`] severs
//! after apply, before reply — the ambiguous window) must ingest each
//! batch **exactly once**, proven by bit-identity against a fault-free
//! twin. Raw-frame tests pin the sequence-dedup grammar itself:
//! replayed outcomes, rejected gaps, aged-out sequences.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use crowd_data::{Label, Response, TaskId, WorkerId};
use crowd_service::{AssessmentService, FaultPlan, ServiceConfig, ServiceError, ServiceHandle};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryInstance, BinaryScenario, rng};
use crowd_wire::frame::{FrameEvent, FrameReader, write_frame};
use crowd_wire::proto::{encode_ingest_seq_payload, encode_reply, opcode};
use crowd_wire::{MAX_FRAME_LEN, Reply, RetryClient, RetryConfig, WireConfig, WireServer};

const CONFIDENCE: f64 = 0.9;

fn test_config() -> WireConfig {
    WireConfig {
        read_timeout: Duration::from_millis(50),
        ..WireConfig::default()
    }
}

/// Millisecond-scale backoff so fault-heavy tests stay fast, and a
/// pinned session id so runs are reproducible.
fn fast_retry() -> RetryConfig {
    RetryConfig {
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(10),
        session: Some(42),
        ..RetryConfig::default()
    }
}

fn fleet(n_shards: usize, seed: u64) -> (BinaryInstance, AssessmentService) {
    let inst = BinaryScenario::paper_default(12, 60, 0.85).generate(&mut rng(seed));
    let data = inst.responses();
    let plan = ShardPlan::build_clustered(data, n_shards);
    let service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    (inst, service)
}

fn serve_with(handle: ServiceHandle, config: WireConfig) -> WireServer {
    WireServer::bind("127.0.0.1:0", handle, config).expect("bind loopback")
}

/// A raw frame-level connection for driving the `INGEST_SEQ` grammar
/// directly (the typed clients deliberately manage sequence numbers
/// themselves).
struct RawConn {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl RawConn {
    fn open(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = FrameReader::new(stream.try_clone().expect("clone"), MAX_FRAME_LEN);
        Self { stream, reader }
    }

    fn call(&mut self, op: u8, payload: &[u8]) -> Reply {
        write_frame(&mut self.stream, op, payload).expect("write frame");
        match self.reader.read().expect("read reply") {
            FrameEvent::Frame { opcode, payload } => {
                crowd_wire::proto::decode_reply(opcode, &payload).expect("decode reply")
            }
            other => panic!("expected a reply frame, got {other:?}"),
        }
    }
}

fn batch(n: u32) -> Vec<Response> {
    (0..n)
        .map(|i| Response {
            worker: WorkerId(i % 4),
            task: TaskId(i % 8),
            label: Label((i % 2) as u16),
        })
        .collect()
}

/// The acceptance gate: explicit drop sites sever the connection right
/// after the server applies an ingest — the client's reply never
/// arrives — and the retry (same sequence number, new connection) must
/// be absorbed by dedup. Exactly-once is proven the strong way: the
/// faulted fleet's final snapshot re-encodes to the same bytes as a
/// never-dropped twin fed the same batches.
#[test]
fn retry_after_dropped_connection_ingests_exactly_once() {
    let (inst, faulted) = fleet(2, 910);
    let (_, mut twin) = fleet(2, 910);
    let data = inst.responses();

    // Connection 1's 2nd frame and connection 2's 4th frame are
    // dropped after apply: two ambiguous outcomes, two forced
    // reconnects, two dedup replays.
    let fault = Arc::new(FaultPlan::seeded(5).with_drop_at(1, 2).with_drop_at(2, 4));
    let mut server = serve_with(
        faulted.handle(),
        WireConfig {
            fault: Some(fault),
            ..test_config()
        },
    );
    let mut client = RetryClient::connect_with(server.local_addr(), fast_retry()).expect("client");

    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(77));
    let batches: Vec<Vec<Response>> = sched.batches(8).map(<[Response]>::to_vec).collect();
    assert!(
        batches.len() >= 6,
        "need enough batches to cross both drop sites"
    );

    for group in &batches {
        let receipt = client.ingest_batch(group).expect("exactly-once ingest");
        assert_eq!(receipt.shed_batches, 0);
        twin.ingest_batch(group).expect("twin ingest");
    }
    // Both drop sites fired, each costing exactly one retry + one
    // reconnect (plus the initial dial).
    assert_eq!(client.retries(), 2, "each drop site fires exactly once");
    assert_eq!(client.reconnects(), 3);

    client.drain().expect("drain");
    let over_wire = client.snapshot(CONFIDENCE).expect("snapshot");
    let local = twin.snapshot(CONFIDENCE).expect("twin snapshot");
    assert_eq!(
        encode_reply(&Reply::Report(over_wire)),
        encode_reply(&Reply::Report(local)),
        "a dedup miss (double ingest) or a lost batch would shift the reports"
    );

    // Counter-level exactly-once: per-shard response deliveries match
    // the twin's, so no batch landed zero or two times.
    let a = client.stats().expect("stats");
    let b = twin.stats().expect("twin stats");
    assert_eq!(
        a.shards.iter().map(|s| s.responses).sum::<u64>(),
        b.shards.iter().map(|s| s.responses).sum::<u64>(),
    );
    server.close();
}

/// Same (session, seq) twice: the second reply is the *stored* receipt,
/// byte-identical, and the service never sees the batch again.
#[test]
fn duplicate_sequence_replays_the_stored_outcome() {
    let (_, service) = fleet(1, 911);
    let mut server = serve_with(service.handle(), test_config());
    let mut conn = RawConn::open(server.local_addr());

    let payload = encode_ingest_seq_payload(7, 1, &batch(3));
    let first = conn.call(opcode::INGEST_SEQ, &payload);
    assert!(matches!(first, Reply::Ingest(_)), "got {first:?}");
    let replay = conn.call(opcode::INGEST_SEQ, &payload);
    assert_eq!(
        encode_reply(&first),
        encode_reply(&replay),
        "the replayed outcome must be byte-identical"
    );
    // The duplicate never reached the service: still 3 submitted.
    assert_eq!(service.stats().expect("stats").submitted, 3);

    // Dedup is per-session: the same seq under another session is a
    // fresh ingest.
    let other = conn.call(
        opcode::INGEST_SEQ,
        &encode_ingest_seq_payload(8, 1, &batch(3)),
    );
    assert!(matches!(other, Reply::Ingest(_)), "got {other:?}");
    assert_eq!(service.stats().expect("stats").submitted, 6);
    server.close();
}

/// Sessions survive reconnects — the dedup table is shared across
/// connections, which is the whole point (the retry that needs the
/// replay arrives on a *new* connection).
#[test]
fn dedup_table_is_shared_across_connections() {
    let (_, service) = fleet(1, 912);
    let mut server = serve_with(service.handle(), test_config());

    let payload = encode_ingest_seq_payload(21, 1, &batch(4));
    let first = RawConn::open(server.local_addr()).call(opcode::INGEST_SEQ, &payload);
    assert!(matches!(first, Reply::Ingest(_)));
    let replay = RawConn::open(server.local_addr()).call(opcode::INGEST_SEQ, &payload);
    assert_eq!(encode_reply(&first), encode_reply(&replay));
    assert_eq!(service.stats().expect("stats").submitted, 4);
    server.close();
}

/// A sequence number ahead of the session's next is a typed protocol
/// error — the server cannot invent the missing prefix.
#[test]
fn sequence_gaps_are_rejected() {
    let (_, service) = fleet(1, 913);
    let mut server = serve_with(service.handle(), test_config());
    let mut conn = RawConn::open(server.local_addr());

    match conn.call(
        opcode::INGEST_SEQ,
        &encode_ingest_seq_payload(9, 3, &batch(2)),
    ) {
        Reply::Err(ServiceError::Wire(msg)) => {
            assert!(msg.contains("sequence gap"), "got: {msg}");
        }
        other => panic!("expected a wire error, got {other:?}"),
    }
    // Nothing was ingested, and seq 1 still works.
    assert_eq!(service.stats().expect("stats").submitted, 0);
    let ok = conn.call(
        opcode::INGEST_SEQ,
        &encode_ingest_seq_payload(9, 1, &batch(2)),
    );
    assert!(matches!(ok, Reply::Ingest(_)), "got {ok:?}");
    server.close();
}

/// A sequence older than the dedup window gets a typed error rather
/// than a silent (and possibly wrong) replay.
#[test]
fn sequences_older_than_the_window_age_out() {
    let (_, service) = fleet(1, 914);
    let mut server = serve_with(
        service.handle(),
        WireConfig {
            dedup_window: 2,
            ..test_config()
        },
    );
    let mut conn = RawConn::open(server.local_addr());

    for seq in 1..=4u64 {
        let r = conn.call(
            opcode::INGEST_SEQ,
            &encode_ingest_seq_payload(13, seq, &batch(1)),
        );
        assert!(matches!(r, Reply::Ingest(_)), "seq {seq}: {r:?}");
    }
    // Window of 2 retains seqs 3 and 4; 1 has aged out.
    match conn.call(
        opcode::INGEST_SEQ,
        &encode_ingest_seq_payload(13, 1, &batch(1)),
    ) {
        Reply::Err(ServiceError::Wire(msg)) => {
            assert!(msg.contains("aged out"), "got: {msg}");
        }
        other => panic!("expected a wire error, got {other:?}"),
    }
    // Seq 3 is still inside the window and replays fine.
    let r = conn.call(
        opcode::INGEST_SEQ,
        &encode_ingest_seq_payload(13, 3, &batch(1)),
    );
    assert!(matches!(r, Reply::Ingest(_)), "got {r:?}");
    assert_eq!(service.stats().expect("stats").submitted, 4);
    server.close();
}

/// Idempotent reads ride through drops too: the dropped snapshot's
/// reply dies with the connection, the retry re-asks, the answer is
/// bit-identical to the in-process report.
#[test]
fn reads_retry_through_dropped_connections() {
    let (inst, mut service) = fleet(2, 915);
    let data = inst.responses();
    // Conn 1's very first frame is dropped.
    let fault = Arc::new(FaultPlan::seeded(6).with_drop_at(1, 1));
    let mut server = serve_with(
        service.handle(),
        WireConfig {
            fault: Some(fault),
            ..test_config()
        },
    );
    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(78));
    for group in sched.batches(8) {
        service.ingest_batch(group).expect("local ingest");
    }
    service.drain().expect("drain");

    let mut client = RetryClient::connect_with(server.local_addr(), fast_retry()).expect("client");
    let over_wire = client
        .snapshot(CONFIDENCE)
        .expect("snapshot survives the drop");
    assert_eq!(client.retries(), 1);
    let local = service.snapshot(CONFIDENCE).expect("local snapshot");
    assert_eq!(
        encode_reply(&Reply::Report(over_wire)),
        encode_reply(&Reply::Report(local)),
    );
    server.close();
}

/// Service verdicts are definitive: a typed rejection comes back
/// untouched, with zero retries spent on it.
#[test]
fn definitive_service_errors_are_not_retried() {
    let (_, service) = fleet(1, 916);
    let mut server = serve_with(service.handle(), test_config());
    let mut client = RetryClient::connect_with(server.local_addr(), fast_retry()).expect("client");

    let err = client
        .assess_worker(WorkerId(60_000), CONFIDENCE)
        .expect_err("out-of-range worker");
    assert!(
        matches!(err, ServiceError::Data(_)),
        "expected the typed data error, got {err:?}"
    );
    assert_eq!(client.retries(), 0, "a definitive verdict costs no retries");
    server.close();
}
