//! End-to-end tests over real sockets: a [`WireServer`] in front of a
//! live sharded [`AssessmentService`], exercised by [`WireClient`]s
//! and by raw TCP streams writing hostile bytes.
//!
//! The load-bearing assertion is **bit-identity at drain points**: a
//! report fetched over the wire must re-encode to exactly the bytes
//! of the in-process report — interval bit patterns included — so the
//! transport provably adds no numeric drift.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use crowd_core::WorkerReport;
use crowd_data::{Label, Response, TaskId, WorkerId};
use crowd_service::{AssessmentService, ServiceConfig, ServiceError, ServiceHandle};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryInstance, BinaryScenario, rng};
use crowd_wire::frame::{FrameEvent, FrameReader, write_frame};
use crowd_wire::proto::{decode_reply, opcode};
use crowd_wire::{ClientConfig, MAX_FRAME_LEN, Reply, WireClient, WireConfig, WireServer};

const CONFIDENCE: f64 = 0.9;

/// Fast-polling server config so shutdown-drain tests finish quickly.
fn test_config() -> WireConfig {
    WireConfig {
        read_timeout: Duration::from_millis(50),
        ..WireConfig::default()
    }
}

fn fleet(n_shards: u64) -> (BinaryInstance, AssessmentService) {
    let inst = BinaryScenario::paper_default(12, 60, 0.85).generate(&mut rng(900 + n_shards));
    let data = inst.responses();
    let plan = ShardPlan::build_clustered(data, n_shards as usize);
    let service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    (inst, service)
}

fn serve(handle: ServiceHandle) -> WireServer {
    WireServer::bind("127.0.0.1:0", handle, test_config()).expect("bind loopback")
}

/// The bit-identity gate: both reports must serialize to the same
/// bytes (structural comparison would wrongly fail on NaN and wrongly
/// pass on -0.0 vs 0.0).
fn assert_reports_bit_identical(wire: &WorkerReport, local: &WorkerReport, context: &str) {
    let w = crowd_wire::proto::encode_reply(&Reply::Report(wire.clone()));
    let l = crowd_wire::proto::encode_reply(&Reply::Report(local.clone()));
    assert_eq!(
        w, l,
        "wire report diverged from in-process report: {context}"
    );
}

#[test]
fn wire_reports_are_bit_identical_to_in_process() {
    let (inst, service) = fleet(4);
    let data = inst.responses();
    let mut server = serve(service.handle());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(41));
    let batches: Vec<Vec<Response>> = sched.batches(32).map(<[Response]>::to_vec).collect();
    let mid = batches.len() / 2;

    // First half over the wire, pipelined; every receipt accounted.
    let receipts = client.ingest_batches(&batches[..mid]).expect("pipeline");
    assert_eq!(receipts.len(), mid);
    for r in receipts {
        r.expect("default policy blocks, never sheds");
    }

    // Drain point: the wire snapshot and the in-process snapshot see
    // the same prefix and must agree to the bit.
    let over_wire = client.snapshot(CONFIDENCE).expect("wire snapshot");
    let local = service.snapshot(CONFIDENCE).expect("local snapshot");
    assert_reports_bit_identical(&over_wire, &local, "mid-stream");

    // Per-worker and explicit-set paths agree too.
    let workers: Vec<WorkerId> = (0..data.n_workers() as u32)
        .step_by(3)
        .map(WorkerId)
        .collect();
    let wire_set = client
        .assess_workers(&workers, CONFIDENCE)
        .expect("assess set");
    let local_set = service
        .assess_workers(&workers, CONFIDENCE)
        .expect("assess set");
    assert_reports_bit_identical(&wire_set, &local_set, "explicit worker set");
    for &w in workers.iter().take(4) {
        match (
            client.assess_worker(w, CONFIDENCE),
            service.assess_worker(w, CONFIDENCE),
        ) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.interval.center.to_bits(), b.interval.center.to_bits());
                assert_eq!(
                    a.interval.half_width.to_bits(),
                    b.interval.half_width.to_bits()
                );
                assert_eq!(a.triples_used, b.triples_used);
            }
            (Err(ServiceError::Estimate(a)), Err(ServiceError::Estimate(b))) => assert_eq!(a, b),
            (a, b) => panic!("outcome mismatch for {w:?}: {a:?} vs {b:?}"),
        }
    }

    // Rest of the stream, then the final drain point.
    for r in client.ingest_batches(&batches[mid..]).expect("pipeline") {
        r.expect("default policy blocks, never sheds");
    }
    client.drain().expect("drain");
    let over_wire = client.snapshot(CONFIDENCE).expect("wire snapshot");
    let local = service.snapshot(CONFIDENCE).expect("local snapshot");
    assert_reports_bit_identical(&over_wire, &local, "final");

    // Counters agree (ingest all went through the same handle).
    assert_eq!(
        client.stats().expect("stats"),
        service.stats().expect("stats")
    );
    server.close();
}

#[test]
fn zero_length_batches_are_valid_frames() {
    let (_inst, service) = fleet(2);
    let mut server = serve(service.handle());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let receipt = client.ingest_batch(&[]).expect("empty batch is a no-op");
    assert_eq!(receipt.routed, 0);
    // The connection is healthy afterwards.
    assert!(client.stats().is_ok());
    server.close();
}

#[test]
fn out_of_range_worker_id_comes_back_as_typed_data_error() {
    let (inst, service) = fleet(2);
    let data = inst.responses();
    let mut server = serve(service.handle());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let bad = Response {
        worker: WorkerId(data.n_workers() as u32 + 100),
        task: TaskId(0),
        label: Label(0),
    };
    match client.ingest_batch(&[bad]) {
        Err(ServiceError::Data(crowd_data::DataError::UnknownId { kind, id })) => {
            assert_eq!(kind, "worker");
            assert_eq!(id, data.n_workers() as u32 + 100);
        }
        other => panic!("expected the typed data error, got {other:?}"),
    }
    server.close();
}

#[test]
fn split_reads_reassemble_over_a_real_socket() {
    let (_inst, service) = fleet(2);
    let mut server = serve(service.handle());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // A Stats request dribbled one byte at a time, slower than the
    // server's idle poll but faster than a mid-frame stall.
    let mut frame = Vec::new();
    write_frame(&mut frame, opcode::STATS, &[]).unwrap();
    for b in frame {
        stream.write_all(&[b]).expect("write byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"), MAX_FRAME_LEN);
    match reader.read().expect("reply frame") {
        FrameEvent::Frame {
            opcode: op,
            payload,
        } => {
            assert_eq!(op, opcode::OK_STATS);
            assert!(matches!(
                decode_reply(op, &payload).expect("decode stats"),
                Reply::Stats(_)
            ));
        }
        other => panic!("expected a stats reply, got {other:?}"),
    }
    server.close();
}

#[test]
fn malformed_frames_get_error_replies_and_the_connection_survives() {
    let (_inst, service) = fleet(2);
    let mut server = serve(service.handle());
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"), MAX_FRAME_LEN);
    let mut writer = stream;

    // Unknown opcode: error reply, connection lives.
    write_frame(&mut writer, 0x6f, b"???").unwrap();
    match reader.read().expect("reply") {
        FrameEvent::Frame {
            opcode: op,
            payload,
        } => {
            assert_eq!(op, opcode::ERR);
            match decode_reply(op, &payload).expect("decode") {
                Reply::Err(ServiceError::Wire(msg)) => {
                    assert!(msg.contains("unknown opcode"), "got: {msg}")
                }
                other => panic!("expected a wire error, got {other:?}"),
            }
        }
        other => panic!("expected an error reply, got {other:?}"),
    }

    // Cleanly-delimited garbage payload: same story.
    write_frame(&mut writer, opcode::ASSESS_WORKER, &[1, 2, 3]).unwrap();
    match reader.read().expect("reply") {
        FrameEvent::Frame { opcode: op, .. } => assert_eq!(op, opcode::ERR),
        other => panic!("expected an error reply, got {other:?}"),
    }

    // The same connection still serves valid requests.
    write_frame(&mut writer, opcode::STATS, &[]).unwrap();
    match reader.read().expect("reply") {
        FrameEvent::Frame { opcode: op, .. } => assert_eq!(op, opcode::OK_STATS),
        other => panic!("expected a stats reply, got {other:?}"),
    }
    server.close();
}

#[test]
fn oversized_frames_poison_the_stream_with_a_parting_diagnosis() {
    let (_inst, service) = fleet(2);
    // Frame cap chosen so a 2-response batch fits exactly (1 opcode +
    // 4 count + 2×10 responses = 25) and a 3-response batch does not.
    let config = WireConfig {
        max_frame_len: 25,
        ..test_config()
    };
    let mut server =
        WireServer::bind("127.0.0.1:0", service.handle(), config).expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let r = |w: u32| Response {
        worker: WorkerId(w),
        task: TaskId(w),
        label: Label(0),
    };
    // Exactly at the cap: accepted.
    client.ingest_batch(&[r(0), r(1)]).expect("at-cap frame");

    // One response past the cap: the server can no longer trust the
    // stream, sends a typed diagnosis, and closes.
    match client.ingest_batch(&[r(0), r(1), r(2)]) {
        Err(ServiceError::Wire(msg)) => assert!(msg.contains("cap"), "got: {msg}"),
        other => panic!("expected a frame-too-large error, got {other:?}"),
    }
    // The connection is gone now.
    assert!(client.stats().is_err());
    server.close();
}

#[test]
fn connection_cap_refuses_with_a_typed_reply() {
    let (_inst, service) = fleet(2);
    let config = WireConfig {
        max_connections: 1,
        ..test_config()
    };
    let mut server =
        WireServer::bind("127.0.0.1:0", service.handle(), config).expect("bind loopback");
    let mut first = WireClient::connect(server.local_addr()).expect("connect");
    first.stats().expect("first connection serves");

    let mut second = WireClient::connect(server.local_addr()).expect("tcp connect succeeds");
    match second.stats() {
        Err(ServiceError::Io(msg)) => {
            // Either the refusal reply or, if the send raced the
            // close, the socket error.
            assert!(!msg.is_empty());
        }
        other => panic!("expected an io error, got {other:?}"),
    }
    // The admitted connection is unaffected.
    first.stats().expect("first connection still serves");
    server.close();
}

#[test]
fn concurrent_clients_snapshot_mid_ingest_without_disturbing_the_stream() {
    let (inst, service) = fleet(4);
    let data = inst.responses();
    let mut server = serve(service.handle());
    let addr = server.local_addr();

    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(77));
    let batches: Vec<Vec<Response>> = sched.batches(16).map(<[Response]>::to_vec).collect();

    let ingester = std::thread::spawn({
        let batches = batches.clone();
        move || {
            let mut client = WireClient::connect(addr).expect("connect ingester");
            for r in client.ingest_batches(&batches).expect("pipeline") {
                r.expect("default policy blocks, never sheds");
            }
            client.drain().expect("drain");
        }
    });

    // Snapshots racing the ingest stream must always be well-formed
    // reports (never a protocol error, never a panic).
    let mut observer = WireClient::connect(addr).expect("connect observer");
    let mut saw_assessments = false;
    for _ in 0..20 {
        let report = observer.snapshot(CONFIDENCE).expect("mid-ingest snapshot");
        saw_assessments |= !report.assessments.is_empty();
        for a in &report.assessments {
            assert!((a.worker.index()) < data.n_workers());
        }
    }
    ingester.join().expect("ingester thread");

    // Quiescent drain point: wire and in-process agree to the bit.
    let over_wire = observer.snapshot(CONFIDENCE).expect("final snapshot");
    let local = service.snapshot(CONFIDENCE).expect("local snapshot");
    assert_reports_bit_identical(&over_wire, &local, "post-ingest quiescent point");
    assert!(saw_assessments || !over_wire.assessments.is_empty());
    server.close();
}

#[test]
fn metrics_scrape_over_a_live_server() {
    let (inst, service) = fleet(4);
    let data = inst.responses();
    let mut server = serve(service.handle());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(23));
    let batches: Vec<Vec<Response>> = sched.batches(32).map(<[Response]>::to_vec).collect();
    let total: usize = batches.iter().map(Vec::len).sum();
    for r in client.ingest_batches(&batches).expect("pipeline") {
        r.expect("default policy blocks, never sheds");
    }
    client.snapshot(CONFIDENCE).expect("snapshot");

    let m = client.metrics().expect("metrics scrape");
    assert!(m.service.enabled, "instrumentation is on by default");
    assert_eq!(m.service.stats.submitted, total as u64);
    assert_eq!(m.service.stages.len(), 4, "one stage set per shard");
    let merged = m.service.merged_stages();
    assert!(merged.queue_wait.count() > 0, "queue-wait samples arrived");
    assert!(
        merged.batch_apply.count() > 0,
        "batch-apply samples arrived"
    );
    assert!(merged.drain_eval.count() > 0, "drain-eval samples arrived");

    // The server timed its own frame handling for the opcodes this
    // connection exercised.
    for op in [opcode::INGEST_BATCH, opcode::SNAPSHOT] {
        let t = m
            .server
            .iter()
            .find(|t| t.opcode == op)
            .unwrap_or_else(|| panic!("no server timings for opcode {op:#04x}"));
        assert!(t.decode.count() > 0, "decode timed for {op:#04x}");
        assert!(t.handle.count() > 0, "handle timed for {op:#04x}");
        assert!(t.write.count() > 0, "write timed for {op:#04x}");
    }

    // The exposition carries the same numbers the scrape decoded.
    let text = m.render_text();
    assert!(text.contains(&format!("crowd_submitted_responses_total {total}")));
    for s in &m.service.stats.shards {
        assert!(text.contains(&format!(
            "crowd_shard_responses_total{{shard=\"{}\"}} {}",
            s.shard, s.responses
        )));
    }
    assert!(text.contains("crowd_wire_stage_ns_count{opcode=\"0x01\",stage=\"handle\"}"));

    // A scrape is read-only: the next report is unaffected.
    let over_wire = client.snapshot(CONFIDENCE).expect("post-scrape snapshot");
    let local = service.snapshot(CONFIDENCE).expect("local snapshot");
    assert_reports_bit_identical(&over_wire, &local, "post-scrape");
    server.close();
}

#[test]
fn shutdown_over_the_wire_stops_service_and_server() {
    let (inst, service) = fleet(2);
    let data = inst.responses();
    let mut server = serve(service.handle());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let all: Vec<Response> = ArrivalSchedule::poisson(data, 1000.0, &mut rng(13))
        .responses()
        .to_vec();
    client.ingest_batch(&all).expect("ingest");
    let finals = client
        .shutdown()
        .expect("shutdown reply carries final stats");
    assert_eq!(finals.submitted, all.len() as u64);

    // The handle agrees and stays typed post-shutdown.
    assert_eq!(service.stats().expect("post-shutdown stats"), finals);
    assert!(matches!(
        service.handle().ingest_batch(&all[..1]),
        Err(ServiceError::ShuttingDown)
    ));

    // The server drains: new requests on fresh connections fail (the
    // acceptor is closing; the TCP connect itself may still land).
    std::thread::sleep(Duration::from_millis(200));
    // A refused connection is equally acceptable after close.
    if let Ok(mut late) = WireClient::connect_with(
        server.local_addr(),
        ClientConfig {
            read_timeout: Some(Duration::from_millis(500)),
            ..ClientConfig::default()
        },
    ) {
        assert!(
            late.stats().is_err(),
            "server must not serve after shutdown"
        );
    }
    server.close();
}
