//! Error function, implemented from scratch.
//!
//! Strategy: the Maclaurin series of `erf` for `|x| ≤ 3` (alternating,
//! with bounded cancellation in f64 on that range) and the classical
//! continued fraction for `erfc` beyond (Gauss CF, evaluated by
//! modified Lentz). Both branches deliver ≥ 12 accurate digits, which
//! the normal-quantile Halley refinement in [`crate::normal`] relies
//! on.

const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
const SQRT_PI: f64 = 2.0 / std::f64::consts::FRAC_2_SQRT_PI;
/// Crossover between the series and the continued fraction.
const SERIES_LIMIT: f64 = 3.0;

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax <= SERIES_LIMIT {
        erf_series(x)
    } else if x > 0.0 {
        1.0 - erfc_cf(x)
    } else {
        erfc_cf(-x) - 1.0
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > SERIES_LIMIT {
        erfc_cf(x)
    } else if x < -SERIES_LIMIT {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf_series(x)
    }
}

/// Maclaurin series `erf(x) = 2/√π · Σ (−1)ⁿ x^{2n+1} / (n!(2n+1))`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^{2n+1} / n!
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contribution = term / (2.0 * n as f64 + 1.0);
        sum += contribution;
        if contribution.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Gauss continued fraction for `erfc`, valid for `x > 0` and rapidly
/// convergent for `x ≳ 2`:
///
/// ```text
/// erfc(x) = exp(−x²)/√π · 1/(x + 1/(2x + 2/(x + 3/(2x + ...))))
/// ```
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    // Modified Lentz evaluation of f = x + K_{k≥1}( (k/2) / x ), i.e.
    // all partial denominators are x and the k-th partial numerator is
    // k/2.
    const TINY: f64 = 1e-300;
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..200 {
        let a = k as f64 / 2.0;
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (SQRT_PI * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Abramowitz & Stegun table 7.1 / mpmath.
    const TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    #[test]
    fn matches_reference_table_tightly() {
        for &(x, want) in TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn large_x_reference_values() {
        // mpmath: erfc(3.5), erfc(4), erfc(5).
        assert!((erfc(3.5) - 7.430983723414128e-07).abs() / 7.43e-07 < 1e-9);
        assert!((erfc(4.0) - 1.541725790028002e-08).abs() / 1.54e-08 < 1e-9);
        assert!((erfc(5.0) - 1.5374597944280351e-12).abs() / 1.54e-12 < 1e-8);
    }

    #[test]
    fn odd_symmetry() {
        for &(x, _) in TABLE {
            assert!((erf(-x) + erf(x)).abs() < 1e-14, "erf is odd at {x}");
        }
        assert!((erf(-4.0) + erf(4.0)).abs() < 1e-14);
    }

    #[test]
    fn erfc_complements() {
        for x in [-5.0, -2.0, -0.7, 0.0, 0.3, 1.1, 2.5, 4.0] {
            assert!(
                (erf(x) + erfc(x) - 1.0).abs() < 1e-12,
                "complement failed at {x}"
            );
        }
    }

    #[test]
    fn continuity_at_branch_crossover() {
        let below = erf(2.999_999_9);
        let above = erf(3.000_000_1);
        assert!((above - below).abs() < 1e-9);
        let below = erfc(2.999_999_9);
        let above = erfc(3.000_000_1);
        assert!((above - below).abs() < 1e-9);
    }

    #[test]
    fn tails_saturate() {
        assert!((erf(6.0) - 1.0).abs() < 1e-15);
        assert!((erf(-6.0) + 1.0).abs() < 1e-15);
        assert!(erfc(10.0) > 0.0);
        assert!(erfc(-10.0) < 2.0 + 1e-15);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn monotonic_on_grid() {
        let mut prev = erf(-4.0);
        let mut x = -4.0;
        while x < 4.0 {
            x += 0.01;
            let cur = erf(x);
            assert!(cur >= prev - 1e-12, "erf must be nondecreasing at {x}");
            prev = cur;
        }
    }
}
