//! Statistics substrate for the `crowd-assess` workspace.
//!
//! Implements, from scratch, every statistical primitive the
//! crowd-assessment algorithms need:
//!
//! * the error function and the standard normal distribution
//!   (pdf / cdf / quantile) — confidence intervals are
//!   `estimate ± z_(1+c)/2 · deviation`,
//! * the **delta method** of the paper's Theorem 1: for
//!   `Y = f(X₁..X_k)` with `E[Xᵢ]=eᵢ`, `Cov(Xᵢ,Xⱼ)=cᵢⱼ` and local
//!   linearization `f(e+a) ≈ f(e) + Σ dᵢaᵢ`, the variance of `Y` is
//!   `dᵀ C d` and the c-confidence interval follows from normality,
//! * **minimum-variance linear combination** (the paper's Lemma 5):
//!   weights `A = C⁻¹𝟙 / ‖C⁻¹𝟙‖₁` minimizing `AᵀCA` subject to
//!   `ΣAᵢ = 1`, with ridge and uniform fallbacks,
//! * classical binomial proportion intervals (Wald, Wilson) for the
//!   gold-standard baseline,
//! * a nonparametric **percentile bootstrap** ([`Bootstrap`]) used by
//!   the test suite as an independent oracle against the delta-method
//!   intervals,
//! * streaming summaries (Welford) used throughout the experiment
//!   harness.

mod bootstrap;
mod delta;
mod erf;
mod interval;
mod minvar;
mod normal;
mod proportion;
mod summary;

pub use bootstrap::Bootstrap;
pub use delta::{DeltaMethod, delta_interval, delta_variance};
pub use erf::{erf, erfc};
pub use interval::ConfidenceInterval;
pub use minvar::{MinVarWeights, WeightPolicy, min_variance_weights};
pub use normal::{normal_cdf, normal_pdf, normal_quantile, two_sided_z};
pub use proportion::{wald_interval, wilson_interval};
pub use summary::{OnlineSummary, mean, sample_covariance, sample_variance};

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability-typed argument fell outside `[0, 1]` (or outside
    /// `(0, 1)` where the boundary is meaningless).
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Name of the parameter for diagnostics.
        what: &'static str,
    },
    /// A negative variance was produced, typically because an assembled
    /// covariance matrix was not PSD.
    NegativeVariance {
        /// The computed (negative) variance.
        variance: f64,
    },
    /// Mismatched dimensions between gradient and covariance.
    DimensionMismatch {
        /// Gradient length.
        gradient: usize,
        /// Covariance side length.
        covariance: usize,
    },
    /// The covariance matrix could not be inverted even with ridge
    /// regularization.
    SingularCovariance,
    /// Not enough observations for the requested statistic.
    InsufficientData {
        /// Observations available.
        got: usize,
        /// Observations required.
        need: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidProbability { value, what } => {
                write!(f, "invalid probability for {what}: {value}")
            }
            Self::NegativeVariance { variance } => {
                write!(f, "negative variance {variance} (covariance not PSD)")
            }
            Self::DimensionMismatch {
                gradient,
                covariance,
            } => {
                write!(
                    f,
                    "gradient length {gradient} does not match covariance side {covariance}"
                )
            }
            Self::SingularCovariance => write!(f, "covariance matrix is singular"),
            Self::InsufficientData { got, need } => {
                write!(f, "insufficient data: got {got}, need at least {need}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Result alias for statistical routines.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = StatsError::InvalidProbability {
            value: 1.5,
            what: "confidence",
        };
        assert!(e.to_string().contains("confidence"));
        assert!(
            StatsError::SingularCovariance
                .to_string()
                .contains("singular")
        );
        assert!(
            StatsError::NegativeVariance { variance: -0.1 }
                .to_string()
                .contains("-0.1")
        );
        assert!(
            StatsError::DimensionMismatch {
                gradient: 2,
                covariance: 3
            }
            .to_string()
            .contains("2")
        );
        assert!(
            StatsError::InsufficientData { got: 1, need: 2 }
                .to_string()
                .contains("need")
        );
    }
}
