//! Standard normal distribution: pdf, cdf and quantile.
//!
//! The quantile (probit) uses Acklam's rational approximation refined
//! with one Halley step against the exact cdf, giving ~1e-12 accuracy —
//! the z-scores that scale every confidence interval in the paper come
//! from here.

use crate::erf::erf;
use crate::{Result, StatsError};

const SQRT_2: f64 = std::f64::consts::SQRT_2;
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Standard normal density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidProbability {
            value: p,
            what: "quantile argument",
        });
    }
    // Acklam's rational approximation (relative error < 1.15e-9).
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement against the exact cdf.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    Ok(x - u / (1.0 + 0.5 * x * u))
}

/// Two-sided z-score for confidence level `c`: `z = Φ⁻¹((1 + c) / 2)`.
///
/// This is the `z_t` of the paper's Theorem 1 with `t = (1 + c)/2`:
/// the interval `[E[Y] − z·Dev(Y), E[Y] + z·Dev(Y)]` covers the mean
/// with probability `c` under normality.
pub fn two_sided_z(confidence: f64) -> Result<f64> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            value: confidence,
            what: "confidence",
        });
    }
    normal_quantile((1.0 + confidence) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_known_values() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
        assert!((normal_pdf(1.0) - 0.24197072451914337).abs() < 1e-12);
        assert!((normal_pdf(-1.0) - normal_pdf(1.0)).abs() < 1e-16);
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-9);
        assert!((normal_cdf(-1.96) - 0.024997895148220435).abs() < 1e-9);
        assert!((normal_cdf(2.5758293035489004) - 0.995).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.999] {
            let x = normal_quantile(p).unwrap();
            assert!(
                (normal_cdf(x) - p).abs() < 1e-10,
                "roundtrip failed at p={p}"
            );
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(normal_quantile(0.5).unwrap().abs() < 1e-12);
        assert!((normal_quantile(0.975).unwrap() - 1.959963984540054).abs() < 1e-8);
        assert!((normal_quantile(0.995).unwrap() - 2.5758293035489004).abs() < 1e-8);
        assert!((normal_quantile(0.05).unwrap() + 1.6448536269514722).abs() < 1e-8);
    }

    #[test]
    fn quantile_rejects_boundaries() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn two_sided_z_matches_textbook() {
        assert!((two_sided_z(0.95).unwrap() - 1.959963984540054).abs() < 1e-8);
        assert!((two_sided_z(0.99).unwrap() - 2.5758293035489004).abs() < 1e-8);
        assert!((two_sided_z(0.5).unwrap() - 0.6744897501960817).abs() < 1e-8);
        assert!(two_sided_z(1.0).is_err());
        assert!(two_sided_z(0.0).is_err());
    }

    #[test]
    fn quantile_is_odd_around_half() {
        for p in [0.1, 0.25, 0.4] {
            let lo = normal_quantile(p).unwrap();
            let hi = normal_quantile(1.0 - p).unwrap();
            assert!((lo + hi).abs() < 1e-10);
        }
    }
}
