//! Streaming and batch summary statistics.
//!
//! The experiment harness accumulates interval sizes and coverage
//! indicators over hundreds of Monte-Carlo repetitions; Welford's
//! online algorithm keeps those accumulations numerically stable.

/// Mean of a slice; 0 for the empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; 0 with fewer than two observations.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample covariance of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn sample_covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone)]
pub struct OnlineSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineSummary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.mean }
    }

    /// Unbiased variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-15);
        // Population variance is 4.0; sample variance = 4 * 8/7.
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_linear_relationship() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let cov = sample_covariance(&xs, &ys);
        assert!((cov - 2.0 * sample_variance(&xs)).abs() < 1e-12);
        // Anti-correlated.
        let ys_neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!(sample_covariance(&xs, &ys_neg) < 0.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        assert_eq!(sample_covariance(&[], &[]), 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [0.3, -1.2, 4.5, 2.2, 0.0, -0.7];
        let mut acc = OnlineSummary::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 6);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance() - sample_variance(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), -1.2);
        assert_eq!(acc.max(), 4.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 10.0, 20.0];
        let mut a = OnlineSummary::new();
        let mut b = OnlineSummary::new();
        for &x in &xs[..2] {
            a.push(x);
        }
        for &x in &xs[2..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - mean(&xs)).abs() < 1e-12);
        assert!((a.variance() - sample_variance(&xs)).abs() < 1e-12);
        // Merging an empty accumulator is a no-op in both directions.
        let mut c = OnlineSummary::new();
        c.merge(&a);
        assert!((c.mean() - a.mean()).abs() < 1e-15);
        a.merge(&OnlineSummary::new());
        assert!((a.mean() - c.mean()).abs() < 1e-15);
    }

    #[test]
    fn std_error_shrinks_with_count() {
        let mut a = OnlineSummary::new();
        for i in 0..100 {
            a.push((i % 7) as f64);
        }
        let se100 = a.std_error();
        for i in 0..900 {
            a.push((i % 7) as f64);
        }
        assert!(a.std_error() < se100);
    }

    #[test]
    fn default_is_empty() {
        let acc = OnlineSummary::default();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std_error(), 0.0);
    }
}
