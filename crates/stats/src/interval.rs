//! Confidence interval value type.

use crate::{Result, StatsError, two_sided_z};

/// A two-sided confidence interval `center ± half_width` at a given
/// confidence level.
///
/// All of the paper's outputs are values of this type: one per worker
/// error rate (binary algorithms) or one per response-probability
/// matrix entry (k-ary algorithm).
///
/// # Example
///
/// ```
/// use crowd_stats::ConfidenceInterval;
///
/// // Point estimate 0.2 with standard deviation 0.05 at 95%.
/// let ci = ConfidenceInterval::from_deviation(0.2, 0.05, 0.95)?;
/// assert!(ci.contains(0.2));
/// assert!((ci.size() - 2.0 * 1.96 * 0.05).abs() < 1e-3);
/// # Ok::<(), crowd_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the interval midpoint).
    pub center: f64,
    /// Half of the interval size; never negative.
    pub half_width: f64,
    /// Confidence level in `(0, 1)`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Builds an interval from a point estimate and standard deviation:
    /// `center ± z_(1+c)/2 · deviation` (Theorem 1, Eq. 2).
    pub fn from_deviation(center: f64, deviation: f64, confidence: f64) -> Result<Self> {
        if deviation < 0.0 || !deviation.is_finite() {
            return Err(StatsError::NegativeVariance {
                variance: deviation,
            });
        }
        let z = two_sided_z(confidence)?;
        Ok(Self {
            center,
            half_width: z * deviation,
            confidence,
        })
    }

    /// Builds an interval directly from explicit bounds.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn from_bounds(lo: f64, hi: f64, confidence: f64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Self {
            center: (lo + hi) / 2.0,
            half_width: (hi - lo) / 2.0,
            confidence,
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.center - self.half_width
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.center + self.half_width
    }

    /// Total interval size (`hi − lo`), the quantity the paper plots
    /// on every "size of interval" axis.
    #[inline]
    pub fn size(&self) -> f64 {
        2.0 * self.half_width
    }

    /// True when `value` lies inside the closed interval — the
    /// "interval-accuracy" predicate of the paper's experiments.
    #[inline]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Returns a copy clipped to `[lo_bound, hi_bound]`, useful when the
    /// estimand is a probability and the unclipped normal interval
    /// leaks outside `[0, 1]`. An interval entirely outside the range
    /// collapses onto the nearest bound.
    pub fn clipped(&self, lo_bound: f64, hi_bound: f64) -> Self {
        debug_assert!(lo_bound <= hi_bound, "clip range out of order");
        let lo = self.lo().clamp(lo_bound, hi_bound);
        let hi = self.hi().clamp(lo_bound, hi_bound);
        Self::from_bounds(lo, hi, self.confidence)
    }

    /// Rescales the interval by a positive factor (used when converting
    /// intervals on `S^{1/2}P` entries to intervals on `P` entries by
    /// row normalization in Algorithm A3).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self {
            center: self.center * factor,
            half_width: self.half_width * factor,
            confidence: self.confidence,
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}% CI)",
            self.center,
            self.half_width,
            (self.confidence * 100.0).round()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_deviation_uses_z() {
        let ci = ConfidenceInterval::from_deviation(0.2, 0.05, 0.95).unwrap();
        assert!((ci.half_width - 1.959963984540054 * 0.05).abs() < 1e-8);
        assert_eq!(ci.center, 0.2);
    }

    #[test]
    fn zero_deviation_gives_point_interval() {
        let ci = ConfidenceInterval::from_deviation(0.3, 0.0, 0.8).unwrap();
        assert_eq!(ci.size(), 0.0);
        assert!(ci.contains(0.3));
        assert!(!ci.contains(0.3000001));
    }

    #[test]
    fn negative_or_nan_deviation_rejected() {
        assert!(ConfidenceInterval::from_deviation(0.0, -1.0, 0.9).is_err());
        assert!(ConfidenceInterval::from_deviation(0.0, f64::NAN, 0.9).is_err());
    }

    #[test]
    fn bounds_roundtrip() {
        let ci = ConfidenceInterval::from_bounds(0.1, 0.5, 0.9);
        assert!((ci.center - 0.3).abs() < 1e-15);
        assert!((ci.size() - 0.4).abs() < 1e-15);
        assert!((ci.lo() - 0.1).abs() < 1e-15);
        assert!((ci.hi() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn contains_is_closed() {
        let ci = ConfidenceInterval::from_bounds(0.1, 0.5, 0.9);
        assert!(ci.contains(0.1));
        assert!(ci.contains(0.5));
        assert!(ci.contains(0.3));
        assert!(!ci.contains(0.0999));
        assert!(!ci.contains(0.5001));
    }

    #[test]
    fn clipping_respects_bounds() {
        let ci = ConfidenceInterval::from_bounds(-0.2, 0.4, 0.9).clipped(0.0, 1.0);
        assert_eq!(ci.lo(), 0.0);
        assert!((ci.hi() - 0.4).abs() < 1e-15);
        // Degenerate: interval entirely below the clip range collapses.
        let ci = ConfidenceInterval::from_bounds(-0.5, -0.2, 0.9).clipped(0.0, 1.0);
        assert_eq!(ci.size(), 0.0);
        assert_eq!(ci.lo(), 0.0);
        // ... and entirely above collapses onto the upper bound.
        let ci = ConfidenceInterval::from_bounds(1.2, 1.8, 0.9).clipped(0.0, 1.0);
        assert_eq!(ci.size(), 0.0);
        assert_eq!(ci.hi(), 1.0);
    }

    #[test]
    fn scaling() {
        let ci = ConfidenceInterval::from_bounds(0.2, 0.4, 0.9).scaled(2.0);
        assert!((ci.lo() - 0.4).abs() < 1e-15);
        assert!((ci.hi() - 0.8).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_bounds_panic() {
        let _ = ConfidenceInterval::from_bounds(0.5, 0.1, 0.9);
    }

    #[test]
    fn display_mentions_level() {
        let s = ConfidenceInterval::from_bounds(0.1, 0.3, 0.8).to_string();
        assert!(s.contains("80"));
    }
}
