//! Minimum-variance linear combination — the paper's Lemma 5.
//!
//! Given `l` unbiased estimates of the same quantity with covariance
//! matrix `C`, the weights `A` minimizing `AᵀCA` subject to `ΣAᵢ = 1`
//! are `A = C⁻¹𝟙 / ‖C⁻¹𝟙‖₁`. Algorithm A2 uses this to combine the
//! per-triple error-rate estimates; Figure 2(c) shows the optimization
//! more than halves the interval size when triples differ in quality.

use crate::{Result, StatsError};
use crowd_linalg::{Lu, Matrix};

/// How to combine correlated estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightPolicy {
    /// Lemma 5 optimal weights with a ridge fallback (the paper's
    /// method; default).
    #[default]
    MinimumVariance,
    /// Equal weights `1/l` — the unoptimized baseline of Figure 2(c).
    Uniform,
}

/// The outcome of a weight computation.
#[derive(Debug, Clone)]
pub struct MinVarWeights {
    /// The weights; always sum to 1.
    pub weights: Vec<f64>,
    /// The variance `AᵀCA` of the combined estimate under those weights.
    pub variance: f64,
    /// True when the solver had to fall back (singular covariance →
    /// ridge → uniform).
    pub fell_back: bool,
}

/// Computes combination weights for estimates with covariance `c`.
///
/// For [`WeightPolicy::MinimumVariance`] this solves `C·B = 𝟙` and
/// normalizes `B` by its L1 norm, exactly as in Lemma 5 (the
/// normalization by the *signed sum* keeps `ΣAᵢ = 1`; negative weights
/// are legitimate for strongly correlated estimates). If `C` is
/// singular, a ridge `λI` with `λ = 1e-9·max|C|` is added; if that
/// still fails, uniform weights are returned with `fell_back = true`.
pub fn min_variance_weights(c: &Matrix, policy: WeightPolicy) -> Result<MinVarWeights> {
    if !c.is_square() {
        return Err(StatsError::DimensionMismatch {
            gradient: c.rows(),
            covariance: c.cols(),
        });
    }
    let l = c.rows();
    if l == 0 {
        return Err(StatsError::InsufficientData { got: 0, need: 1 });
    }
    let uniform = vec![1.0 / l as f64; l];
    if policy == WeightPolicy::Uniform || l == 1 {
        let variance = quadratic_form(c, &uniform);
        return Ok(MinVarWeights {
            weights: uniform,
            variance,
            fell_back: false,
        });
    }

    let ones = vec![1.0; l];
    let solve = |m: &Matrix| -> Option<Vec<f64>> {
        let lu = Lu::decompose(m).ok()?;
        let b = lu.solve(&ones).ok()?;
        let sum: f64 = b.iter().sum();
        if !sum.is_finite() || sum.abs() < 1e-300 {
            return None;
        }
        // Lemma 5 writes A = B / ‖B‖₁; dividing by the *signed* sum is
        // what actually enforces ΣA = 1 (and coincides with the L1 norm
        // when C⁻¹𝟙 is entrywise positive, the common case).
        Some(b.iter().map(|x| x / sum).collect())
    };

    if let Some(w) = solve(c) {
        let variance = quadratic_form(c, &w);
        if variance.is_finite() && variance >= 0.0 {
            return Ok(MinVarWeights {
                weights: w,
                variance,
                fell_back: false,
            });
        }
    }
    // Ridge fallback.
    let lambda = 1e-9 * c.max_abs().max(1e-12);
    let mut ridged = c.clone();
    for i in 0..l {
        let v = ridged.get(i, i) + lambda;
        ridged.set(i, i, v);
    }
    if let Some(w) = solve(&ridged) {
        let variance = quadratic_form(c, &w);
        if variance.is_finite() && variance >= 0.0 {
            return Ok(MinVarWeights {
                weights: w,
                variance,
                fell_back: true,
            });
        }
    }
    // Uniform fallback: always valid, just wider (paper §III-D3).
    let variance = quadratic_form(c, &uniform);
    Ok(MinVarWeights {
        weights: uniform,
        variance,
        fell_back: true,
    })
}

/// `wᵀ C w`, clamped at zero against roundoff.
fn quadratic_form(c: &Matrix, w: &[f64]) -> f64 {
    let mut var = 0.0;
    for (i, &wi) in w.iter().enumerate() {
        var += wi * crowd_linalg::dot(c.row(i), w);
    }
    var.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_estimates_weight_by_precision() {
        // Var 1 and 4: optimal weights 4/5 and 1/5, variance 4/5.
        let c = Matrix::diagonal(&[1.0, 4.0]);
        let out = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        assert!((out.weights[0] - 0.8).abs() < 1e-12);
        assert!((out.weights[1] - 0.2).abs() < 1e-12);
        assert!((out.variance - 0.8).abs() < 1e-12);
        assert!(!out.fell_back);
    }

    #[test]
    fn weights_sum_to_one() {
        let c = Matrix::from_rows(&[&[2.0, 0.3, 0.1], &[0.3, 1.0, 0.2], &[0.1, 0.2, 3.0]]);
        let out = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        assert!((out.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn beats_or_ties_uniform() {
        let c = Matrix::from_rows(&[&[2.0, 0.3, 0.1], &[0.3, 1.0, 0.2], &[0.1, 0.2, 3.0]]);
        let opt = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        let uni = min_variance_weights(&c, WeightPolicy::Uniform).unwrap();
        assert!(opt.variance <= uni.variance + 1e-12);
    }

    #[test]
    fn uniform_policy_is_uniform() {
        let c = Matrix::diagonal(&[1.0, 100.0]);
        let out = min_variance_weights(&c, WeightPolicy::Uniform).unwrap();
        assert_eq!(out.weights, vec![0.5, 0.5]);
        assert!((out.variance - (1.0 + 100.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn equal_variances_give_equal_weights() {
        let c = Matrix::diagonal(&[2.0, 2.0, 2.0]);
        let out = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        for w in &out.weights {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn correlated_estimates_can_get_negative_weight() {
        // Strong positive correlation with unequal variances makes
        // shorting the noisy estimate optimal.
        let c = Matrix::from_rows(&[&[1.0, 1.9], &[1.9, 4.0]]);
        let out = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        assert!((out.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(
            out.weights[1] < 0.0,
            "expected negative weight, got {:?}",
            out.weights
        );
        let uni = min_variance_weights(&c, WeightPolicy::Uniform).unwrap();
        assert!(out.variance < uni.variance);
    }

    #[test]
    fn singular_covariance_falls_back() {
        let c = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let out = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        assert!(out.fell_back);
        assert!((out.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_estimate_is_trivial() {
        let c = Matrix::diagonal(&[0.7]);
        let out = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        assert_eq!(out.weights, vec![1.0]);
        assert!((out.variance - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_and_rectangular_rejected() {
        assert!(min_variance_weights(&Matrix::zeros(0, 0), WeightPolicy::default()).is_err());
        assert!(min_variance_weights(&Matrix::zeros(2, 3), WeightPolicy::default()).is_err());
    }

    #[test]
    fn optimality_against_random_perturbations() {
        // No weight vector summing to 1 should do better than Lemma 5.
        let c = Matrix::from_rows(&[&[1.5, 0.4, 0.0], &[0.4, 2.5, 0.6], &[0.0, 0.6, 1.0]]);
        let opt = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        let perturbations = [
            vec![0.5, 0.3, 0.2],
            vec![0.9, 0.05, 0.05],
            vec![0.2, 0.2, 0.6],
            vec![-0.1, 0.6, 0.5],
        ];
        for w in &perturbations {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(quadratic_form(&c, w) >= opt.variance - 1e-12);
        }
    }
}
