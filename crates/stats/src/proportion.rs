//! Classical binomial-proportion confidence intervals.
//!
//! These are the "standard statistical techniques" the paper's
//! introduction contrasts against: when gold-standard tasks *are*
//! available, a worker's error rate is a binomial proportion and the
//! Wald/Wilson intervals apply directly. We keep them as the
//! gold-standard baseline and for the spammer-pruning preprocessing.

use crate::{ConfidenceInterval, Result, StatsError, two_sided_z};

/// Wald (normal approximation) interval for `successes / trials`.
///
/// Simple but badly behaved at the boundaries; prefer
/// [`wilson_interval`] for small samples.
pub fn wald_interval(successes: u64, trials: u64, confidence: f64) -> Result<ConfidenceInterval> {
    if trials == 0 {
        return Err(StatsError::InsufficientData { got: 0, need: 1 });
    }
    if successes > trials {
        return Err(StatsError::InvalidProbability {
            value: successes as f64 / trials as f64,
            what: "success fraction",
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = two_sided_z(confidence)?;
    let dev = (p * (1.0 - p) / n).sqrt();
    Ok(ConfidenceInterval {
        center: p,
        half_width: z * dev,
        confidence,
    })
}

/// Wilson score interval for `successes / trials`.
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> Result<ConfidenceInterval> {
    if trials == 0 {
        return Err(StatsError::InsufficientData { got: 0, need: 1 });
    }
    if successes > trials {
        return Err(StatsError::InvalidProbability {
            value: successes as f64 / trials as f64,
            what: "success fraction",
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = two_sided_z(confidence)?;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    // The Wilson interval lies in [0, 1] mathematically; clip the
    // roundoff spill at the boundaries.
    Ok(ConfidenceInterval {
        center,
        half_width: half,
        confidence,
    }
    .clipped(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wald_textbook_value() {
        // p̂ = 0.5, n = 100, 95%: half-width = 1.96 * 0.05 ≈ 0.098.
        let ci = wald_interval(50, 100, 0.95).unwrap();
        assert!((ci.center - 0.5).abs() < 1e-12);
        assert!((ci.half_width - 0.09799819922700078).abs() < 1e-6);
    }

    #[test]
    fn wilson_textbook_value() {
        // Known example: 10 successes out of 10 at 95% gives
        // lower bound ≈ 0.722.
        let ci = wilson_interval(10, 10, 0.95).unwrap();
        assert!((ci.lo() - 0.7224672).abs() < 1e-4, "lo = {}", ci.lo());
        assert!(ci.hi() <= 1.0 + 1e-12);
    }

    #[test]
    fn wald_degenerates_at_boundary_but_wilson_does_not() {
        let wald = wald_interval(0, 20, 0.9).unwrap();
        assert_eq!(wald.size(), 0.0, "Wald collapses at p̂ = 0");
        let wilson = wilson_interval(0, 20, 0.9).unwrap();
        assert!(wilson.size() > 0.0, "Wilson stays informative at p̂ = 0");
        assert!(wilson.lo() >= 0.0);
    }

    #[test]
    fn zero_trials_rejected() {
        assert!(wald_interval(0, 0, 0.9).is_err());
        assert!(wilson_interval(0, 0, 0.9).is_err());
    }

    #[test]
    fn successes_exceeding_trials_rejected() {
        assert!(wald_interval(5, 3, 0.9).is_err());
        assert!(wilson_interval(5, 3, 0.9).is_err());
    }

    #[test]
    fn wilson_contains_truth_at_advertised_rate() {
        // Monte-Carlo coverage check: p = 0.3, n = 50, c = 0.9.
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (p, n, c) = (0.3f64, 50u64, 0.9f64);
        let reps = 4000;
        let mut covered = 0;
        for _ in 0..reps {
            let successes = (0..n).filter(|_| rng.random::<f64>() < p).count() as u64;
            if wilson_interval(successes, n, c).unwrap().contains(p) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / reps as f64;
        assert!(
            (coverage - c).abs() < 0.03,
            "Wilson coverage {coverage} at c={c}"
        );
    }

    #[test]
    fn interval_shrinks_with_more_trials() {
        let small = wilson_interval(30, 100, 0.9).unwrap();
        let large = wilson_interval(300, 1000, 0.9).unwrap();
        assert!(large.size() < small.size());
    }
}
