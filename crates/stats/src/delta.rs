//! The delta method — the paper's Theorem 1.
//!
//! Given approximately normal inputs `X₁..X_k` with means `eᵢ` and
//! covariances `cᵢⱼ`, and a locally linear function
//! `f(e + a) ≈ f(e) + Σᵢ dᵢ aᵢ`, the derived variable
//! `Y = f(X₁..X_k)` satisfies
//!
//! ```text
//! E[Y]   = f(e₁..e_k)
//! Dev(Y) = sqrt( Σᵢ Σⱼ dᵢ dⱼ cᵢⱼ )
//! CI(Y, c) = [E[Y] − z_t·Dev(Y), E[Y] + z_t·Dev(Y)],  t = (1+c)/2
//! ```
//!
//! Every confidence interval in the paper — the 3-worker triangle
//! inversion, the m-worker triple aggregation, and the k-ary
//! `ProbEstimate` — is an instance of this computation with a different
//! gradient and covariance assembly.

use crate::{ConfidenceInterval, Result, StatsError};
use crowd_linalg::Matrix;

/// Variance of the linearized `Y = f(X)`: `dᵀ C d`.
///
/// Small negative values (within `tol`) caused by a non-PSD sample
/// covariance are clamped to zero; anything more negative is an error.
pub fn delta_variance(gradient: &[f64], covariance: &Matrix) -> Result<f64> {
    if covariance.rows() != gradient.len() || covariance.cols() != gradient.len() {
        return Err(StatsError::DimensionMismatch {
            gradient: gradient.len(),
            covariance: covariance.rows(),
        });
    }
    let mut var = 0.0;
    for (i, &di) in gradient.iter().enumerate() {
        if di == 0.0 {
            continue;
        }
        let row = covariance.row(i);
        var += di * crowd_linalg::dot(row, gradient);
    }
    // Sample covariances assembled from plug-in estimates are not
    // guaranteed PSD; tolerate slightly negative quadratic forms.
    let scale: f64 = gradient.iter().map(|d| d * d).sum::<f64>().max(1.0);
    let tol = 1e-9 * scale * covariance.max_abs().max(1.0);
    if var < -tol {
        return Err(StatsError::NegativeVariance { variance: var });
    }
    Ok(var.max(0.0))
}

/// Full Theorem 1: point estimate + gradient + covariance → interval.
pub fn delta_interval(
    estimate: f64,
    gradient: &[f64],
    covariance: &Matrix,
    confidence: f64,
) -> Result<ConfidenceInterval> {
    let var = delta_variance(gradient, covariance)?;
    ConfidenceInterval::from_deviation(estimate, var.sqrt(), confidence)
}

/// Reusable builder for repeated delta-method evaluations that share a
/// covariance matrix but differ in gradient (e.g. the k-ary algorithm
/// computes one interval per response-probability entry against a
/// single counts covariance).
#[derive(Debug, Clone)]
pub struct DeltaMethod {
    covariance: Matrix,
}

impl DeltaMethod {
    /// Creates a builder around an input covariance matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn new(covariance: Matrix) -> Self {
        assert!(covariance.is_square(), "covariance matrix must be square");
        Self { covariance }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.covariance.rows()
    }

    /// Borrow the covariance matrix.
    pub fn covariance(&self) -> &Matrix {
        &self.covariance
    }

    /// Variance of a derived variable with the given gradient.
    pub fn variance(&self, gradient: &[f64]) -> Result<f64> {
        delta_variance(gradient, &self.covariance)
    }

    /// Standard deviation of a derived variable with the given gradient.
    pub fn deviation(&self, gradient: &[f64]) -> Result<f64> {
        Ok(self.variance(gradient)?.sqrt())
    }

    /// Confidence interval for a derived variable.
    pub fn interval(
        &self,
        estimate: f64,
        gradient: &[f64],
        confidence: f64,
    ) -> Result<ConfidenceInterval> {
        delta_interval(estimate, gradient, &self.covariance, confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covariance_sums_squares() {
        let cov = Matrix::identity(3);
        let var = delta_variance(&[1.0, 2.0, 3.0], &cov).unwrap();
        assert!((var - 14.0).abs() < 1e-12);
    }

    #[test]
    fn correlated_inputs_change_variance() {
        // Var(X1 + X2) with correlation: 1 + 1 + 2*0.5 = 3.
        let cov = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]);
        let var = delta_variance(&[1.0, 1.0], &cov).unwrap();
        assert!((var - 3.0).abs() < 1e-12);
        // Var(X1 - X2) = 1 + 1 - 2*0.5 = 1.
        let var = delta_variance(&[1.0, -1.0], &cov).unwrap();
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_gradient_gives_zero_variance() {
        let cov = Matrix::identity(2);
        assert_eq!(delta_variance(&[0.0, 0.0], &cov).unwrap(), 0.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let cov = Matrix::identity(2);
        assert!(matches!(
            delta_variance(&[1.0, 2.0, 3.0], &cov),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn slightly_negative_clamps_but_large_negative_errors() {
        // A mildly indefinite "covariance" within tolerance.
        let cov = Matrix::from_rows(&[&[1.0, 1.0 + 1e-12], &[1.0 + 1e-12, 1.0]]);
        let v = delta_variance(&[1.0, -1.0], &cov).unwrap();
        assert_eq!(v, 0.0);
        // A grossly indefinite one must error.
        let bad = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            delta_variance(&[1.0, -1.0], &bad),
            Err(StatsError::NegativeVariance { .. })
        ));
    }

    #[test]
    fn interval_matches_manual_computation() {
        let cov = Matrix::from_rows(&[&[0.04]]);
        let ci = delta_interval(0.5, &[1.0], &cov, 0.95).unwrap();
        assert_eq!(ci.center, 0.5);
        assert!((ci.half_width - 1.959963984540054 * 0.2).abs() < 1e-8);
    }

    #[test]
    fn builder_reuses_covariance() {
        let dm = DeltaMethod::new(Matrix::identity(2));
        assert_eq!(dm.dim(), 2);
        assert!((dm.variance(&[3.0, 4.0]).unwrap() - 25.0).abs() < 1e-12);
        assert!((dm.deviation(&[3.0, 4.0]).unwrap() - 5.0).abs() < 1e-12);
        let ci = dm.interval(1.0, &[1.0, 0.0], 0.5).unwrap();
        assert!((ci.half_width - 0.6744897501960817).abs() < 1e-8);
        assert_eq!(dm.covariance().rows(), 2);
    }

    #[test]
    fn monte_carlo_validates_delta_method() {
        // Y = X1 * X2 with independent X1~N(2, 0.01), X2~N(3, 0.04).
        // Delta: Var ≈ (3)^2*0.01 + (2)^2*0.04 = 0.25.
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x1 = 2.0 + 0.1 * standard_normal(&mut rng);
            let x2 = 3.0 + 0.2 * standard_normal(&mut rng);
            ys.push(x1 * x2);
        }
        let mean: f64 = ys.iter().sum::<f64>() / n as f64;
        let var: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let cov = Matrix::diagonal(&[0.01, 0.04]);
        let predicted = delta_variance(&[3.0, 2.0], &cov).unwrap();
        assert!((mean - 6.0).abs() < 0.01, "mean {mean}");
        assert!(
            (var - predicted).abs() / predicted < 0.05,
            "var {var} vs {predicted}"
        );
    }

    /// Box-Muller standard normal for the Monte-Carlo test.
    fn standard_normal(rng: &mut impl rand::RngExt) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}
