//! Nonparametric percentile bootstrap.
//!
//! The paper derives every interval analytically through the delta
//! method (Theorem 1). The bootstrap provides an *independent* way to
//! interval the same statistics — resample tasks with replacement,
//! recompute the statistic, and read quantiles off the resampling
//! distribution — and is used throughout the test suite as a
//! cross-check oracle: on the same data, delta-method and bootstrap
//! intervals must broadly agree in center and width. It is also a
//! practical fallback for statistics whose gradients are unavailable.
//!
//! The implementation is deliberately dependency-free: resampling uses
//! a small internal SplitMix64 generator so that `crowd-stats` keeps
//! its zero-dependency surface (`rand` is a dev-dependency only).

use crate::{ConfidenceInterval, Result, StatsError};

/// Percentile-bootstrap configuration.
///
/// # Example
///
/// ```
/// use crowd_stats::Bootstrap;
///
/// // 90% interval for the mean of a sample, from 500 resamples.
/// let sample: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
/// let boot = Bootstrap { resamples: 500, seed: 7 };
/// let ci = boot.percentile_interval(
///     &sample,
///     |xs| Some(xs.iter().sum::<f64>() / xs.len() as f64),
///     0.9,
/// )?;
/// assert!(ci.contains(4.5)); // true mean of 0..=9
/// # Ok::<(), crowd_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bootstrap {
    /// Number of bootstrap resamples (1000 is a common default).
    pub resamples: usize,
    /// Seed of the internal resampling generator.
    pub seed: u64,
}

impl Default for Bootstrap {
    fn default() -> Self {
        Self {
            resamples: 1000,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl Bootstrap {
    /// Creates a configuration with the given resample count.
    pub fn with_resamples(resamples: usize) -> Self {
        Self {
            resamples,
            ..Self::default()
        }
    }

    /// Percentile-bootstrap confidence interval for
    /// `statistic(items)`.
    ///
    /// The statistic may return `None` on a degenerate resample (e.g.
    /// an agreement rate at the inversion singularity); such resamples
    /// are dropped. Errors with [`StatsError::InsufficientData`] when
    /// fewer than half the resamples produce a value — at that point
    /// the surviving quantiles are selection-biased and shouldn't be
    /// trusted.
    pub fn percentile_interval<T: Clone>(
        &self,
        items: &[T],
        statistic: impl Fn(&[T]) -> Option<f64>,
        confidence: f64,
    ) -> Result<ConfidenceInterval> {
        if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
            return Err(StatsError::InvalidProbability {
                value: confidence,
                what: "confidence",
            });
        }
        if items.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, need: 1 });
        }
        if self.resamples < 2 {
            return Err(StatsError::InsufficientData {
                got: self.resamples,
                need: 2,
            });
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut stats = Vec::with_capacity(self.resamples);
        let mut resample = Vec::with_capacity(items.len());
        for _ in 0..self.resamples {
            resample.clear();
            for _ in 0..items.len() {
                let idx = (rng.next() % items.len() as u64) as usize;
                resample.push(items[idx].clone());
            }
            if let Some(v) = statistic(&resample)
                && v.is_finite()
            {
                stats.push(v);
            }
        }
        if stats.len() < self.resamples.div_ceil(2) {
            return Err(StatsError::InsufficientData {
                got: stats.len(),
                need: self.resamples.div_ceil(2),
            });
        }
        stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
        let lo = quantile(&stats, (1.0 - confidence) / 2.0);
        let hi = quantile(&stats, (1.0 + confidence) / 2.0);
        Ok(ConfidenceInterval::from_bounds(lo, hi, confidence))
    }

    /// Bootstrap estimate of the statistic's standard deviation (the
    /// resampling distribution's deviation), with the same degenerate
    /// handling as [`Bootstrap::percentile_interval`].
    pub fn deviation<T: Clone>(
        &self,
        items: &[T],
        statistic: impl Fn(&[T]) -> Option<f64>,
    ) -> Result<f64> {
        // A percentile interval at any level carries the same resample
        // set; reuse the machinery via a wide interval then derive the
        // deviation from raw resamples instead for exactness.
        if items.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, need: 1 });
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut summary = crate::OnlineSummary::new();
        let mut resample = Vec::with_capacity(items.len());
        for _ in 0..self.resamples {
            resample.clear();
            for _ in 0..items.len() {
                let idx = (rng.next() % items.len() as u64) as usize;
                resample.push(items[idx].clone());
            }
            if let Some(v) = statistic(&resample)
                && v.is_finite()
            {
                summary.push(v);
            }
        }
        if (summary.count() as usize) < self.resamples.div_ceil(2) {
            return Err(StatsError::InsufficientData {
                got: summary.count() as usize,
                need: self.resamples.div_ceil(2),
            });
        }
        Ok(summary.std_dev())
    }
}

/// Linear-interpolation empirical quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// SplitMix64 — tiny, well-distributed, and dependency-free. Only used
/// for bootstrap index resampling, where statistical quality demands
/// are mild.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_stat(xs: &[f64]) -> Option<f64> {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }

    #[test]
    fn mean_interval_matches_clt() {
        // 400 iid observations from a known two-point distribution:
        // the bootstrap 95% interval for the mean must sit near
        // mean ± 1.96·s/√n.
        let items: Vec<f64> = (0..400)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        let ci = Bootstrap::default()
            .percentile_interval(&items, mean_stat, 0.95)
            .unwrap();
        let s = (0.25f64 * 0.75 / 400.0).sqrt();
        assert!((ci.center - 0.25).abs() < 0.01, "center {}", ci.center);
        assert!(
            (ci.half_width - 1.96 * s).abs() < 0.3 * 1.96 * s,
            "half width {} vs CLT {}",
            ci.half_width,
            1.96 * s
        );
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let small: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 5) as f64).collect();
        let b = Bootstrap::with_resamples(500);
        let ci_small = b.percentile_interval(&small, mean_stat, 0.9).unwrap();
        let ci_large = b.percentile_interval(&large, mean_stat, 0.9).unwrap();
        assert!(ci_large.size() < ci_small.size() * 0.5);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let items: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let b = Bootstrap {
            resamples: 200,
            seed: 42,
        };
        let a = b.percentile_interval(&items, mean_stat, 0.8).unwrap();
        let c = b.percentile_interval(&items, mean_stat, 0.8).unwrap();
        assert_eq!(a.lo(), c.lo());
        assert_eq!(a.hi(), c.hi());
    }

    #[test]
    fn degenerate_resamples_are_dropped_until_half() {
        // Statistic fails on resamples whose mean is below the median
        // — roughly half fail, which is still (barely) acceptable.
        let items: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let b = Bootstrap {
            resamples: 400,
            seed: 7,
        };
        let result = b.percentile_interval(
            &items,
            |xs| {
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                (m >= 0.5).then_some(m)
            },
            0.9,
        );
        // Either an interval from the surviving half, or a clean
        // insufficient-data error — never a panic or a junk interval.
        if let Ok(ci) = result {
            assert!(ci.center >= 0.5);
        }
        // A statistic that always fails must error.
        let err = b.percentile_interval(&items, |_| None::<f64>, 0.9);
        assert!(matches!(err, Err(StatsError::InsufficientData { .. })));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let items = vec![1.0, 2.0];
        let b = Bootstrap::default();
        assert!(b.percentile_interval(&items, mean_stat, 1.0).is_err());
        assert!(b.percentile_interval(&items, mean_stat, 0.0).is_err());
        assert!(b.percentile_interval::<f64>(&[], mean_stat, 0.9).is_err());
        assert!(
            Bootstrap {
                resamples: 1,
                seed: 0
            }
            .percentile_interval(&items, mean_stat, 0.9)
            .is_err()
        );
    }

    #[test]
    fn deviation_matches_interval_scale() {
        let items: Vec<f64> = (0..300).map(|i| ((i * 7) % 13) as f64).collect();
        let b = Bootstrap::with_resamples(800);
        let dev = b.deviation(&items, mean_stat).unwrap();
        let ci = b.percentile_interval(&items, mean_stat, 0.95).unwrap();
        // Percentile half-width ≈ 1.96 × bootstrap deviation.
        assert!(
            (ci.half_width / dev - 1.96).abs() < 0.4,
            "half width {} vs deviation {}",
            ci.half_width,
            dev
        );
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn splitmix_is_not_obviously_broken() {
        let mut rng = SplitMix64::new(1);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[(rng.next() % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket counts {buckets:?}");
        }
    }
}
