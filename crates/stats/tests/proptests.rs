//! Property-based tests for the statistics substrate.

use crowd_linalg::Matrix;
use crowd_stats::{
    Bootstrap, ConfidenceInterval, OnlineSummary, WeightPolicy, erf, min_variance_weights,
    normal_cdf, normal_quantile, two_sided_z, wald_interval, wilson_interval,
};
use proptest::prelude::*;

/// Strategy: a random symmetric positive-definite l×l matrix,
/// `AᵀA + ε·I`.
fn spd_matrix(l: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, l * l).prop_map(move |raw| {
        let a = Matrix::from_fn(l, l, |r, c| raw[r * l + c]);
        let mut m = a.transpose().matmul(&a);
        for i in 0..l {
            m.set(i, i, m.get(i, i) + 0.1);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `erf` is odd, bounded and monotone.
    #[test]
    fn erf_shape(x in -6.0f64..6.0, y in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
        if x < y {
            prop_assert!(erf(x) <= erf(y) + 1e-12);
        }
    }

    /// The quantile inverts the cdf across the whole usable range.
    #[test]
    fn quantile_cdf_roundtrip(p in 0.0005f64..0.9995) {
        let x = normal_quantile(p).unwrap();
        prop_assert!((normal_cdf(x) - p).abs() < 1e-9, "p = {}, cdf(q(p)) = {}", p, normal_cdf(x));
    }

    /// Two-sided z-scores grow with the confidence level.
    #[test]
    fn z_is_monotone(c1 in 0.01f64..0.98, delta in 0.001f64..0.01) {
        let c2 = (c1 + delta).min(0.99);
        prop_assert!(two_sided_z(c1).unwrap() < two_sided_z(c2).unwrap());
    }

    /// Interval construction: center/size/contains are consistent.
    #[test]
    fn interval_geometry(center in -1.0f64..2.0, dev in 0.0f64..0.5, c in 0.05f64..0.95) {
        let ci = ConfidenceInterval::from_deviation(center, dev, c).unwrap();
        prop_assert!((ci.lo() + ci.hi()) / 2.0 - center < 1e-12);
        prop_assert!(ci.size() >= 0.0);
        prop_assert!(ci.contains(center));
        prop_assert!(!ci.contains(ci.hi() + 1e-9));
        // Clipping never grows the interval.
        let clipped = ci.clipped(0.0, 1.0);
        prop_assert!(clipped.size() <= ci.size() + 1e-12);
        prop_assert!(clipped.lo() >= 0.0 && clipped.hi() <= 1.0);
    }

    /// Wilson intervals always sit inside [0, 1] and contain the point
    /// estimate's neighborhood; Wald and Wilson agree asymptotically.
    #[test]
    fn proportion_intervals(successes in 0u64..200, extra in 1u64..200, c in 0.5f64..0.99) {
        let trials = successes + extra;
        let wilson = wilson_interval(successes, trials, c).unwrap();
        prop_assert!(wilson.lo() >= 0.0 && wilson.hi() <= 1.0);
        let wald = wald_interval(successes, trials, c).unwrap();
        // Same data at 10x the sample size: both intervals shrink.
        let wilson_big = wilson_interval(successes * 10, trials * 10, c).unwrap();
        prop_assert!(wilson_big.size() <= wilson.size() + 1e-12);
        let wald_big = wald_interval(successes * 10, trials * 10, c).unwrap();
        prop_assert!(wald_big.size() <= wald.size() + 1e-12);
        // And converge toward each other.
        prop_assert!((wilson_big.center - wald_big.center).abs()
            <= (wilson.center - wald.center).abs() + 1e-9);
    }

    /// Lemma 5 weights minimize the variance against arbitrary
    /// competing weight vectors, for arbitrary SPD covariances.
    #[test]
    fn min_variance_weights_are_optimal(
        c in spd_matrix(4),
        competitor in proptest::collection::vec(-2.0f64..2.0, 4),
    ) {
        let opt = min_variance_weights(&c, WeightPolicy::MinimumVariance).unwrap();
        prop_assert!((opt.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Normalize the competitor to sum 1 (skip near-degenerate draws).
        let sum: f64 = competitor.iter().sum();
        prop_assume!(sum.abs() > 0.1);
        let w: Vec<f64> = competitor.iter().map(|x| x / sum).collect();
        let var = |w: &[f64]| -> f64 {
            let mut v = 0.0;
            for (i, &wi) in w.iter().enumerate() {
                for (j, &wj) in w.iter().enumerate() {
                    v += wi * wj * c.get(i, j);
                }
            }
            v
        };
        prop_assert!(
            var(&w) >= opt.variance - 1e-9,
            "competitor {:?} beats Lemma 5: {} < {}",
            w, var(&w), opt.variance
        );
    }

    /// The bootstrap interval for the mean brackets the sample mean
    /// and shrinks when the data has less spread.
    #[test]
    fn bootstrap_mean_interval_brackets_sample_mean(
        xs in proptest::collection::vec(-10.0f64..10.0, 20..80),
        seed in 0u64..1000,
    ) {
        let boot = Bootstrap { resamples: 200, seed };
        let stat = |s: &[f64]| Some(s.iter().sum::<f64>() / s.len() as f64);
        let ci = boot.percentile_interval(&xs, stat, 0.95).unwrap();
        let mean = stat(&xs).unwrap();
        // The resampling distribution of the mean is centered at the
        // sample mean; with 200 resamples at 95% the sample mean is
        // inside the percentile interval for all but adversarial draws.
        prop_assert!(
            ci.lo() <= mean + 1e-9 && mean <= ci.hi() + 1e-9,
            "sample mean {mean} outside bootstrap interval [{}, {}]",
            ci.lo(), ci.hi()
        );
    }

    /// Welford merging is associative with the batch statistics.
    #[test]
    fn online_summary_merge(xs in proptest::collection::vec(-50.0f64..50.0, 2..60),
                            split in 0usize..60) {
        let split = split.min(xs.len());
        let mut left = OnlineSummary::new();
        let mut right = OnlineSummary::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        let mut all = OnlineSummary::new();
        for &x in &xs {
            all.push(x);
        }
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-9);
        prop_assert_eq!(left.count(), all.count());
        prop_assert_eq!(left.min(), all.min());
        prop_assert_eq!(left.max(), all.max());
    }
}
