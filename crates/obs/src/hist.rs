//! The log₂-bucketed histogram core: an atomic recording side
//! ([`LatencyHistogram`]) and a plain-data query side
//! ([`HistogramSnapshot`]), sharing one bucketing rule.
//!
//! # Bucketing rule
//!
//! [`bucket_index`]`(v)` is the bit length of `v`: bucket 0 holds
//! exactly the value 0, and bucket `i ≥ 1` holds
//! `2^(i-1) ≤ v < 2^i`. Zero gets a bucket of its own — an empty
//! batch, a zero-length wait — so it is never silently folded into
//! the count of ones. Indices are clamped to [`BUCKETS`]` - 1`, making
//! the last bucket open-ended; at 64 buckets that only folds together
//! values ≥ 2⁶² — beyond a century in nanoseconds.
//!
//! # Percentile semantics (pinned here, used everywhere)
//!
//! All percentile queries in this workspace use the **nearest-rank**
//! rule: `percentile(q)` is the smallest reported value such that at
//! least `⌈q · count⌉` recorded samples are ≤ it. For the histogram
//! that value is the containing bucket's inclusive upper bound
//! (`2^i - 1`), further clamped to the exact recorded maximum — so
//! `percentile(1.0) == max()` exactly, and every estimate is within
//! 2× of the true sample percentile. [`crate::sample_percentile`] is
//! the exact-sample twin with the same rank rule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets; see the [module docs](self) for the
/// bucket boundaries.
pub const BUCKETS: usize = 64;

/// The bucket holding `value`: its bit length, clamped to the last
/// (open-ended) bucket. Zero maps to bucket 0, and bucket 0 holds
/// only zero.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` under [`bucket_index`]:
/// 0 for bucket 0, `2^(i-1)` otherwise.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 { 0 } else { 1u64 << (i - 1) }
}

/// Inclusive upper bound of bucket `i` under [`bucket_index`]:
/// 0 for bucket 0, `2^i - 1` otherwise (saturating for the last,
/// open-ended bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A wait-free, thread-safe log₂ latency histogram over `u64` values
/// (by convention nanoseconds).
///
/// # Per-call cost
///
/// [`LatencyHistogram::record`] is four uncontended relaxed atomic
/// RMW operations (bucket, count, sum, max) — roughly 10–20 ns on
/// current x86, with no locks, no allocation and no possibility of
/// blocking the recording thread (`fetch_add`/`fetch_max` are single
/// instructions there). Queries ([`LatencyHistogram::snapshot`])
/// read 67 atomics; concurrent recording never blocks them.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free; safe from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest value recorded so far (exact, not bucketed); 0 when
    /// empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` (used when retiring a
    /// per-thread histogram into a fleet-wide one).
    pub fn merge(&self, other: &LatencyHistogram) {
        let snap = other.snapshot();
        for (i, &c) in snap.buckets().iter().enumerate() {
            if c != 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count(), Ordering::Relaxed);
        self.sum.fetch_add(snap.sum(), Ordering::Relaxed);
        self.max.fetch_max(snap.max(), Ordering::Relaxed);
    }

    /// A plain-data copy for querying. Taken concurrently with
    /// recording, the copy is a consistent-enough view for
    /// monitoring: each field is read once, so `count` may trail a
    /// racing `record` by a few samples but never tears.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data histogram: the query (and wire) side of
/// [`LatencyHistogram`]. Cheap to clone, compare and serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuilds a snapshot from previously-reported parts — the
    /// constructor wire decoding uses to carry a histogram across a
    /// connection losslessly. No consistency between `buckets`,
    /// `count`, `sum` and `max` is enforced: the snapshot reports
    /// what it was given.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u64, max: u64) -> Self {
        Self {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// The bucket counts; bucket boundaries per [`bucket_index`].
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate for `q ∈ [0, 1]`; see the
    /// [module docs](self) for the pinned semantics. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        // Bucket counts summed short of `count` (snapshot raced a
        // recorder): the max is the best remaining answer.
        self.max
    }

    /// Median estimate (`percentile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Adds every sample of `other` into `self`. Merging snapshots is
    /// exact: bucket counts, counts and sums add, maxima take the
    /// larger — identical to having recorded both sample streams into
    /// one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rule_separates_zero_from_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i));
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
        }
        assert_eq!(bucket_index(bucket_upper_bound(5)), 5);
    }

    #[test]
    fn record_and_query() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 1, 7, 100, 1000, 65_536] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.max(), 65_536);
        assert_eq!(s.sum(), 66_645);
        assert_eq!(s.buckets()[0], 1, "zero gets its own bucket");
        assert_eq!(s.buckets()[1], 2);
        // p100 is the exact max; p50 is within 2x of the true median.
        assert_eq!(s.percentile(1.0), 65_536);
        let p50 = s.p50();
        assert!((7..=13).contains(&p50), "p50 estimate {p50} for median 7");
    }

    #[test]
    fn percentiles_clamp_to_exact_max() {
        let h = LatencyHistogram::new();
        h.record(1000);
        let s = h.snapshot();
        // The bucket upper bound is 1023, but only 1000 was seen.
        assert_eq!(s.p50(), 1000);
        assert_eq!(s.p99(), 1000);
    }

    #[test]
    fn empty_histogram_queries_are_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_matches_concatenated_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for v in [3u64, 9, 0, 500] {
            a.record(v);
            both.record(v);
        }
        for v in [12u64, 80_000, 2] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
        let mut sa = LatencyHistogram::new().snapshot();
        sa.merge(&b.snapshot());
        sa.merge(&LatencyHistogram::new().snapshot());
        assert_eq!(sa.count(), 3);
    }

    #[test]
    fn duration_recording_saturates() {
        let h = LatencyHistogram::new();
        h.record_duration(Duration::from_nanos(250));
        h.record_duration(Duration::from_secs(u64::MAX));
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.buckets()[8], 1, "250 ns in bucket 8");
    }
}
