//! `crowd_obs` — dependency-free observability for the crowd
//! assessment stack.
//!
//! Three pieces, all built on `std` atomics with no external crates:
//!
//! * [`LatencyHistogram`] — a log₂-bucketed histogram over `u64`
//!   values (nanoseconds, batch sizes, …). [`LatencyHistogram::record`]
//!   is **wait-free**: four relaxed atomic RMWs (bucket, count, sum,
//!   max), no locks, no allocation — cheap enough for every message
//!   on an ingest path. Queries go through a [`HistogramSnapshot`]
//!   ([`HistogramSnapshot::percentile`], `p50`/`p99`, `mean`, `max`)
//!   and snapshots [`merge`](HistogramSnapshot::merge) exactly, so
//!   per-shard recording plus a merge at scrape time equals one
//!   global histogram.
//! * [`MetricsRegistry`] — named [`Counter`]s / [`Gauge`]s /
//!   histograms with a Prometheus text exposition
//!   ([`MetricsRegistry::render_text`]). Registration locks briefly;
//!   recording through the returned handles never locks.
//! * [`EventJournal`] — a bounded lock-free flight recorder keeping
//!   the last N structured [`Event`]s (re-anchor, shed, slow-op, …)
//!   with monotonic timestamps. [`EventJournal::record`] is one
//!   ticket `fetch_add` + one CAS + a handful of relaxed stores; a
//!   contended wrap-around drops the event (counted) instead of ever
//!   waiting.
//!
//! # Percentile semantics
//!
//! Every percentile this workspace reports uses **nearest-rank**
//! semantics, pinned here: the answer for quantile `q` over `n`
//! samples is the smallest value with at least `⌈q·n⌉` samples `≤`
//! it (so `q = 1.0` is the maximum). [`sample_percentile`] computes
//! it exactly over raw samples; [`HistogramSnapshot::percentile`]
//! answers the same question from buckets, returning the bucket's
//! inclusive upper bound clamped to the exact recorded maximum.

pub mod hist;
pub mod journal;
pub mod registry;

pub use hist::{
    BUCKETS, HistogramSnapshot, LatencyHistogram, bucket_index, bucket_lower_bound,
    bucket_upper_bound,
};
pub use journal::{Event, EventJournal, EventKind, MAX_LABEL_BYTES, NO_SHARD};
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry};

/// Exact nearest-rank percentile over raw samples (sorts `values`
/// in place with `total_cmp`; NaNs sort last). Returns `0.0` for an
/// empty slice. `q` is clamped to `[0, 1]`; `q = 0.5` is the median,
/// `q = 1.0` the maximum.
pub fn sample_percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let n = values.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    values[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_percentile_nearest_rank() {
        let mut v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(sample_percentile(&mut v, 0.30), 20.0);
        assert_eq!(sample_percentile(&mut v, 0.40), 20.0);
        assert_eq!(sample_percentile(&mut v, 0.50), 35.0);
        assert_eq!(sample_percentile(&mut v, 1.00), 50.0);
        assert_eq!(sample_percentile(&mut v, 0.00), 15.0);
        assert_eq!(sample_percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn sample_and_histogram_percentiles_agree_on_powers_of_two() {
        // On exact bucket boundaries the histogram answer is exact.
        let h = LatencyHistogram::new();
        let mut raw = Vec::new();
        for v in [1u64, 1, 3, 7, 7, 15, 31] {
            h.record(v);
            raw.push(v as f64);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                snap.percentile(q),
                sample_percentile(&mut raw.clone(), q) as u64,
                "q={q}"
            );
        }
    }
}
