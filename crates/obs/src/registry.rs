//! A registry of named metrics: counters, gauges and latency
//! histograms, with a Prometheus-style text exposition.
//!
//! Registration takes a short-lived write lock; **recording never
//! locks** — handles ([`Counter`], [`Gauge`], [`HistogramHandle`])
//! are `Arc`s onto the shared atomics, so a hot path registers once
//! at startup and then records wait-free.
//!
//! # Naming
//!
//! Names are Prometheus-style: `snake_case`, optionally with a
//! trailing `{label="value"}` block (e.g.
//! `crowd_stage_queue_wait_ns{shard="3"}`). [`render_text`] groups
//! series that share the base name (the part before `{`) under one
//! `# TYPE` header, as the exposition format requires.
//!
//! # Per-call cost
//!
//! [`Counter::add`] / [`Gauge::set`] are one relaxed atomic RMW /
//! store. [`HistogramHandle::record`] is four relaxed RMWs (see
//! [`crate::LatencyHistogram`]).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::hist::{HistogramSnapshot, LatencyHistogram, bucket_upper_bound};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`; one relaxed `fetch_add`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value; one relaxed store.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `sub`); one relaxed `fetch_add`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A recording handle onto a registered [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<LatencyHistogram>);

impl HistogramHandle {
    /// Records one value; four relaxed RMWs, wait-free.
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Records a duration as whole nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.0.record_duration(d);
    }

    /// A consistent-enough copy for querying (see
    /// [`LatencyHistogram::snapshot`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
    /// An already-collected snapshot (e.g. one that arrived over a
    /// wire), registered only to be rendered.
    Frozen(Box<HistogramSnapshot>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// The registry; see the [module docs](self).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: RwLock<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, metric: Metric) {
        let mut entries = self.entries.write().expect("registry lock poisoned");
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Registers (or re-registers) a counter and returns its handle.
    /// Re-registering the exact name returns the existing handle, so
    /// restarted components share one series.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        if let Some(Metric::Counter(c)) = self.find(name) {
            return c;
        }
        let c = Counter::default();
        self.register(name, help, Metric::Counter(c.clone()));
        c
    }

    /// Registers a gauge; same sharing rule as [`Self::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        if let Some(Metric::Gauge(g)) = self.find(name) {
            return g;
        }
        let g = Gauge::default();
        self.register(name, help, Metric::Gauge(g.clone()));
        g
    }

    /// Registers a histogram; same sharing rule as [`Self::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        if let Some(Metric::Histogram(h)) = self.find(name) {
            return h;
        }
        let h = HistogramHandle(Arc::new(LatencyHistogram::new()));
        self.register(name, help, Metric::Histogram(h.clone()));
        h
    }

    /// Registers a pre-collected histogram snapshot under `name`, for
    /// rendering only (no recording handle). Useful when the numbers
    /// were gathered elsewhere — another process, the far side of a
    /// connection — and this registry is just the renderer.
    pub fn frozen_histogram(&self, name: &str, help: &str, snap: HistogramSnapshot) {
        self.register(name, help, Metric::Frozen(Box::new(snap)));
    }

    fn find(&self, name: &str) -> Option<Metric> {
        let entries = self.entries.read().expect("registry lock poisoned");
        entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| match &e.metric {
                Metric::Counter(c) => Metric::Counter(c.clone()),
                Metric::Gauge(g) => Metric::Gauge(g.clone()),
                Metric::Histogram(h) => Metric::Histogram(h.clone()),
                Metric::Frozen(s) => Metric::Frozen(s.clone()),
            })
    }

    /// Registered series count.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prometheus text exposition of every registered series, in
    /// registration order, grouping same-base-name series under one
    /// `# HELP`/`# TYPE` header pair.
    pub fn render_text(&self) -> String {
        let entries = self.entries.read().expect("registry lock poisoned");
        let mut out = String::new();
        let mut last_base = String::new();
        for e in entries.iter() {
            let base = base_name(&e.name);
            if base != last_base {
                let kind = match e.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) | Metric::Frozen(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {base} {}", e.help);
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_base = base.to_string();
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    render_histogram(&mut out, &e.name, &h.snapshot());
                }
                Metric::Frozen(s) => {
                    render_histogram(&mut out, &e.name, s);
                }
            }
        }
        out
    }
}

/// The series name before any `{label}` block.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splices `extra` into the (possibly empty) label block of `name`:
/// `f("x{a=\"1\"}", "le=\"2\"")` → `x{a="1",le="2"}`.
fn with_label(name: &str, extra: &str) -> String {
    match name.find('{') {
        Some(open) => {
            let close = name.rfind('}').unwrap_or(name.len());
            format!("{}{{{},{}}}", &name[..open], &name[open + 1..close], extra)
        }
        None => format!("{name}{{{extra}}}"),
    }
}

/// Writes one histogram in Prometheus exposition form: cumulative
/// `_bucket{le=...}` lines over the non-empty prefix of the log₂
/// buckets, then `_sum` and `_count`.
pub(crate) fn render_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let base = base_name(name);
    let suffix = &name[base.len()..];
    let mut cumulative = 0u64;
    let buckets = snap.buckets();
    let highest = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    for (i, &c) in buckets.iter().enumerate().take(highest) {
        cumulative += c;
        let le = bucket_upper_bound(i);
        let name = with_label(&format!("{base}_bucket{suffix}"), &format!("le=\"{le}\""));
        let _ = writeln!(out, "{name} {cumulative}");
    }
    let name = with_label(&format!("{base}_bucket{suffix}"), "le=\"+Inf\"");
    let _ = writeln!(out, "{name} {}", snap.count());
    let _ = writeln!(out, "{base}_sum{suffix} {}", snap.sum());
    let _ = writeln!(out, "{base}_count{suffix} {}", snap.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total", "Requests served.");
        let g = reg.gauge("queue_depth", "Items queued.");
        c.add(3);
        g.set(-2);
        let text = reg.render_text();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth -2"));
    }

    #[test]
    fn reregistering_shares_the_series() {
        let reg = MetricsRegistry::new();
        reg.counter("hits", "h").inc();
        reg.counter("hits", "h").inc();
        assert_eq!(reg.counter("hits", "h").get(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn labeled_series_share_one_header() {
        let reg = MetricsRegistry::new();
        reg.counter("ops_total{shard=\"0\"}", "Ops.").add(1);
        reg.counter("ops_total{shard=\"1\"}", "Ops.").add(2);
        let text = reg.render_text();
        assert_eq!(text.matches("# TYPE ops_total counter").count(), 1);
        assert!(text.contains("ops_total{shard=\"0\"} 1"));
        assert!(text.contains("ops_total{shard=\"1\"} 2"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns{stage=\"x\"}", "Latency.");
        h.record(1);
        h.record(1);
        h.record(5);
        let text = reg.render_text();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{stage=\"x\",le=\"1\"} 2"));
        assert!(text.contains("lat_ns_bucket{stage=\"x\",le=\"7\"} 3"));
        assert!(text.contains("lat_ns_bucket{stage=\"x\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum{stage=\"x\"} 7"));
        assert!(text.contains("lat_ns_count{stage=\"x\"} 3"));
    }
}
