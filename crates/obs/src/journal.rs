//! The flight recorder: a bounded, lock-free ring of the last N
//! structured events.
//!
//! # Design
//!
//! The journal is a power-of-two ring of slots, each made entirely of
//! atomics and guarded by a per-slot sequence word (a seqlock):
//!
//! * a writer claims a ticket `n` from a global counter
//!   (`fetch_add`), CASes the slot's sequence from the previous
//!   generation's *stable* value to the *writing* value `2n + 1`,
//!   stores the fields, then publishes `2n + 2` with release
//!   ordering;
//! * a reader accepts a slot only when it observes the stable value
//!   `2n + 2` both before and after copying the fields (all-atomic
//!   fields make the racy copy well-defined; the double check makes
//!   it consistent).
//!
//! A writer whose CAS fails — the ring wrapped onto a slot another
//! writer is still filling — **drops its event** rather than spin:
//! the journal is a diagnostic of last resort and must never add a
//! wait to a hot path. Drops are counted ([`EventJournal::dropped`])
//! and only occur when ≥ capacity events are recorded while one
//! write is still in flight, which at flight-recorder event rates
//! (re-anchors, shed batches, slow operations) is effectively never.
//!
//! # Per-call cost
//!
//! [`EventJournal::record`] is one `fetch_add`, one CAS, ~10 relaxed
//! stores and one release store — well under 100 ns — plus one
//! monotonic clock read. No allocation, no locks, no blocking.
//! Labels are truncated to [`MAX_LABEL_BYTES`] bytes (at a UTF-8
//! boundary) so the slot stays fixed-size.

use std::sync::atomic::{AtomicU64, Ordering, fence};
use std::time::Instant;

/// Longest label stored per event, in bytes; longer labels are
/// truncated at a UTF-8 character boundary.
pub const MAX_LABEL_BYTES: usize = 24;
const LABEL_WORDS: usize = MAX_LABEL_BYTES / 8;

/// What happened; the flight-recorder event vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A streaming anchored view re-anchored (scope change forced a
    /// rebuild).
    Reanchor = 0,
    /// A gram table was materialized from scratch instead of patched.
    GramRebuild = 1,
    /// A report cache was wholesale-invalidated (confidence switch).
    CacheFullRefresh = 2,
    /// An ingest group was shed under backpressure.
    Shed = 3,
    /// An ingest call was rejected with a full queue.
    Reject = 4,
    /// An instrumented operation exceeded the slow-op threshold.
    SlowOp = 5,
    /// A shard thread was found dead at shutdown.
    ShardPanic = 6,
    /// Application-defined.
    Custom = 7,
    /// A supervised shard was respawned from its last checkpoint and
    /// its WAL replayed (`a` = recovery ordinal, `b` = recovery
    /// duration in nanoseconds).
    ShardRecovered = 8,
}

impl EventKind {
    /// Decodes the `u8` tag; `None` for values outside the
    /// vocabulary (wire decoding treats those as malformed).
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::Reanchor,
            1 => Self::GramRebuild,
            2 => Self::CacheFullRefresh,
            3 => Self::Shed,
            4 => Self::Reject,
            5 => Self::SlowOp,
            6 => Self::ShardPanic,
            7 => Self::Custom,
            8 => Self::ShardRecovered,
            _ => return None,
        })
    }

    /// A stable lowercase name (used as a metric label).
    pub fn name(self) -> &'static str {
        match self {
            Self::Reanchor => "reanchor",
            Self::GramRebuild => "gram_rebuild",
            Self::CacheFullRefresh => "cache_full_refresh",
            Self::Shed => "shed",
            Self::Reject => "reject",
            Self::SlowOp => "slow_op",
            Self::ShardPanic => "shard_panic",
            Self::Custom => "custom",
            Self::ShardRecovered => "shard_recovered",
        }
    }
}

/// One recovered journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic event number (the writer's ticket); gaps mean
    /// events were dropped or are mid-write.
    pub seq: u64,
    /// Nanoseconds since the journal was created (monotonic clock).
    pub timestamp_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Originating shard, or `u32::MAX` for fleet-level events.
    pub shard: u32,
    /// Kind-specific value (e.g. a duration in ns, a response count).
    pub a: u64,
    /// Second kind-specific value.
    pub b: u64,
    /// Short free-form label (e.g. the stage name of a slow op).
    pub label: String,
}

/// Fleet-level marker for [`Event::shard`].
pub const NO_SHARD: u32 = u32::MAX;

/// One all-atomic slot; see the [module docs](self) for the seqlock
/// protocol. `meta` packs `kind` (byte 0), label length (byte 1) and
/// `shard` (bytes 4–7).
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    label: [AtomicU64; LABEL_WORDS],
}

/// The bounded lock-free flight recorder; see the
/// [module docs](self).
#[derive(Debug)]
pub struct EventJournal {
    slots: Box<[Slot]>,
    mask: u64,
    next: AtomicU64,
    dropped: AtomicU64,
    base: Instant,
}

impl EventJournal {
    /// A journal keeping the last `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            mask: cap as u64 - 1,
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            base: Instant::now(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the journal's lifetime (including ones
    /// the ring has since overwritten).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Events lost to wrap-around contention (a writer found its slot
    /// still being filled by an older writer and gave up rather than
    /// wait).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the journal was created, on the monotonic
    /// clock every event timestamp uses.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one event. Lock-free and non-blocking; see the
    /// [module docs](self) for cost and the (counted) drop case.
    pub fn record(&self, kind: EventKind, shard: u32, a: u64, b: u64, label: &str) {
        let ts = self.now_ns();
        let n = self.next.fetch_add(1, Ordering::AcqRel);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(n & self.mask) as usize];
        let expected = if n < cap { 0 } else { 2 * (n - cap) + 2 };
        if slot
            .seq
            .compare_exchange(expected, 2 * n + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let label = truncate_utf8(label, MAX_LABEL_BYTES);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.meta.store(
            u64::from(kind as u8) | (label.len() as u64) << 8 | u64::from(shard) << 32,
            Ordering::Relaxed,
        );
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        let mut bytes = [0u8; MAX_LABEL_BYTES];
        bytes[..label.len()].copy_from_slice(label.as_bytes());
        for (w, chunk) in slot.label.iter().zip(bytes.chunks_exact(8)) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            w.store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    /// The retained events, oldest first. Entries being overwritten
    /// at the moment of the read are skipped (their tickets are
    /// simply absent), so the result is always a set of complete,
    /// untorn events in ticket order.
    pub fn snapshot(&self) -> Vec<Event> {
        let total = self.next.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = total.saturating_sub(cap);
        let mut out = Vec::with_capacity((total - start) as usize);
        for n in start..total {
            let slot = &self.slots[(n & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != 2 * n + 2 {
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let mut bytes = [0u8; MAX_LABEL_BYTES];
            for (chunk, w) in bytes.chunks_exact_mut(8).zip(&slot.label) {
                chunk.copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
            }
            // Field loads above must settle before the validity
            // re-check; the acquire fence orders them.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != 2 * n + 2 {
                continue;
            }
            let Some(kind) = EventKind::from_u8((meta & 0xFF) as u8) else {
                continue;
            };
            let len = ((meta >> 8) & 0xFF) as usize;
            let label = std::str::from_utf8(&bytes[..len.min(MAX_LABEL_BYTES)])
                .unwrap_or("")
                .to_string();
            out.push(Event {
                seq: n,
                timestamp_ns: ts,
                kind,
                shard: (meta >> 32) as u32,
                a,
                b,
                label,
            });
        }
        out
    }
}

/// The longest prefix of `s` that fits in `max` bytes without
/// splitting a UTF-8 character.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order_with_payloads() {
        let j = EventJournal::new(16);
        j.record(EventKind::Reanchor, 2, 7, 0, "view");
        j.record(EventKind::SlowOp, 0, 1_000_000, 500_000, "drain_eval");
        j.record(EventKind::Shed, NO_SHARD, 64, 0, "");
        let events = j.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Reanchor);
        assert_eq!(events[0].shard, 2);
        assert_eq!(events[0].a, 7);
        assert_eq!(events[1].label, "drain_eval");
        assert_eq!(events[2].shard, NO_SHARD);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(
            events
                .windows(2)
                .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns)
        );
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let j = EventJournal::new(8);
        for i in 0..20u64 {
            j.record(EventKind::Custom, 0, i, 0, "x");
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().a, 12, "oldest retained is #12");
        assert_eq!(events.last().unwrap().a, 19);
        assert_eq!(j.recorded(), 20);
        assert_eq!(j.dropped(), 0, "serial writers never contend");
    }

    #[test]
    fn labels_truncate_at_utf8_boundaries() {
        let j = EventJournal::new(8);
        // 'é' is 2 bytes; 13 of them is 26 bytes — the 24-byte cap
        // falls on a boundary (12 chars).
        let label: String = "é".repeat(13);
        j.record(EventKind::Custom, 0, 0, 0, &label);
        let events = j.snapshot();
        assert_eq!(events[0].label, "é".repeat(12));
    }

    #[test]
    fn kind_tags_roundtrip() {
        for tag in 0..9u8 {
            let k = EventKind::from_u8(tag).expect("valid tag");
            assert_eq!(k as u8, tag);
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(9), None);
        assert_eq!(EventKind::from_u8(255), None);
    }
}
