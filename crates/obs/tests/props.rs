//! Property tests pinning the histogram semantics: bucket rules,
//! percentile monotonicity, merge == concatenated recording, and
//! agreement between the exact sample percentile and its definition.

use crowd_obs::{
    BUCKETS, HistogramSnapshot, LatencyHistogram, bucket_index, bucket_lower_bound,
    bucket_upper_bound, sample_percentile,
};
use proptest::prelude::*;

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Mixed magnitudes: small exact values, mid-range, and huge.
    proptest::collection::vec((0..3usize, 0..u64::MAX), 0..64).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(sel, v)| match sel {
                0 => v % 16,
                1 => v % (1 << 20),
                _ => v,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn every_value_lands_inside_its_bucket(v in 0..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v <= bucket_upper_bound(i));
    }

    #[test]
    fn percentiles_are_monotone_in_q(values in arb_values()) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                snap.percentile(w[0]) <= snap.percentile(w[1]),
                "p({}) > p({})", w[0], w[1]
            );
        }
        if !values.is_empty() {
            let max = *values.iter().max().unwrap();
            prop_assert_eq!(snap.percentile(1.0), max);
            prop_assert!(snap.p50() <= snap.p99());
        }
    }

    #[test]
    fn percentile_never_undershoots_nor_escapes_its_bucket(
        values in arb_values(),
        q in 0.0f64..1.0,
    ) {
        // Nearest-rank over buckets: the answer is >= the exact
        // sample percentile and <= its bucket's upper bound.
        if values.is_empty() {
            return Ok(());
        }
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        // Exact nearest-rank on the raw u64s (f64 casts would round
        // huge samples).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = sorted[rank - 1];
        let answer = h.snapshot().percentile(q);
        prop_assert!(answer >= exact);
        prop_assert!(answer <= bucket_upper_bound(bucket_index(exact)));
    }

    #[test]
    fn merge_equals_concatenated_recording(
        a in arb_values(),
        b in arb_values(),
    ) {
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        let hall = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        // Snapshot-level merge…
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&ha.snapshot());
        merged.merge(&hb.snapshot());
        prop_assert_eq!(&merged, &hall.snapshot());
        // …and atomic-level merge agree with recording everything
        // into one histogram.
        let live = LatencyHistogram::new();
        live.merge(&ha);
        live.merge(&hb);
        prop_assert_eq!(live.snapshot(), hall.snapshot());
    }

    #[test]
    fn sample_percentile_matches_its_definition(
        values in proptest::collection::vec(-1.0e9f64..1.0e9, 1..40),
        q in 0.0f64..1.0,
    ) {
        let p = sample_percentile(&mut values.clone(), q);
        // Definition: smallest sample with >= ceil(q*n) samples <= it.
        let n = values.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let at_or_below = values.iter().filter(|&&v| v <= p).count();
        prop_assert!(at_or_below >= rank);
        prop_assert!(values.contains(&p));
    }
}
