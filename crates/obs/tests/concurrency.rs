//! Concurrency correctness for the wait-free histogram and the
//! lock-free journal: totals observed after a join must equal the
//! sums of what each thread recorded, with nothing lost or torn.

use std::sync::Arc;
use std::thread;

use crowd_obs::{EventJournal, EventKind, LatencyHistogram};

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                let mut sum = 0u64;
                for i in 0..PER_THREAD {
                    // Deterministic mixed-magnitude values, thread-distinct.
                    let v = (i * 2654435761 + t as u64) % (1 << 20);
                    hist.record(v);
                    sum += v;
                }
                sum
            })
        })
        .collect();
    let expected_sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    assert_eq!(hist.count(), THREADS as u64 * PER_THREAD);
    let snap = hist.snapshot();
    assert_eq!(snap.sum(), expected_sum);
    assert_eq!(
        snap.buckets().iter().sum::<u64>(),
        THREADS as u64 * PER_THREAD,
        "bucket totals match the count"
    );
    assert_eq!(snap.percentile(1.0), snap.max());
}

#[test]
fn concurrent_merge_equals_global_recording() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 5_000;
    let global = Arc::new(LatencyHistogram::new());
    let per_thread: Vec<_> = (0..THREADS)
        .map(|_| Arc::new(LatencyHistogram::new()))
        .collect();
    let handles: Vec<_> = per_thread
        .iter()
        .enumerate()
        .map(|(t, local)| {
            let local = Arc::clone(local);
            let global = Arc::clone(&global);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let v = (i * 48271 + t as u64 * 7) % (1 << 16);
                    local.record(v);
                    global.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut merged = crowd_obs::HistogramSnapshot::empty();
    for local in &per_thread {
        merged.merge(&local.snapshot());
    }
    assert_eq!(merged, global.snapshot());
}

#[test]
fn concurrent_journal_writes_stay_untorn() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 2_000;
    let journal = Arc::new(EventJournal::new(64));
    let handles: Vec<_> = (0..THREADS as u32)
        .map(|t| {
            let journal = Arc::clone(&journal);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // a and b carry a checksum relation a snapshot can verify.
                    journal.record(EventKind::Custom, t, i, i ^ u64::from(t), "stress");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(journal.recorded(), THREADS as u64 * PER_THREAD);
    let events = journal.snapshot();
    assert!(events.len() <= journal.capacity());
    for e in &events {
        assert_eq!(e.kind, EventKind::Custom);
        assert_eq!(e.b, e.a ^ u64::from(e.shard), "no torn slot survived");
        assert_eq!(e.label, "stress");
    }
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "snapshot is ticket-ordered"
    );
    // Dropped events are allowed under wrap contention but every
    // ticket is accounted for: recorded = retained-or-overwritten.
    assert!(journal.dropped() <= journal.recorded());
}
