//! The [`PeerGram`] kernel — batched triple-overlap counts for the
//! Lemma 4 / Lemma 9 covariance assemblies.
//!
//! The m-worker estimators' covariance hot loop asks one anchored view
//! for `c_{anchor,a,b}` over every pair `(a, b)` drawn from the ≤ 2l
//! peers the pairing selected — `O(T²)` queries per evaluated worker,
//! each a fresh word-by-word AND+popcount over the two peers' mask
//! rows (`O(n̄/64)` words a query). The same mask row is re-streamed
//! once per opposite peer, so the per-anchor popcount work is
//! `O(T²·n̄/64)` with every load used exactly once.
//!
//! `PeerGram` computes the full peers×peers symmetric matrix of
//! AND-popcounts in **one register-blocked pass** over the mask words
//! ([`MaskMatrix::gram_rows_into`]): rows are processed in blocks of
//! [`GRAM_BLOCK`](crate::index) so each loaded cache line of mask
//! words feeds multiple independent accumulators, and the per-row
//! popcounts land on the diagonal for free. The covariance assembly
//! then reads `O(T²)` table entries instead of issuing `O(T²)` kernel
//! calls: `O(T²·n̄/64)` repeated popcount work becomes one
//! `O(l²·n̄/64)` blocked pass plus `O(T²)` lookups, and the blocked
//! inner loop is the seam a future SIMD (`portable_simd` / AVX2) lane
//! drops into.
//!
//! [`TriplePairGram`] is the same idea for the k-ary cross-triple
//! `n₅` counts: each triple's two peer masks are AND-combined into one
//! derived row (one pass), and the T×T table of 4-way intersections
//! becomes the blocked Gram of those combined rows — three of the four
//! ANDs of every `common_among` query are hoisted out of the `O(T²)`
//! loop.
//!
//! Entry points live on [`crate::AnchoredOverlap`]:
//! [`gram`](crate::AnchoredOverlap::gram) /
//! [`gram_into`](crate::AnchoredOverlap::gram_into) (scratch-reusing)
//! and [`pair_gram_into`](crate::AnchoredOverlap::pair_gram_into).
//! The trait defaults compute every entry by per-pair
//! [`triple_common`](crate::AnchoredOverlap::triple_common) /
//! [`common_among`](crate::AnchoredOverlap::common_among) queries —
//! the pre-gram reference path, still what the naive scan substrate
//! runs — and the bitset views override them with the blocked kernels.
//! Both produce identical integer counts, so every float downstream
//! is bit-identical across paths (the property tests in
//! `crates/data/tests/proptests.rs` pin this).

use crate::WorkerId;
use crate::index::{MaskMatrix, PeerMask};

/// The peers×peers symmetric matrix of anchored triple-overlap counts
/// `g[a][b] = c_{anchor,a,b}`, with the per-row popcounts
/// `c_{anchor,a}` cached on the diagonal.
///
/// Row order is the sorted, deduplicated peer id list, so lookups by
/// [`PeerGram::get`] are a binary search over the (small) peer set;
/// hot loops resolve each worker once via [`PeerGram::row_of`] and
/// then read [`PeerGram::at`] directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerGram {
    /// Sorted, deduplicated peer ids; `peers[r]` owns row/column `r`.
    peers: Vec<u32>,
    dim: usize,
    /// `dim × dim` row-major counts, symmetric.
    counts: Vec<u32>,
}

impl PeerGram {
    /// Re-keys the gram to `ids` (sorted and deduplicated internally;
    /// caller order and duplicates are irrelevant) and zeroes the
    /// table, reusing both allocations.
    pub(crate) fn reset(&mut self, ids: &[WorkerId]) {
        self.peers.clear();
        self.peers.extend(ids.iter().map(|w| w.0));
        self.peers.sort_unstable();
        self.peers.dedup();
        self.dim = self.peers.len();
        self.counts.clear();
        self.counts.resize(self.dim * self.dim, 0);
    }

    /// Number of distinct peers (the Gram dimension).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The peer id owning row `row`.
    #[inline]
    pub fn peer(&self, row: usize) -> WorkerId {
        WorkerId(self.peers[row])
    }

    /// The row of `worker`; panics (contract violation) when the
    /// worker is not in the gram's peer set.
    #[inline]
    pub fn row_of(&self, worker: WorkerId) -> usize {
        self.peers
            .binary_search(&worker.0)
            .unwrap_or_else(|_| panic!("worker {worker:?} is outside this gram's peer set"))
    }

    /// `c_{anchor,a,b}` by table read (rows pre-resolved).
    #[inline]
    pub fn at(&self, a: usize, b: usize) -> usize {
        self.counts[a * self.dim + b] as usize
    }

    /// `c_{anchor,a,b}` by peer id.
    #[inline]
    pub fn get(&self, a: WorkerId, b: WorkerId) -> usize {
        self.at(self.row_of(a), self.row_of(b))
    }

    /// `c_{anchor,a}` — the per-row popcount cached on the diagonal.
    #[inline]
    pub fn pair_common(&self, a: WorkerId) -> usize {
        let r = self.row_of(a);
        self.at(r, r)
    }

    pub(crate) fn set_symmetric(&mut self, a: usize, b: usize, v: u32) {
        self.counts[a * self.dim + b] = v;
        self.counts[b * self.dim + a] = v;
    }

    pub(crate) fn counts_mut(&mut self) -> &mut Vec<u32> {
        &mut self.counts
    }
}

/// The T×T symmetric table of k-ary cross-triple `n₅` counts for a
/// list of peer pairs sharing one anchor:
/// `g[t₁][t₂] = |tasks(anchor) ∩ tasks(a₁) ∩ tasks(b₁) ∩ tasks(a₂) ∩ tasks(b₂)|`
/// where `(a_t, b_t)` is the `t`-th pair. The diagonal holds each
/// triple's own `c_{anchor,a_t,b_t}`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriplePairGram {
    dim: usize,
    counts: Vec<u32>,
}

impl TriplePairGram {
    /// Re-shapes to `dim` triples and zeroes the table, reusing the
    /// allocation.
    pub(crate) fn reset(&mut self, dim: usize) {
        self.dim = dim;
        self.counts.clear();
        self.counts.resize(dim * dim, 0);
    }

    /// Number of triples covered.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `n₅` count for triples `t1` and `t2` (their own
    /// `c_{anchor,a,b}` when `t1 == t2`).
    #[inline]
    pub fn get(&self, t1: usize, t2: usize) -> usize {
        self.counts[t1 * self.dim + t2] as usize
    }

    pub(crate) fn set_symmetric(&mut self, t1: usize, t2: usize, v: u32) {
        self.counts[t1 * self.dim + t2] = v;
        self.counts[t2 * self.dim + t1] = v;
    }

    pub(crate) fn counts_mut(&mut self) -> &mut Vec<u32> {
        &mut self.counts
    }
}

/// Reusable build storage for the blocked Gram kernels: the resolved
/// mask-row buffer and the pair-combined mask matrix of the previous
/// call, so an evaluate-all loop that keeps one scratch per thread
/// allocates nothing once both have reached their high-water marks.
#[derive(Debug)]
pub struct PeerGramScratch {
    pub(crate) rows: Vec<usize>,
    pub(crate) combined: MaskMatrix,
}

impl Default for PeerGramScratch {
    fn default() -> Self {
        Self {
            rows: Vec::new(),
            combined: MaskMatrix::new(0, 1),
        }
    }
}

/// Shared blocked-gram fill for the bitset views: resolves each peer
/// id to its mask row through `scope` and runs the register-blocked
/// kernel over those rows.
pub(crate) fn gram_into_mapped(
    matrix: &MaskMatrix,
    scope: &PeerMask,
    ids: &[WorkerId],
    gram: &mut PeerGram,
    scratch: &mut PeerGramScratch,
) {
    gram.reset(ids);
    scratch.rows.clear();
    for row in 0..gram.dim() {
        scratch.rows.push(scope.row_of(gram.peer(row)));
    }
    matrix.gram_rows_into(&scratch.rows, gram.counts_mut());
    let d = gram.dim();
    debug_assert_eq!(gram.counts_mut().len(), d * d);
}

/// Shared blocked `n₅`-table fill for the bitset views: AND-combines
/// each pair's two mask rows into one derived row of
/// `scratch.combined` (one pass over the words), then grams the
/// combined rows — every 4-way `common_among` of the `O(T²)` loop
/// collapses to a single AND+popcount against precombined rows.
pub(crate) fn pair_gram_into_mapped(
    matrix: &MaskMatrix,
    scope: &PeerMask,
    pairs: &[(WorkerId, WorkerId)],
    gram: &mut TriplePairGram,
    scratch: &mut PeerGramScratch,
) {
    let t = pairs.len();
    gram.reset(t);
    scratch
        .combined
        .reset(t, matrix.words(), matrix.anchor_slots());
    for (row, &(a, b)) in pairs.iter().enumerate() {
        scratch
            .combined
            .fill_and_of(row, matrix, scope.row_of(a), scope.row_of(b));
    }
    scratch.rows.clear();
    scratch.rows.extend(0..t);
    scratch
        .combined
        .gram_rows_into(&scratch.rows, gram.counts_mut());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_gram_sorts_and_dedups() {
        let mut g = PeerGram::default();
        g.reset(&[WorkerId(5), WorkerId(2), WorkerId(5), WorkerId(9)]);
        assert_eq!(g.dim(), 3);
        assert_eq!(g.peer(0), WorkerId(2));
        assert_eq!(g.peer(2), WorkerId(9));
        assert_eq!(g.row_of(WorkerId(5)), 1);
        g.set_symmetric(0, 2, 7);
        assert_eq!(g.get(WorkerId(2), WorkerId(9)), 7);
        assert_eq!(g.get(WorkerId(9), WorkerId(2)), 7);
        assert_eq!(g.get(WorkerId(2), WorkerId(5)), 0);
    }

    #[test]
    #[should_panic(expected = "peer set")]
    fn peer_gram_rejects_unknown_workers() {
        let mut g = PeerGram::default();
        g.reset(&[WorkerId(1)]);
        let _ = g.get(WorkerId(1), WorkerId(3));
    }

    #[test]
    fn triple_pair_gram_is_symmetric() {
        let mut g = TriplePairGram::default();
        g.reset(3);
        g.set_symmetric(0, 2, 11);
        assert_eq!(g.get(0, 2), 11);
        assert_eq!(g.get(2, 0), 11);
        assert_eq!(g.get(1, 1), 0);
        g.reset(2);
        assert_eq!(g.dim(), 2);
        assert_eq!(g.get(0, 1), 0, "reset must zero stale counts");
    }
}
