//! Versioned binary checkpoints for [`StreamingIndex`] — the
//! crash-recovery substrate for the service layer.
//!
//! A checkpoint captures everything a shard needs to resume exactly
//! where it left off: the index shape, the pair-table backend, every
//! ingested response row, and the ingest-epoch state that drives the
//! dirty-set report caches. [`StreamingIndex::checkpoint`] /
//! [`StreamingIndex::restore`] round-trip **bit-identically**: the
//! restored index compares equal to the original ([`OverlapIndex`]
//! derives `Eq`), every epoch counter matches, and re-encoding the
//! restored substrate reproduces the original bytes byte for byte.
//!
//! # Format (version 1, all integers little-endian)
//!
//! | Field        | Bytes | Meaning |
//! |--------------|-------|---------|
//! | magic        | 8     | `b"CRWDCKPT"` |
//! | version      | 2     | format version, currently `1` |
//! | backend      | 1     | `0` = dense pair table, `1` = sparse [`crate::PairMap`] |
//! | arity        | 2     | label arity |
//! | n_workers    | 8     | worker-id space |
//! | n_tasks      | 8     | task-id space |
//! | n_responses  | 8     | total rows that follow (cross-checked) |
//! | epoch        | 8     | monotone ingest epoch |
//! | rows         | —     | per worker: `len: u32`, then `len ×` (`task: u32`, `label: u16`), task-ascending |
//! | dirty_at     | 8·m   | per-worker dirty epochs |
//! | checksum     | 8     | FNV-1a 64 over every preceding byte |
//!
//! Only the task-sorted worker rows travel: the worker-sorted task
//! rows, the pair table (dense or sparse), and the dense mirror
//! adjacency are all deterministic functions of the row set, so
//! [`StreamingIndex::restore`] rebuilds them by replaying the rows
//! through [`StreamingIndex::record_response`] — which also makes the
//! decoder inherit the full ingest validation (arity, duplicates,
//! id ranges) for free. Anchored views are *not* serialized: they are
//! lazy caches that re-anchor deterministically on first use, and a
//! freshly restored shard re-deriving them is exactly the dormant
//! state a freshly spawned shard starts in.
//!
//! Decoding never panics on hostile bytes: truncation, bad magic,
//! unknown versions, malformed counts and checksum mismatches all come
//! back as typed [`CheckpointError`]s.

use crate::ids::{TaskId, WorkerId};
use crate::index::PairBackend;
use crate::label::Label;
use crate::matrix::Response;
use crate::streaming::StreamingIndex;
use crate::{DataError, PairTable};

/// Leading magic of every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CRWDCKPT";

/// The format version this build writes (and the only one it reads).
pub const CHECKPOINT_VERSION: u16 = 1;

/// Why checkpoint bytes failed to decode. Every variant is a typed
/// refusal — hostile or damaged input never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input ended before the field named here was complete.
    Truncated(&'static str),
    /// The first eight bytes are not [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The version field names a format this build does not read.
    UnsupportedVersion(u16),
    /// A structurally invalid field (count overflow, trailing bytes,
    /// out-of-range tag).
    Malformed(&'static str),
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch {
        /// Checksum recomputed over the received content.
        computed: u64,
        /// Checksum stored in the trailer.
        stored: u64,
    },
    /// The rows failed ingest validation during replay (label out of
    /// arity range, duplicate response, id out of shape).
    Invalid(DataError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated(what) => write!(f, "checkpoint truncated reading {what}"),
            Self::BadMagic => write!(f, "checkpoint magic mismatch"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Malformed(what) => write!(f, "malformed checkpoint field: {what}"),
            Self::ChecksumMismatch { computed, stored } => write!(
                f,
                "checkpoint checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            Self::Invalid(e) => write!(f, "checkpoint rows failed validation: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for CheckpointError {
    fn from(e: DataError) -> Self {
        Self::Invalid(e)
    }
}

/// FNV-1a 64 over `bytes` — dependency-free, deterministic, and fast
/// enough that checkpointing stays ingest-path cheap.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A panic-free little-endian reader over checkpoint bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Malformed(what))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, CheckpointError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Converts a `u64` shape field to `usize`, refusing sizes this
/// address space cannot hold.
fn shape(v: u64, what: &'static str) -> Result<usize, CheckpointError> {
    usize::try_from(v).map_err(|_| CheckpointError::Malformed(what))
}

impl StreamingIndex {
    /// Serializes the substrate to the versioned binary checkpoint
    /// format (see the [module docs](self)). Deterministic: equal
    /// substrates produce byte-identical checkpoints.
    pub fn checkpoint(&self) -> Vec<u8> {
        let index = self.index();
        let m = index.n_workers();
        let mut out = Vec::with_capacity(45 + index.n_responses() * 6 + m * 12);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u16(&mut out, CHECKPOINT_VERSION);
        out.push(match index.pairs() {
            PairTable::Dense(_) => 0,
            PairTable::Sparse(_) => 1,
        });
        put_u16(&mut out, index.arity());
        put_u64(&mut out, m as u64);
        put_u64(&mut out, index.n_tasks() as u64);
        put_u64(&mut out, index.n_responses() as u64);
        put_u64(&mut out, self.epoch());
        for w in 0..m as u32 {
            let row = index.worker_responses(WorkerId(w));
            put_u32(&mut out, row.len() as u32);
            for &(task, label) in row {
                put_u32(&mut out, task);
                put_u16(&mut out, label.0);
            }
        }
        for w in 0..m as u32 {
            put_u64(&mut out, self.dirty_epoch(WorkerId(w)));
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a checkpoint produced by [`StreamingIndex::checkpoint`]
    /// back into a substrate whose index state is bit-identical to the
    /// original's: the rows are replayed through
    /// [`StreamingIndex::record_response`] (rebuilding task rows, the
    /// pair table, and the dense mirror adjacency — all deterministic
    /// functions of the row set), then the serialized epoch state is
    /// reinstated so dirty-set report caches resume exactly.
    pub fn restore(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() {
            return Err(CheckpointError::Truncated("magic"));
        }
        if bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        // Validate the trailer before touching the content so a
        // corrupted body surfaces as a checksum mismatch, not as
        // whatever field the flipped bit happened to land in.
        if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
            return Err(CheckpointError::Truncated("checksum trailer"));
        }
        let body_len = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("8-byte trailer"));
        let computed = fnv1a(&bytes[..body_len]);
        if computed != stored {
            return Err(CheckpointError::ChecksumMismatch { computed, stored });
        }

        let mut r = Reader::new(&bytes[..body_len]);
        r.take(CHECKPOINT_MAGIC.len(), "magic")?;
        let version = r.u16("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let backend = match r.take(1, "backend tag")?[0] {
            0 => PairBackend::Dense,
            1 => PairBackend::Sparse,
            _ => return Err(CheckpointError::Malformed("backend tag")),
        };
        let arity = r.u16("arity")?;
        if arity < 2 {
            return Err(CheckpointError::Malformed("arity"));
        }
        let m = shape(r.u64("worker count")?, "worker count")?;
        let n_tasks = shape(r.u64("task count")?, "task count")?;
        let n_responses = shape(r.u64("response count")?, "response count")?;
        // Each response occupies ≥ 6 bytes; refuse counts the input
        // cannot possibly hold before allocating anything.
        if n_responses > r.remaining() / 6 || m > r.remaining().saturating_add(1) {
            return Err(CheckpointError::Malformed("response count"));
        }
        let epoch = r.u64("epoch")?;

        let mut stream = StreamingIndex::new_with(m, n_tasks, arity, backend);
        let mut replayed = 0usize;
        for w in 0..m as u32 {
            let len = r.u32("row length")? as usize;
            if len > r.remaining() / 6 {
                return Err(CheckpointError::Malformed("row length"));
            }
            for _ in 0..len {
                let task = r.u32("row task")?;
                let label = r.u16("row label")?;
                if task as u64 >= n_tasks as u64 {
                    return Err(CheckpointError::Invalid(DataError::UnknownId {
                        kind: "task",
                        id: task,
                    }));
                }
                stream.record_response(Response {
                    worker: WorkerId(w),
                    task: TaskId(task),
                    label: Label(label),
                })?;
            }
            replayed += len;
        }
        if replayed != n_responses {
            return Err(CheckpointError::Malformed("response count"));
        }
        let mut dirty_at = Vec::with_capacity(m);
        for _ in 0..m {
            dirty_at.push(r.u64("dirty epoch")?);
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        if dirty_at.iter().any(|&d| d > epoch) {
            return Err(CheckpointError::Malformed(
                "dirty epoch beyond ingest epoch",
            ));
        }
        stream.restore_epoch_state(epoch, dirty_at);
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OverlapSource;

    fn sample(backend: PairBackend) -> StreamingIndex {
        let mut s = StreamingIndex::new_with(5, 8, 3, backend);
        for (w, t, l) in [
            (0u32, 0u32, 0u16),
            (1, 0, 0),
            (2, 0, 1),
            (0, 1, 2),
            (1, 1, 2),
            (3, 2, 0),
            (4, 2, 1),
            (0, 3, 1),
            (4, 3, 1),
        ] {
            s.record_response(Response {
                worker: WorkerId(w),
                task: TaskId(t),
                label: Label(l),
            })
            .unwrap();
        }
        s
    }

    #[test]
    fn round_trip_is_bit_identical_both_backends() {
        for backend in [PairBackend::Dense, PairBackend::Sparse] {
            let original = sample(backend);
            let bytes = original.checkpoint();
            let restored = StreamingIndex::restore(&bytes).unwrap();
            assert_eq!(restored.index(), original.index());
            assert_eq!(restored.epoch(), original.epoch());
            for w in 0..5u32 {
                assert_eq!(
                    restored.dirty_epoch(WorkerId(w)),
                    original.dirty_epoch(WorkerId(w))
                );
                assert_eq!(
                    restored.pair(WorkerId(w), WorkerId((w + 1) % 5)),
                    original.pair(WorkerId(w), WorkerId((w + 1) % 5))
                );
            }
            // Re-encoding the restored substrate reproduces the bytes.
            assert_eq!(restored.checkpoint(), bytes);
        }
    }

    #[test]
    fn empty_substrate_round_trips() {
        let original = StreamingIndex::new_with(3, 4, 2, PairBackend::Sparse);
        let bytes = original.checkpoint();
        let restored = StreamingIndex::restore(&bytes).unwrap();
        assert_eq!(restored.index(), original.index());
        assert_eq!(restored.epoch(), 0);
        assert_eq!(restored.checkpoint(), bytes);
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = sample(PairBackend::Sparse).checkpoint();
        for len in 0..bytes.len() {
            let err = StreamingIndex::restore(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated(_) | CheckpointError::ChecksumMismatch { .. }
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let bytes = sample(PairBackend::Dense).checkpoint();
        for i in 0..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = StreamingIndex::restore(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch { .. } | CheckpointError::BadMagic
                ),
                "flip at {i} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample(PairBackend::Sparse).checkpoint();
        bytes[0] = b'X';
        assert_eq!(
            StreamingIndex::restore(&bytes).unwrap_err(),
            CheckpointError::BadMagic
        );

        let mut versioned = sample(PairBackend::Sparse).checkpoint();
        versioned[8] = 0xFF;
        versioned[9] = 0xFF;
        let body = versioned.len() - 8;
        let sum = fnv1a(&versioned[..body]);
        versioned[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            StreamingIndex::restore(&versioned).unwrap_err(),
            CheckpointError::UnsupportedVersion(0xFFFF)
        );
    }

    #[test]
    fn invalid_rows_fail_replay_validation_not_panic() {
        // Hand-build a checkpoint whose row labels exceed the arity.
        let mut s = StreamingIndex::new_with(2, 2, 4, PairBackend::Sparse);
        s.record_response(Response {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label(3),
        })
        .unwrap();
        let mut bytes = s.checkpoint();
        // Arity field sits right after magic + version + backend tag.
        let arity_at = 8 + 2 + 1;
        bytes[arity_at] = 2;
        bytes[arity_at + 1] = 0;
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            StreamingIndex::restore(&bytes).unwrap_err(),
            CheckpointError::Invalid(DataError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn restored_substrate_keeps_streaming() {
        // A restored substrate is not a dead snapshot: further ingest
        // must behave exactly like ingest into the original.
        let mut original = sample(PairBackend::Sparse);
        let mut restored = StreamingIndex::restore(&original.checkpoint()).unwrap();
        let extra = Response {
            worker: WorkerId(2),
            task: TaskId(5),
            label: Label(2),
        };
        original.record_response(extra).unwrap();
        restored.record_response(extra).unwrap();
        assert_eq!(restored.index(), original.index());
        assert_eq!(restored.epoch(), original.epoch());
        assert_eq!(restored.checkpoint(), original.checkpoint());
    }
}
