//! Crowd data model for the `crowd-assess` workspace.
//!
//! The central type is [`ResponseMatrix`]: a sparse worker × task
//! matrix of k-ary labels. "Sparse" is essential — the paper's whole
//! point is handling **non-regular** data where not every worker
//! attempts every task. On top of it this crate provides exactly the
//! sufficient statistics the algorithms consume:
//!
//! * pairwise overlap counts `c_ij` and agreement rates `q̂_ij`
//!   ([`overlap`]),
//! * triple overlap counts `c_ijk` ([`overlap`]),
//! * the `(k+1)³` counts tensor of Algorithm A3 with its
//!   attempt-pattern groups ([`counts`]),
//! * gold-standard bookkeeping and empirical error rates / confusion
//!   matrices ([`gold`]),
//! * majority-vote aggregation ([`majority`]),
//! * a dependency-free CSV reader/writer ([`csv`]).

pub mod checkpoint;
pub mod counts;
pub mod csv;
pub mod gold;
pub mod gram;
pub mod ids;
pub mod index;
pub mod label;
pub mod majority;
pub mod matrix;
pub mod overlap;
pub mod pairmap;
pub mod streaming;

pub use checkpoint::{CHECKPOINT_MAGIC, CHECKPOINT_VERSION, CheckpointError};
pub use counts::{AttemptPattern, CountsTensor};
pub use gold::GoldStandard;
pub use gram::{PeerGram, PeerGramScratch, TriplePairGram};
pub use ids::{TaskId, WorkerId};
pub use index::{
    AnchoredOverlap, AnchoredScratch, BitsetAnchored, CachedOverlap, OverlapIndex, OverlapSource,
    PairBackend, PairTable,
};
pub use label::Label;
pub use majority::{MajorityOutcome, disagreement_rates, majority_vote};
pub use matrix::{Response, ResponseMatrix, ResponseMatrixBuilder};
pub use overlap::{
    PairCache, PairStats, TripleStats, pair_stats, triple_joint_labels,
    triple_joint_labels_optional, triple_overlap,
};
pub use pairmap::PairMap;
pub use streaming::{AnchoredView, StreamingIndex};

/// Errors produced by data-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A label's value is `>=` the declared arity.
    LabelOutOfRange {
        /// The offending label value.
        label: u16,
        /// The declared arity.
        arity: u16,
    },
    /// The same (worker, task) pair was given two responses.
    DuplicateResponse {
        /// Worker involved.
        worker: WorkerId,
        /// Task involved.
        task: TaskId,
    },
    /// A CSV record could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An id referenced something that does not exist.
    UnknownId {
        /// What kind of id ("worker" / "task").
        kind: &'static str,
        /// The raw id value.
        id: u32,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LabelOutOfRange { label, arity } => {
                write!(f, "label {label} out of range for arity {arity}")
            }
            Self::DuplicateResponse { worker, task } => {
                write!(
                    f,
                    "duplicate response from worker {worker:?} on task {task:?}"
                )
            }
            Self::Csv { line, reason } => write!(f, "csv parse error on line {line}: {reason}"),
            Self::UnknownId { kind, id } => write!(f, "unknown {kind} id {id}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Result alias for data-model operations.
pub type Result<T> = std::result::Result<T, DataError>;
