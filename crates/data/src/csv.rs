//! Dependency-free CSV I/O for response data and gold labels.
//!
//! Format for responses (header required):
//!
//! ```csv
//! worker,task,label
//! 0,0,1
//! 0,1,0
//! ```
//!
//! Format for gold labels:
//!
//! ```csv
//! task,label
//! 0,1
//! ```
//!
//! Intentionally minimal — integer fields only, `#`-prefixed comment
//! lines and blank lines skipped — because that is all a response log
//! needs, and it keeps the workspace free of a serialization
//! dependency (see DESIGN.md §6).
//!
//! Sparse crowd data routinely has workers (or trailing tasks) with no
//! responses at all, which row inference would silently drop. The
//! writer therefore emits a `#!shape,<workers>,<tasks>,<arity>`
//! directive — a comment to any other CSV parser — and the reader
//! honors it, making the round-trip exact.

use crate::{
    DataError, GoldStandard, Label, ResponseMatrix, ResponseMatrixBuilder, Result, TaskId, WorkerId,
};
use std::io::{BufRead, BufReader, Read, Write};

/// Parses a `worker,task,label` CSV into a [`ResponseMatrix`].
///
/// Dimensions and arity are taken from the optional `#!shape`
/// directive when present; otherwise they are inferred as `max + 1`
/// over the respective columns (arity at least 2). Responses outside a
/// declared shape are an error.
pub fn read_responses(reader: impl Read) -> Result<ResponseMatrix> {
    let mut rows: Vec<(u32, u32, u16)> = Vec::new();
    let mut header_seen = false;
    let mut shape: Option<(usize, usize, u16)> = None;
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| DataError::Csv {
            line: line_no + 1,
            reason: e.to_string(),
        })?;
        let trimmed = line.trim();
        if let Some(directive) = trimmed.strip_prefix("#!shape,") {
            let fields = split_fields(directive, 3, line_no + 1)?;
            shape = Some((
                parse_u32(&fields[0], "shape workers", line_no + 1)? as usize,
                parse_u32(&fields[1], "shape tasks", line_no + 1)? as usize,
                parse_u32(&fields[2], "shape arity", line_no + 1)? as u16,
            ));
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !header_seen {
            header_seen = true;
            expect_header(trimmed, &["worker", "task", "label"], line_no + 1)?;
            continue;
        }
        let fields = split_fields(trimmed, 3, line_no + 1)?;
        rows.push((
            parse_u32(&fields[0], "worker", line_no + 1)?,
            parse_u32(&fields[1], "task", line_no + 1)?,
            parse_u32(&fields[2], "label", line_no + 1)? as u16,
        ));
    }
    let (n_workers, n_tasks, arity) = match shape {
        Some(s) => s,
        None => (
            rows.iter().map(|r| r.0 as usize + 1).max().unwrap_or(0),
            rows.iter().map(|r| r.1 as usize + 1).max().unwrap_or(0),
            rows.iter().map(|r| r.2 + 1).max().unwrap_or(2).max(2),
        ),
    };
    let mut builder = ResponseMatrixBuilder::new(n_workers, n_tasks, arity);
    for (w, t, l) in rows {
        builder.push(WorkerId(w), TaskId(t), Label(l))?;
    }
    builder.build()
}

/// Writes a [`ResponseMatrix`] in the `worker,task,label` format with
/// a `#!shape` directive so empty rows/columns survive the round-trip.
pub fn write_responses(data: &ResponseMatrix, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(
        writer,
        "#!shape,{},{},{}",
        data.n_workers(),
        data.n_tasks(),
        data.arity()
    )?;
    writeln!(writer, "worker,task,label")?;
    for r in data.iter() {
        writeln!(writer, "{},{},{}", r.worker.0, r.task.0, r.label.0)?;
    }
    Ok(())
}

/// Parses a `task,label` CSV into a [`GoldStandard`] over `n_tasks`
/// tasks.
pub fn read_gold(reader: impl Read, n_tasks: usize) -> Result<GoldStandard> {
    let mut known: Vec<(TaskId, Label)> = Vec::new();
    let mut header_seen = false;
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| DataError::Csv {
            line: line_no + 1,
            reason: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !header_seen {
            header_seen = true;
            expect_header(trimmed, &["task", "label"], line_no + 1)?;
            continue;
        }
        let fields = split_fields(trimmed, 2, line_no + 1)?;
        let t = parse_u32(&fields[0], "task", line_no + 1)?;
        let l = parse_u32(&fields[1], "label", line_no + 1)? as u16;
        if (t as usize) >= n_tasks {
            return Err(DataError::Csv {
                line: line_no + 1,
                reason: format!("task {t} out of range (n_tasks = {n_tasks})"),
            });
        }
        known.push((TaskId(t), Label(l)));
    }
    Ok(GoldStandard::partial(n_tasks, known))
}

/// Writes a [`GoldStandard`] in the `task,label` format (unknown tasks
/// omitted).
pub fn write_gold(gold: &GoldStandard, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "task,label")?;
    for t in 0..gold.n_tasks() {
        if let Some(l) = gold.label(TaskId(t as u32)) {
            writeln!(writer, "{t},{}", l.0)?;
        }
    }
    Ok(())
}

fn expect_header(line: &str, want: &[&str], line_no: usize) -> Result<()> {
    let got: Vec<&str> = line.split(',').map(str::trim).collect();
    if got != want {
        return Err(DataError::Csv {
            line: line_no,
            reason: format!("expected header {want:?}, got {got:?}"),
        });
    }
    Ok(())
}

fn split_fields(line: &str, want: usize, line_no: usize) -> Result<Vec<String>> {
    let fields: Vec<String> = line.split(',').map(|s| s.trim().to_owned()).collect();
    if fields.len() != want {
        return Err(DataError::Csv {
            line: line_no,
            reason: format!("expected {want} fields, got {}", fields.len()),
        });
    }
    Ok(fields)
}

fn parse_u32(s: &str, what: &str, line_no: usize) -> Result<u32> {
    s.parse::<u32>().map_err(|_| DataError::Csv {
        line: line_no,
        reason: format!("invalid {what}: {s:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_responses() {
        let mut b = ResponseMatrixBuilder::new(2, 3, 3);
        b.push(WorkerId(0), TaskId(0), Label(2)).unwrap();
        b.push(WorkerId(1), TaskId(2), Label(0)).unwrap();
        let m = b.build().unwrap();
        let mut buf = Vec::new();
        write_responses(&m, &mut buf).unwrap();
        let parsed = read_responses(buf.as_slice()).unwrap();
        assert_eq!(parsed.response(WorkerId(0), TaskId(0)), Some(Label(2)));
        assert_eq!(parsed.response(WorkerId(1), TaskId(2)), Some(Label(0)));
        assert_eq!(parsed.n_responses(), 2);
        assert_eq!(parsed.arity(), 3);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# a comment\n\nworker,task,label\n0,0,1\n\n# trailing\n1,0,0\n";
        let m = read_responses(text.as_bytes()).unwrap();
        assert_eq!(m.n_responses(), 2);
        assert_eq!(m.n_workers(), 2);
    }

    #[test]
    fn header_mismatch_is_error() {
        let text = "task,worker,label\n0,0,1\n";
        let err = read_responses(text.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_field_count_reports_line() {
        let text = "worker,task,label\n0,0\n";
        let err = read_responses(text.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }

    #[test]
    fn non_numeric_field_is_error() {
        let text = "worker,task,label\nzero,0,1\n";
        let err = read_responses(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("worker"), "{msg}");
    }

    #[test]
    fn duplicate_response_detected() {
        let text = "worker,task,label\n0,0,1\n0,0,0\n";
        assert!(matches!(
            read_responses(text.as_bytes()),
            Err(DataError::DuplicateResponse { .. })
        ));
    }

    #[test]
    fn empty_input_is_empty_matrix() {
        let m = read_responses("worker,task,label\n".as_bytes()).unwrap();
        assert_eq!(m.n_responses(), 0);
        assert_eq!(m.n_workers(), 0);
    }

    #[test]
    fn shape_directive_preserves_empty_rows() {
        // Worker 2 and task 3 have no responses; the directive keeps
        // them in the shape.
        let text = "#!shape,3,4,5\nworker,task,label\n0,0,4\n";
        let m = read_responses(text.as_bytes()).unwrap();
        assert_eq!(m.n_workers(), 3);
        assert_eq!(m.n_tasks(), 4);
        assert_eq!(m.arity(), 5);
        assert_eq!(m.n_responses(), 1);
    }

    #[test]
    fn response_outside_declared_shape_is_error() {
        let text = "#!shape,1,1,2\nworker,task,label\n5,0,1\n";
        assert!(read_responses(text.as_bytes()).is_err());
    }

    #[test]
    fn malformed_shape_directive_is_error() {
        let text = "#!shape,3,4\nworker,task,label\n";
        assert!(read_responses(text.as_bytes()).is_err());
        let text = "#!shape,a,b,c\nworker,task,label\n";
        assert!(read_responses(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_matrix_roundtrips_with_shape() {
        let m = ResponseMatrixBuilder::new(4, 7, 3).build().unwrap();
        let mut buf = Vec::new();
        write_responses(&m, &mut buf).unwrap();
        let parsed = read_responses(buf.as_slice()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn roundtrip_gold() {
        let gold = GoldStandard::partial(5, [(TaskId(1), Label(1)), (TaskId(4), Label(0))]);
        let mut buf = Vec::new();
        write_gold(&gold, &mut buf).unwrap();
        let parsed = read_gold(buf.as_slice(), 5).unwrap();
        assert_eq!(parsed.label(TaskId(1)), Some(Label(1)));
        assert_eq!(parsed.label(TaskId(4)), Some(Label(0)));
        assert_eq!(parsed.label(TaskId(0)), None);
        assert_eq!(parsed.known_count(), 2);
    }

    #[test]
    fn gold_out_of_range_task_is_error() {
        let text = "task,label\n9,0\n";
        assert!(read_gold(text.as_bytes(), 5).is_err());
    }
}
