//! Sparse worker × task response matrix.

use crate::{DataError, Label, Result, TaskId, WorkerId};

/// One worker response to one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Who answered.
    pub worker: WorkerId,
    /// Which task.
    pub task: TaskId,
    /// The k-ary label given.
    pub label: Label,
}

/// Builder accumulating responses before freezing them into a
/// [`ResponseMatrix`].
#[derive(Debug, Clone)]
pub struct ResponseMatrixBuilder {
    arity: u16,
    n_workers: usize,
    n_tasks: usize,
    responses: Vec<Response>,
}

impl ResponseMatrixBuilder {
    /// Starts a builder for `n_workers × n_tasks` responses of the given
    /// arity.
    ///
    /// # Panics
    /// Panics if `arity < 2`.
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16) -> Self {
        assert!(
            arity >= 2,
            "tasks must have at least two possible responses"
        );
        Self {
            arity,
            n_workers,
            n_tasks,
            responses: Vec::new(),
        }
    }

    /// Records a response; range-checks the ids and label.
    pub fn push(&mut self, worker: WorkerId, task: TaskId, label: Label) -> Result<()> {
        if worker.index() >= self.n_workers {
            return Err(DataError::UnknownId {
                kind: "worker",
                id: worker.0,
            });
        }
        if task.index() >= self.n_tasks {
            return Err(DataError::UnknownId {
                kind: "task",
                id: task.0,
            });
        }
        if !label.valid_for_arity(self.arity) {
            return Err(DataError::LabelOutOfRange {
                label: label.0,
                arity: self.arity,
            });
        }
        self.responses.push(Response {
            worker,
            task,
            label,
        });
        Ok(())
    }

    /// Freezes the builder; fails on duplicate (worker, task) pairs.
    pub fn build(self) -> Result<ResponseMatrix> {
        let mut by_worker: Vec<Vec<(u32, Label)>> = vec![Vec::new(); self.n_workers];
        let mut by_task: Vec<Vec<(u32, Label)>> = vec![Vec::new(); self.n_tasks];
        for r in &self.responses {
            by_worker[r.worker.index()].push((r.task.0, r.label));
            by_task[r.task.index()].push((r.worker.0, r.label));
        }
        for (w, list) in by_worker.iter_mut().enumerate() {
            list.sort_unstable_by_key(|&(t, _)| t);
            if let Some(pair) = list.windows(2).find(|p| p[0].0 == p[1].0) {
                return Err(DataError::DuplicateResponse {
                    worker: WorkerId(w as u32),
                    task: TaskId(pair[0].0),
                });
            }
        }
        for list in by_task.iter_mut() {
            list.sort_unstable_by_key(|&(w, _)| w);
        }
        Ok(ResponseMatrix {
            arity: self.arity,
            n_workers: self.n_workers,
            n_tasks: self.n_tasks,
            n_responses: self.responses.len(),
            by_worker,
            by_task,
        })
    }
}

/// A sparse worker × task matrix of k-ary labels.
///
/// Stored twice — once sorted by worker and once by task — so both the
/// per-worker scans of the binary algorithms and the per-task scans of
/// majority voting are linear passes over contiguous memory.
///
/// # Example
///
/// ```
/// use crowd_data::{Label, ResponseMatrixBuilder, TaskId, WorkerId};
///
/// let mut builder = ResponseMatrixBuilder::new(2, 3, 2);
/// builder.push(WorkerId(0), TaskId(0), Label::YES)?;
/// builder.push(WorkerId(1), TaskId(0), Label::NO)?;
/// let matrix = builder.build()?;
/// assert_eq!(matrix.response(WorkerId(0), TaskId(0)), Some(Label::YES));
/// assert_eq!(matrix.response(WorkerId(0), TaskId(1)), None);
/// assert!(!matrix.is_regular());
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseMatrix {
    arity: u16,
    n_workers: usize,
    n_tasks: usize,
    n_responses: usize,
    /// For each worker: `(task index, label)` sorted by task index.
    by_worker: Vec<Vec<(u32, Label)>>,
    /// For each task: `(worker index, label)` sorted by worker index.
    by_task: Vec<Vec<(u32, Label)>>,
}

impl ResponseMatrix {
    /// Task arity (k).
    #[inline]
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Number of workers (including workers with zero responses).
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of tasks (including tasks with zero responses).
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Total number of recorded responses.
    #[inline]
    pub fn n_responses(&self) -> usize {
        self.n_responses
    }

    /// Fraction of filled (worker, task) cells — the paper's "density".
    pub fn density(&self) -> f64 {
        let cells = self.n_workers * self.n_tasks;
        if cells == 0 {
            0.0
        } else {
            self.n_responses as f64 / cells as f64
        }
    }

    /// True when every worker answered every task (the "regular" case).
    pub fn is_regular(&self) -> bool {
        self.n_responses == self.n_workers * self.n_tasks
    }

    /// The label `worker` gave on `task`, if any.
    pub fn response(&self, worker: WorkerId, task: TaskId) -> Option<Label> {
        let list = self.by_worker.get(worker.index())?;
        list.binary_search_by_key(&task.0, |&(t, _)| t)
            .ok()
            .map(|i| list[i].1)
    }

    /// All `(task index, label)` pairs of one worker, sorted by task.
    pub fn worker_responses(&self, worker: WorkerId) -> &[(u32, Label)] {
        &self.by_worker[worker.index()]
    }

    /// All `(worker index, label)` pairs on one task, sorted by worker.
    pub fn task_responses(&self, task: TaskId) -> &[(u32, Label)] {
        &self.by_task[task.index()]
    }

    /// Number of tasks attempted by one worker.
    pub fn worker_task_count(&self, worker: WorkerId) -> usize {
        self.by_worker[worker.index()].len()
    }

    /// Iterates over all responses in (worker, task) order.
    pub fn iter(&self) -> impl Iterator<Item = Response> + '_ {
        self.by_worker.iter().enumerate().flat_map(|(w, list)| {
            list.iter().map(move |&(t, label)| Response {
                worker: WorkerId(w as u32),
                task: TaskId(t),
                label,
            })
        })
    }

    /// All worker ids.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.n_workers as u32).map(WorkerId)
    }

    /// All task ids.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n_tasks as u32).map(TaskId)
    }

    /// Inserts one response into an existing matrix, maintaining the
    /// sorted per-worker and per-task views — the primitive behind
    /// incremental evaluation (the paper's conclusion notes the
    /// methods "can be easily modified to be incremental").
    ///
    /// Cost: `O(log r + r)` in the worker's/task's current response
    /// counts (binary search + insertion shift).
    pub fn insert(&mut self, response: Response) -> Result<()> {
        let Response {
            worker,
            task,
            label,
        } = response;
        if worker.index() >= self.n_workers {
            return Err(DataError::UnknownId {
                kind: "worker",
                id: worker.0,
            });
        }
        if task.index() >= self.n_tasks {
            return Err(DataError::UnknownId {
                kind: "task",
                id: task.0,
            });
        }
        if !label.valid_for_arity(self.arity) {
            return Err(DataError::LabelOutOfRange {
                label: label.0,
                arity: self.arity,
            });
        }
        let w_list = &mut self.by_worker[worker.index()];
        match w_list.binary_search_by_key(&task.0, |&(t, _)| t) {
            Ok(_) => return Err(DataError::DuplicateResponse { worker, task }),
            Err(pos) => w_list.insert(pos, (task.0, label)),
        }
        let t_list = &mut self.by_task[task.index()];
        match t_list.binary_search_by_key(&worker.0, |&(w, _)| w) {
            // Unreachable: the per-worker view already rejected the
            // duplicate, but keep the views consistent defensively.
            Ok(_) => return Err(DataError::DuplicateResponse { worker, task }),
            Err(pos) => t_list.insert(pos, (worker.0, label)),
        }
        self.n_responses += 1;
        Ok(())
    }

    /// An empty matrix with the given shape, ready for
    /// [`ResponseMatrix::insert`]-driven incremental filling.
    pub fn empty(n_workers: usize, n_tasks: usize, arity: u16) -> Self {
        ResponseMatrixBuilder::new(n_workers, n_tasks, arity)
            .build()
            .expect("an empty matrix has no duplicates")
    }

    /// Keeps only workers satisfying `keep`, remapping worker ids to a
    /// dense range. Returns the filtered matrix and, for each new
    /// worker index, the original [`WorkerId`].
    ///
    /// Used by the spammer-pruning preprocessing of Figure 4.
    pub fn retain_workers(&self, keep: impl Fn(WorkerId) -> bool) -> (Self, Vec<WorkerId>) {
        let kept: Vec<WorkerId> = self.workers().filter(|&w| keep(w)).collect();
        let mut builder = ResponseMatrixBuilder::new(kept.len(), self.n_tasks, self.arity);
        for (new_idx, &old) in kept.iter().enumerate() {
            for &(t, label) in self.worker_responses(old) {
                builder
                    .push(WorkerId(new_idx as u32), TaskId(t), label)
                    .expect("retain_workers preserves validity");
            }
        }
        (
            builder
                .build()
                .expect("retain_workers cannot create duplicates"),
            kept,
        )
    }

    /// Restricts to the given workers (in the given order), remapping
    /// them to dense ids `0..workers.len()`. Tasks keep their ids.
    ///
    /// The k-ary experiments evaluate one worker *triple* at a time;
    /// this is the projection they use.
    pub fn project_workers(&self, workers: &[WorkerId]) -> Self {
        let mut builder = ResponseMatrixBuilder::new(workers.len(), self.n_tasks, self.arity);
        for (new_idx, &old) in workers.iter().enumerate() {
            for &(t, label) in self.worker_responses(old) {
                builder
                    .push(WorkerId(new_idx as u32), TaskId(t), label)
                    .expect("project_workers preserves validity");
            }
        }
        builder
            .build()
            .expect("project_workers cannot create duplicates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 workers, 4 tasks, worker 2 skips tasks 1 and 3.
    fn sample() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(3, 4, 2);
        for t in 0..4u32 {
            b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
            b.push(WorkerId(1), TaskId(t), Label((t % 2) as u16))
                .unwrap();
        }
        b.push(WorkerId(2), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(2), TaskId(2), Label(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_queries() {
        let m = sample();
        assert_eq!(m.arity(), 2);
        assert_eq!(m.n_workers(), 3);
        assert_eq!(m.n_tasks(), 4);
        assert_eq!(m.n_responses(), 10);
        assert!((m.density() - 10.0 / 12.0).abs() < 1e-15);
        assert!(!m.is_regular());
    }

    #[test]
    fn response_lookup() {
        let m = sample();
        assert_eq!(m.response(WorkerId(1), TaskId(1)), Some(Label(1)));
        assert_eq!(m.response(WorkerId(2), TaskId(1)), None);
        assert_eq!(m.response(WorkerId(2), TaskId(2)), Some(Label(0)));
    }

    #[test]
    fn per_worker_and_per_task_views_agree() {
        let m = sample();
        assert_eq!(m.worker_task_count(WorkerId(2)), 2);
        let on_task0 = m.task_responses(TaskId(0));
        assert_eq!(on_task0.len(), 3);
        // Sorted by worker id.
        assert!(on_task0.windows(2).all(|p| p[0].0 < p[1].0));
        let total: usize = m.tasks().map(|t| m.task_responses(t).len()).sum();
        assert_eq!(total, m.n_responses());
    }

    #[test]
    fn iter_yields_every_response_once() {
        let m = sample();
        let all: Vec<Response> = m.iter().collect();
        assert_eq!(all.len(), 10);
        let w2: Vec<_> = all.iter().filter(|r| r.worker == WorkerId(2)).collect();
        assert_eq!(w2.len(), 2);
    }

    #[test]
    fn duplicate_rejected_at_build() {
        let mut b = ResponseMatrixBuilder::new(1, 1, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(0), Label(1)).unwrap();
        assert!(matches!(
            b.build(),
            Err(DataError::DuplicateResponse { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected_at_push() {
        let mut b = ResponseMatrixBuilder::new(1, 1, 2);
        assert!(matches!(
            b.push(WorkerId(1), TaskId(0), Label(0)),
            Err(DataError::UnknownId { kind: "worker", .. })
        ));
        assert!(matches!(
            b.push(WorkerId(0), TaskId(9), Label(0)),
            Err(DataError::UnknownId { kind: "task", .. })
        ));
        assert!(matches!(
            b.push(WorkerId(0), TaskId(0), Label(2)),
            Err(DataError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn arity_one_panics() {
        let _ = ResponseMatrixBuilder::new(1, 1, 1);
    }

    #[test]
    fn retain_workers_remaps_ids() {
        let m = sample();
        let (pruned, mapping) = m.retain_workers(|w| w != WorkerId(1));
        assert_eq!(pruned.n_workers(), 2);
        assert_eq!(mapping, vec![WorkerId(0), WorkerId(2)]);
        // Old worker 2 is now worker 1.
        assert_eq!(pruned.response(WorkerId(1), TaskId(0)), Some(Label(1)));
        assert_eq!(pruned.n_responses(), 6);
        assert_eq!(pruned.n_tasks(), 4);
    }

    #[test]
    fn project_workers_orders_as_requested() {
        let m = sample();
        let p = m.project_workers(&[WorkerId(2), WorkerId(0)]);
        assert_eq!(p.n_workers(), 2);
        assert_eq!(p.response(WorkerId(0), TaskId(2)), Some(Label(0))); // was w2
        assert_eq!(p.response(WorkerId(1), TaskId(3)), Some(Label(0))); // was w0
    }

    #[test]
    fn empty_matrix_density_is_zero() {
        let m = ResponseMatrixBuilder::new(0, 0, 2).build().unwrap();
        assert_eq!(m.density(), 0.0);
        assert!(m.is_regular());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_matches_builder() {
        // Building incrementally in arbitrary order equals batch build.
        let batch = sample();
        let mut inc = ResponseMatrix::empty(3, 4, 2);
        let mut responses: Vec<Response> = batch.iter().collect();
        responses.reverse(); // deliberately out of order
        for r in responses {
            inc.insert(r).unwrap();
        }
        assert_eq!(inc, batch);
    }

    #[test]
    fn insert_rejects_duplicates_and_bad_ids() {
        let mut m = ResponseMatrix::empty(2, 2, 2);
        let r = Response {
            worker: WorkerId(0),
            task: TaskId(1),
            label: Label(1),
        };
        m.insert(r).unwrap();
        assert!(matches!(
            m.insert(r),
            Err(DataError::DuplicateResponse { .. })
        ));
        assert!(matches!(
            m.insert(Response {
                worker: WorkerId(5),
                task: TaskId(0),
                label: Label(0)
            }),
            Err(DataError::UnknownId { .. })
        ));
        assert!(matches!(
            m.insert(Response {
                worker: WorkerId(0),
                task: TaskId(0),
                label: Label(7)
            }),
            Err(DataError::LabelOutOfRange { .. })
        ));
        assert_eq!(m.n_responses(), 1);
    }

    #[test]
    fn regular_detection() {
        let mut b = ResponseMatrixBuilder::new(2, 2, 2);
        for w in 0..2 {
            for t in 0..2 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        assert!(b.build().unwrap().is_regular());
    }
}
