//! The streaming overlap substrate: a long-lived [`OverlapIndex`] plus
//! **incrementally maintained** per-worker anchored bitset views.
//!
//! The batch pipeline builds one [`OverlapIndex`] per `evaluate_all`
//! and constructs each worker's [`crate::BitsetAnchored`] view on
//! demand — `O(Σ_{t ∈ tasks(anchor)} r_t)` per view, once per
//! evaluation. A streaming monitor that re-evaluates after every
//! ingest would pay that build over and over even though one response
//! flips at most a handful of bits. [`StreamingIndex`] therefore keeps
//! **all `m` anchored views alive** and updates them response by
//! response:
//!
//! * a response `(w, t)` adds one bit (`w` attempted `t`) to the view
//!   of every anchor that already attempted `t` — `O(r_t)` bitset
//!   writes located through each view's task→slot map;
//! * the view of `w` itself gains a new slot for `t`, set for every
//!   current responder of `t` — another `O(r_t)`.
//!
//! Slots are assigned in **ingest order**, not task order; every query
//! the estimators make ([`AnchoredOverlap::triple_common`],
//! [`AnchoredOverlap::common_among`], [`AnchoredView::pair_common`])
//! is a popcount and popcounts are permutation-invariant, so the
//! maintained views answer *exactly* what a fresh batch build would —
//! the property the streaming-equivalence test suite pins down to the
//! bit.
//!
//! Memory: `m` views of `m × ⌈l_anchor/64⌉` mask words plus a dense
//! `n`-entry task→slot map each, i.e. `O(m²·n̄/64 + m·n)` — the price
//! of O(r_t)-per-ingest maintenance with O(1) slot lookups on the
//! ingest hot path. At fleet scale shard workers first (see ROADMAP
//! "Sharded assessment"); within a shard the quadratic factor is
//! small.

use crate::index::{AnchoredOverlap, MaskMatrix, OverlapSource};
use crate::{Label, OverlapIndex, PairStats, Response, ResponseMatrix, TripleStats, WorkerId};

/// One worker's maintained anchored triple-overlap view; the streaming
/// counterpart of [`crate::BitsetAnchored`].
///
/// The anchor's attempted tasks occupy bit slots `0..anchor_tasks` (in
/// ingest order); `masks[w]` records which of those tasks worker `w`
/// attempted. All queries are word-parallel popcounts.
#[derive(Debug, Clone)]
pub struct AnchoredView {
    /// The anchored bit matrix and its popcount kernels — the *same*
    /// [`MaskMatrix`] implementation the batch [`crate::BitsetAnchored`]
    /// view queries, so the two views cannot drift apart.
    matrix: MaskMatrix,
    /// Dense direct map `task → slot + 1` (0 = anchor never attempted
    /// the task). `O(1)` lookups with one cache line touched — the
    /// ingest hot path does one lookup per responder of the arriving
    /// task, so a search structure here would dominate maintenance.
    /// Slots never move once assigned.
    slot_map: Vec<u32>,
}

impl AnchoredView {
    fn new(n_workers: usize, n_tasks: usize) -> Self {
        Self {
            matrix: MaskMatrix::new(n_workers, 1),
            slot_map: vec![0u32; n_tasks],
        }
    }

    /// The slot assigned to `task`, if the anchor attempted it.
    #[inline]
    fn slot(&self, task: u32) -> Option<u32> {
        match self.slot_map[task as usize] {
            0 => None,
            s => Some(s - 1),
        }
    }

    /// Marks `worker` as having attempted the anchor task in `slot`.
    #[inline]
    fn set_bit(&mut self, worker: u32, slot: u32) {
        self.matrix.set_bit(worker, slot);
    }

    /// Assigns the next slot to `task` and fills it for `responders`
    /// (the task's current responder list, anchor included). Amortized
    /// `O(r_t)`: the bit matrix re-lays out only when the slot count
    /// crosses the doubled word capacity.
    fn push_anchor_task(&mut self, task: u32, responders: &[(u32, Label)]) {
        debug_assert_eq!(
            self.slot_map[task as usize], 0,
            "anchor tasks are ingested once"
        );
        let slot = self.matrix.push_slot();
        self.slot_map[task as usize] = slot + 1;
        for &(w, _) in responders {
            self.set_bit(w, slot);
        }
    }

    /// `c_{anchor,a}`: tasks shared by the anchor and one worker.
    pub fn pair_common(&self, a: WorkerId) -> usize {
        self.matrix.pair_common(a)
    }
}

impl AnchoredOverlap for AnchoredView {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        self.matrix.triple_common(a, b)
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        self.matrix.common_among(others)
    }
}

impl<T: AnchoredOverlap> AnchoredOverlap for &T {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        (**self).triple_common(a, b)
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        (**self).common_among(others)
    }
}

/// A long-lived [`OverlapIndex`] plus maintained [`AnchoredView`]s for
/// every worker — the substrate of streaming evaluation (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// use crowd_data::{
///     AnchoredOverlap, Label, OverlapSource, Response, StreamingIndex, TaskId, WorkerId,
/// };
///
/// let mut stream = StreamingIndex::new(3, 4, 2);
/// for t in 0..4u32 {
///     stream.record_response(Response {
///         worker: WorkerId(0), task: TaskId(t), label: Label(0),
///     })?;
///     stream.record_response(Response {
///         worker: WorkerId(1), task: TaskId(t), label: Label((t % 2) as u16),
///     })?;
/// }
/// assert_eq!(stream.pair(WorkerId(0), WorkerId(1)).common_tasks, 4);
/// assert_eq!(stream.anchored(WorkerId(0)).triple_common(WorkerId(1), WorkerId(1)), 4);
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingIndex {
    index: OverlapIndex,
    views: Vec<AnchoredView>,
}

impl StreamingIndex {
    /// An empty streaming substrate of the given shape.
    ///
    /// # Panics
    /// Panics if `arity < 2` (mirroring [`OverlapIndex::new`]).
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16) -> Self {
        Self {
            index: OverlapIndex::new(n_workers, n_tasks, arity),
            views: (0..n_workers)
                .map(|_| AnchoredView::new(n_workers, n_tasks))
                .collect(),
        }
    }

    /// Seeds the substrate from an existing matrix (one batch index
    /// build plus one replay of each task's responder lists into the
    /// views), after which further responses stream in.
    pub fn from_matrix(data: &ResponseMatrix) -> Self {
        let index = OverlapIndex::from_matrix(data);
        let m = data.n_workers();
        let mut views: Vec<AnchoredView> = (0..m)
            .map(|_| AnchoredView::new(m, data.n_tasks()))
            .collect();
        for task in data.tasks() {
            let responders = data.task_responses(task);
            for &(anchor, _) in responders {
                views[anchor as usize].push_anchor_task(task.0, responders);
            }
        }
        Self { index, views }
    }

    /// Ingests one response, updating the index (rows + pair table) and
    /// every affected anchored view. `O(log r + r)` row insertion plus
    /// `O(r_t)` pair-table and bitset maintenance; the validation and
    /// error taxonomy are [`OverlapIndex::record_response`]'s.
    pub fn record_response(&mut self, response: Response) -> crate::Result<()> {
        self.index.record_response(response)?;
        let responders = self.index.task_responses(response.task);
        // Existing anchors of this task gain one bit: the new worker.
        for &(anchor, _) in responders {
            if anchor == response.worker.0 {
                continue;
            }
            let view = &mut self.views[anchor as usize];
            let slot = view
                .slot(response.task.0)
                .expect("responders of a task are anchors of that task");
            view.set_bit(response.worker.0, slot);
        }
        // The responding worker's own view gains the task as a slot.
        let (index, views) = (&self.index, &mut self.views);
        views[response.worker.index()]
            .push_anchor_task(response.task.0, index.task_responses(response.task));
        Ok(())
    }

    /// The maintained index.
    #[inline]
    pub fn index(&self) -> &OverlapIndex {
        &self.index
    }

    /// The maintained anchored view of one worker.
    #[inline]
    pub fn view(&self, worker: WorkerId) -> &AnchoredView {
        &self.views[worker.index()]
    }

    /// Total responses ingested.
    #[inline]
    pub fn n_responses(&self) -> usize {
        self.index.n_responses()
    }

    /// Number of tasks covered.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.index.n_tasks()
    }
}

impl OverlapSource for StreamingIndex {
    type Anchored<'a> = &'a AnchoredView;

    fn n_workers(&self) -> usize {
        self.index.n_workers()
    }

    fn arity(&self) -> u16 {
        OverlapSource::arity(&self.index)
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        self.index.pair(a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        self.index.triple(a, b, c)
    }

    fn anchored(&self, anchor: WorkerId) -> &AnchoredView {
        &self.views[anchor.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResponseMatrixBuilder, TaskId, pair_stats};

    /// A deterministic sparse matrix (same generator as the index
    /// tests).
    fn sample(m: usize, n: usize, arity: u16, seed: u64) -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(m, n, arity);
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for w in 0..m as u32 {
            for t in 0..n as u32 {
                if next() % 10 < 6 {
                    b.push(
                        WorkerId(w),
                        TaskId(t),
                        Label((next() % arity as u32) as u16),
                    )
                    .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    /// Streamed and seeded substrates answer the same queries as the
    /// batch index and its on-demand anchored views.
    #[test]
    fn maintained_views_match_batch_anchored_builds() {
        let data = sample(7, 45, 2, 2024);
        let batch = OverlapIndex::from_matrix(&data);
        let seeded = StreamingIndex::from_matrix(&data);
        let mut streamed = StreamingIndex::new(7, 45, 2);
        let mut responses: Vec<_> = data.iter().collect();
        responses.reverse();
        for r in responses {
            streamed.record_response(r).unwrap();
        }
        assert_eq!(streamed.index(), &batch);
        assert_eq!(seeded.index(), &batch);
        for anchor in batch.workers() {
            let fresh = batch.anchored(anchor);
            for sub in [&seeded, &streamed] {
                let view = sub.view(anchor);
                assert_eq!(
                    view.common_among(&[]),
                    batch.worker_responses(anchor).len(),
                    "anchor {anchor:?} slot count"
                );
                for a in batch.workers() {
                    assert_eq!(
                        view.pair_common(a),
                        if a == anchor {
                            batch.worker_responses(anchor).len()
                        } else {
                            pair_stats(&data, anchor, a).common_tasks
                        },
                        "anchor {anchor:?} pair {a:?}"
                    );
                    for b in batch.workers() {
                        assert_eq!(
                            view.triple_common(a, b),
                            fresh.triple_common(a, b),
                            "anchor {anchor:?} pair ({a:?},{b:?})"
                        );
                    }
                }
                let peers: Vec<WorkerId> = batch.workers().filter(|&w| w != anchor).collect();
                assert_eq!(
                    view.common_among(&peers[..4]),
                    fresh.common_among(&peers[..4])
                );
            }
        }
    }

    /// Slot growth crosses word boundaries without losing bits.
    #[test]
    fn views_survive_word_boundary_growth() {
        // One anchor with > 128 tasks forces two mask re-layouts.
        let mut stream = StreamingIndex::new(2, 200, 2);
        for t in 0..150u32 {
            stream
                .record_response(Response {
                    worker: WorkerId(0),
                    task: TaskId(t),
                    label: Label(0),
                })
                .unwrap();
            if t % 3 == 0 {
                stream
                    .record_response(Response {
                        worker: WorkerId(1),
                        task: TaskId(t),
                        label: Label(0),
                    })
                    .unwrap();
            }
        }
        let view = stream.view(WorkerId(0));
        assert_eq!(view.common_among(&[]), 150);
        assert_eq!(view.pair_common(WorkerId(1)), 50);
        assert_eq!(stream.view(WorkerId(1)).pair_common(WorkerId(0)), 50);
    }

    /// Rejected responses leave the views untouched.
    #[test]
    fn rejected_ingest_is_a_no_op() {
        let data = sample(4, 20, 2, 77);
        let mut stream = StreamingIndex::from_matrix(&data);
        let some = data.iter().next().unwrap();
        assert!(stream.record_response(some).is_err());
        assert_eq!(stream.n_responses(), data.n_responses());
        let batch = OverlapIndex::from_matrix(&data);
        for anchor in batch.workers() {
            let fresh = batch.anchored(anchor);
            for a in batch.workers() {
                for b in batch.workers() {
                    assert_eq!(
                        stream.view(anchor).triple_common(a, b),
                        fresh.triple_common(a, b)
                    );
                }
            }
        }
    }
}
