//! The streaming overlap substrate: a long-lived [`OverlapIndex`] plus
//! **incrementally maintained**, **peer-scoped** per-worker anchored
//! bitset views.
//!
//! The batch pipeline builds one [`OverlapIndex`] per `evaluate_all`
//! and constructs each worker's [`crate::BitsetAnchored`] view on
//! demand, once per evaluation. A streaming monitor that re-evaluates
//! after every ingest would pay that build over and over even though
//! one response flips at most a handful of bits. [`StreamingIndex`]
//! therefore keeps an [`AnchoredView`] per worker and updates the
//! **anchored** ones response by response:
//!
//! * a response `(w, t)` adds one bit (`w` attempted `t`) to the view
//!   of every anchor that already attempted `t` *and tracks `w` in its
//!   peer scope* — `O(r_t)` peer-map probes located through each
//!   view's task→slot map;
//! * the view of `w` itself gains a new slot for `t`, set for every
//!   current responder of `t` inside its scope — another `O(r_t)`.
//!
//! # Peer scoping and lazy re-anchoring
//!
//! Views are **lazy**: they hold no mask rows at all until the first
//! [`OverlapSource::anchored_for`] (or population-wide
//! [`OverlapSource::anchored`]) call for their worker, and from then
//! on only a row per *declared peer* — the ≤ 2l workers the caller's
//! pairing selected — never a row per population member. When a later
//! call declares peers outside the current scope (the pairing
//! changed), the view **re-anchors**: one fresh peer-scoped build from
//! the index (`O(l_anchor + Σ_{p ∈ peers} l_p)` plus an `O(n)`
//! slot-map sweep), after which incremental maintenance resumes.
//! Calls whose peers are already covered are served as-is — unless
//! the held scope is > 4× the requested one, where the view
//! re-anchors *down* and releases the larger allocation (a view that
//! once served a population-wide query must not pin `O(m)` rows
//! forever). A stable pairing therefore never rebuilds
//! ([`StreamingIndex::reanchor_count`] makes the rebuild traffic
//! observable).
//!
//! Slots are assigned in task order at re-anchor time and in **ingest
//! order** thereafter; every query the estimators make
//! ([`AnchoredOverlap::triple_common`],
//! [`AnchoredOverlap::common_among`], [`AnchoredView::pair_common`])
//! is a popcount and popcounts are permutation-invariant, so the
//! maintained views answer *exactly* what a fresh batch build would —
//! the property the streaming-equivalence test suite pins down to the
//! bit.
//!
//! # Maintained grams
//!
//! Each view also carries the [`crate::PeerGram`] table of its scope
//! (every pairwise AND-popcount among scoped rows), **materialized
//! lazily** on the first gram query and **patched in place** on every
//! ingest: a peer response increments one row/column pair of the
//! table (`O(scope)`), an anchor response increments the in-scope
//! responder submatrix (`O(r_t²)`). A covariance evaluation against a
//! covered scope therefore recomputes no popcounts — it extracts
//! `O(peers²)` table entries — and the table equals a fresh blocked
//! build from the accumulated index at every prefix (pinned by the
//! gram property tests). Patching is **metered** so ingest-heavy
//! phases cannot pay more in maintenance than recomputation would
//! cost: each serve grants about one recompute's worth of patch
//! budget, and when a flood of ingests exhausts it the cache
//! self-invalidates and the next gram query rebuilds once.
//! Re-anchors invalidate the table the same way.
//!
//! Memory: an **anchored** view holds at most `2l × ⌈l_anchor/64⌉`
//! mask words plus a dense `n`-entry task→slot map; dormant views
//! hold neither (the slot map is claimed on first anchoring), so the
//! resident cost is `O(a·(l·n̄/64 + n))` in the number of *evaluated*
//! workers `a ≤ m` — down from the population-scoped
//! `O(m²·n̄/64 + m·n)` of the original design, which is what
//! fleet-scale worker counts (and per-shard service monitors sharing
//! one fleet-sized id space) need. A materialized gram adds `O(l²)`
//! per **evaluated** view. At even larger scale shard workers first (see
//! ROADMAP "Sharded assessment") — one monitor per shard closure also
//! bounds the gram residency.
//!
//! # Ingest epochs and dirty tracking
//!
//! The substrate also stamps a monotone **ingest epoch** on every
//! accepted response and records, per worker, the epoch at which that
//! worker's *assessment inputs* last moved
//! ([`StreamingIndex::epoch`], [`StreamingIndex::dirty_epoch`]).
//! A response from worker `w` can only move statistics that involve
//! `w` — the pairs it completes, the triples it joins, the mask bits
//! in `w`'s row — and an anchor `a`'s evaluation reads only
//! statistics over `{a} ∪ cooccur(a)` (pairing candidates are
//! co-occurring workers; partner selection reads peer–peer pairs and
//! the Lemma 4 covariance reads triples among them). So the ingest
//! dirties exactly `{w} ∪ cooccur(w)`, taken **after** the pair table
//! has absorbed the response so co-occurrences the response itself
//! creates are included. Note the set is deliberately wider than the
//! arriving task's responders: an anchor that never touched the task
//! can still re-pair when a peer–peer overlap among its candidates
//! moves. With the sparse pair backend the set is read straight off
//! the [`crate::PairMap`] row in `O(d_w)`; the dense backend keeps a
//! small mirror adjacency for the same purpose. This is what makes
//! epoch-gated report caches (`crowd_core`'s `ReportCache`) sound: a
//! worker whose `dirty_epoch` has not advanced past a cached
//! evaluation would re-derive bit-identical numbers.

use crate::index::{AnchoredOverlap, MaskMatrix, OverlapSource, PairBackend, PeerMask};
use crate::{
    Label, OverlapIndex, PairStats, PeerGram, PeerGramScratch, Response, ResponseMatrix, TaskId,
    TriplePairGram, TripleStats, WorkerId,
};
use std::cell::{Cell, Ref, RefCell};

/// One worker's maintained anchored triple-overlap view; the streaming
/// counterpart of [`crate::BitsetAnchored`].
///
/// The anchor's attempted tasks occupy bit slots `0..anchor_tasks`;
/// row `r` of the mask matrix records which of those tasks the
/// `r`-th *scoped peer* attempted. Views start un-anchored (no rows,
/// no slots) and acquire a scope on first use; see the
/// [module docs](self). All queries are word-parallel popcounts.
#[derive(Debug, Clone)]
pub struct AnchoredView {
    /// The anchored bit matrix and its popcount kernels — the *same*
    /// [`MaskMatrix`] implementation the batch [`crate::BitsetAnchored`]
    /// view queries, so the two views cannot drift apart.
    matrix: MaskMatrix,
    /// The peer scope: which workers have mask rows. `None` until the
    /// first anchored query for this worker.
    scope: Option<PeerMask>,
    /// Dense direct map `task → slot + 1` (0 = anchor never attempted
    /// the task). `O(1)` lookups with one cache line touched — the
    /// ingest hot path does one lookup per responder of the arriving
    /// task, so a search structure here would dominate maintenance.
    /// Slots never move once assigned. **Empty until the view first
    /// anchors** (sized to `n_tasks` by [`AnchoredView::reanchor`]):
    /// a fleet of dormant views costs `O(1)` each, not `O(n)` — the
    /// term that would otherwise dominate a per-shard service holding
    /// one [`StreamingIndex`] per shard over a fleet-sized id space.
    slot_map: Vec<u32>,
    /// Lazily materialized scope-rows × scope-rows Gram of AND
    /// popcounts, **patched incrementally** on every ingest that flips
    /// a mask bit — a covariance evaluation against a stable scope
    /// re-reads the table instead of recomputing popcounts (see
    /// [`AnchoredOverlap::gram_into`]). Interior mutability because
    /// materialization happens behind the shared `Ref` the evaluators
    /// hold; invalidated (not rebuilt) on re-anchor or when the patch
    /// budget runs dry (see [`ScopeGram`]).
    gram: RefCell<ScopeGram>,
    /// Reusable in-scope-responder row buffer for the anchor-task
    /// gram patch — the ingest path stays allocation-free once it
    /// reaches its high-water mark.
    patch_rows: Vec<usize>,
    /// Gram patch operations applied by ingest maintenance so far
    /// (runtime diagnostic; see [`StreamingIndex::gram_patch_count`]).
    gram_patches: usize,
    /// Blocked gram (re)builds run by [`AnchoredView::ensure_gram`]
    /// (runtime diagnostic; see
    /// [`StreamingIndex::gram_rebuild_count`]).
    gram_rebuilds: Cell<usize>,
}

/// The maintained Gram cache of one [`AnchoredView`]; dormant (zero
/// memory) until the first gram query for the view, exact from then
/// on until a re-anchor invalidates it.
///
/// Patching is metered: a peer response costs `O(scope)` table
/// increments and an anchor task `O(r_t²)`, so a view that ingests
/// far more than it evaluates would pay more in patches than one
/// blocked recompute. `remaining` holds the patch budget — about one
/// recompute's worth of work, reset every time the table is served —
/// and when it runs dry the cache invalidates itself and the next
/// gram query rebuilds lazily. Evaluation-heavy monitors therefore
/// never recompute a popcount, while ingest-heavy phases pay at most
/// ~2× one gram build per serve, never per response.
#[derive(Debug, Clone, Default)]
struct ScopeGram {
    live: bool,
    /// `scope.rows()²` counts when live.
    counts: Vec<u32>,
    /// Patch operations left before the cache stops paying for itself
    /// and self-invalidates.
    remaining: usize,
}

impl ScopeGram {
    /// One recompute's worth of patch operations: a peer-response
    /// patch costs ~`rows` increments and the blocked rebuild
    /// ~`rows²·words/2` word operations, so `rows·words/2` patches
    /// break even (floored so tiny views still absorb a burst).
    fn budget(rows: usize, words: usize) -> usize {
        (rows * words / 2).max(64)
    }

    fn invalidate(&mut self) {
        self.live = false;
        self.counts = Vec::new();
        self.remaining = 0;
    }
}

impl AnchoredView {
    fn new() -> Self {
        Self {
            matrix: MaskMatrix::new(0, 1),
            scope: None,
            slot_map: Vec::new(),
            gram: RefCell::new(ScopeGram::default()),
            patch_rows: Vec::new(),
            gram_patches: 0,
            gram_rebuilds: Cell::new(0),
        }
    }

    /// The slot assigned to `task`, if the anchor attempted it.
    #[inline]
    fn slot(&self, task: u32) -> Option<u32> {
        match self.slot_map[task as usize] {
            0 => None,
            s => Some(s - 1),
        }
    }

    /// Whether the view is anchored with a scope covering `peers`.
    fn covers(&self, peers: &PeerMask) -> bool {
        self.scope.as_ref().is_some_and(|s| s.covers(peers))
    }

    /// Whether the held scope is wastefully larger (> 4×) than the
    /// requested one; see [`StreamingIndex`]'s `ensure_scope`.
    fn oversized_for(&self, peers: &PeerMask) -> bool {
        self.scope
            .as_ref()
            .is_some_and(|s| s.rows() > 4 * peers.rows().max(1))
    }

    /// Ingest maintenance: `worker` responded to the already-slotted
    /// anchor task `task`; set its bit if it is in scope. No-op for
    /// un-anchored views (they rebuild from the index on first use).
    fn note_peer_response(&mut self, worker: u32, task: u32) {
        let Some(scope) = &self.scope else { return };
        if let Some(row) = scope.row(worker) {
            let slot = self
                .slot(task)
                .expect("responders of a task are anchors of that task");
            self.matrix.set_bit(row, slot);
            // Patch the maintained gram: row's intersections grow by
            // one against every scoped row that also has the slot set
            // (row itself included — its diagonal popcount grows too).
            let gram = self.gram.get_mut();
            if gram.live {
                if gram.remaining == 0 {
                    gram.invalidate();
                    return;
                }
                gram.remaining -= 1;
                self.gram_patches += 1;
                let d = scope.rows();
                for r in 0..d {
                    if self.matrix.bit(r, slot) {
                        gram.counts[row * d + r] += 1;
                        if r != row {
                            gram.counts[r * d + row] += 1;
                        }
                    }
                }
            }
        }
    }

    /// Ingest maintenance: the anchor itself responded to `task`;
    /// assign the next slot and fill it for the in-scope members of
    /// `responders` (the task's current responder list, anchor
    /// included). Amortized `O(r_t)`: the bit matrix re-lays out only
    /// when the slot count crosses the doubled word capacity. No-op
    /// for un-anchored views.
    fn note_anchor_task(&mut self, task: u32, responders: &[(u32, Label)]) {
        let Some(scope) = &self.scope else { return };
        debug_assert_eq!(
            self.slot_map[task as usize], 0,
            "anchor tasks are ingested once"
        );
        let slot = self.matrix.push_slot();
        self.slot_map[task as usize] = slot + 1;
        let gram = self.gram.get_mut();
        if gram.live {
            // The fresh slot is set exactly for the in-scope
            // responders, so every ordered pair among them (diagonal
            // included) gains one shared task.
            self.patch_rows.clear();
            self.patch_rows
                .extend(responders.iter().filter_map(|&(w, _)| scope.row(w)));
            let rows = &self.patch_rows;
            for &r in rows {
                self.matrix.set_bit(r, slot);
            }
            if gram.remaining < rows.len() {
                gram.invalidate();
                return;
            }
            gram.remaining -= rows.len();
            self.gram_patches += 1;
            let d = scope.rows();
            for &r1 in rows {
                for &r2 in rows {
                    gram.counts[r1 * d + r2] += 1;
                }
            }
        } else {
            for &(w, _) in responders {
                if let Some(row) = scope.row(w) {
                    self.matrix.set_bit(row, slot);
                }
            }
        }
    }

    /// Re-anchors the view for `scope`: an `O(n)` slot-map sweep
    /// (slots in task order) followed by the *same*
    /// [`crate::index::fill_anchored_with`] kernel the batch views
    /// use, looking slots up through the freshly built map — one
    /// implementation of the bit layout, so the maintained and batch
    /// views cannot drift apart. The matrix is pre-sized to the
    /// anchor's exact current degree (no doubling re-layout) and its
    /// reuse slack is released afterwards: the view is long-lived
    /// state, and a downsizing re-anchor (population → peer scope)
    /// must actually return the memory it claims to.
    fn reanchor(&mut self, index: &OverlapIndex, anchor: WorkerId, scope: PeerMask) {
        // First anchoring claims the dense slot map; dormant views
        // never pay the `O(n)` allocation.
        self.slot_map.clear();
        self.slot_map.resize(index.n_tasks(), 0);
        for (slot, &(task, _)) in index.worker_responses(anchor).iter().enumerate() {
            self.slot_map[task as usize] = slot as u32 + 1;
        }
        let (matrix, slot_map) = (&mut self.matrix, &self.slot_map);
        crate::index::fill_anchored_with(index, anchor, &scope, matrix, |task| {
            match slot_map[task as usize] {
                0 => None,
                s => Some(s - 1),
            }
        });
        self.matrix.shrink();
        self.scope = Some(scope);
        // The cached gram is keyed to the old scope's rows; drop it
        // (the next gram query recomputes lazily) rather than patch
        // across a row remap.
        self.gram.get_mut().invalidate();
    }

    /// Materializes the scope gram if needed (one blocked pass over
    /// the maintained matrix) and returns it; exact thereafter because
    /// every ingest patches it in place. Each serve refills the patch
    /// budget — a table that keeps getting read keeps earning its
    /// maintenance.
    fn ensure_gram(&self) -> Ref<'_, ScopeGram> {
        {
            let mut gram = self.gram.borrow_mut();
            let scope = self
                .scope
                .as_ref()
                .expect("view queried before it was anchored");
            if !gram.live {
                let rows: Vec<usize> = (0..scope.rows()).collect();
                let ScopeGram { live, counts, .. } = &mut *gram;
                self.matrix.gram_rows_into(&rows, counts);
                *live = true;
                self.gram_rebuilds.set(self.gram_rebuilds.get() + 1);
            }
            gram.remaining = ScopeGram::budget(scope.rows(), self.matrix.words());
        }
        self.gram.borrow()
    }

    /// `c_{anchor,a}`: tasks shared by the anchor and one worker.
    pub fn pair_common(&self, a: WorkerId) -> usize {
        self.matrix.pair_common(self.row_of(a))
    }

    /// Bytes resident in the view's bit matrix (zero until the view is
    /// first anchored; `peers · ⌈l_anchor/64⌉` words thereafter).
    pub fn mask_bytes(&self) -> usize {
        if self.scope.is_some() {
            self.matrix.mask_bytes()
        } else {
            0
        }
    }

    #[inline]
    fn row_of(&self, w: WorkerId) -> usize {
        self.scope
            .as_ref()
            .expect("view queried before it was anchored")
            .row_of(w)
    }
}

impl AnchoredOverlap for AnchoredView {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        self.matrix.triple_common(self.row_of(a), self.row_of(b))
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        crate::index::common_among_mapped(
            &self.matrix,
            self.scope
                .as_ref()
                .expect("view queried before it was anchored"),
            others,
        )
    }

    fn gram_into(&self, peers: &[WorkerId], gram: &mut PeerGram, scratch: &mut PeerGramScratch) {
        // Serve from the maintained scope gram: materialize once, then
        // every later call against a covered scope is an O(peers²)
        // table extraction — no popcount ever reruns while the
        // maintained-view invariant holds (ingests patch the cache).
        let scope = self
            .scope
            .as_ref()
            .expect("view queried before it was anchored");
        let cache = self.ensure_gram();
        gram.reset(peers);
        let dim = gram.dim();
        scratch.rows.clear();
        for row in 0..dim {
            scratch.rows.push(scope.row_of(gram.peer(row)));
        }
        let d = scope.rows();
        let counts = gram.counts_mut();
        for (i, &ri) in scratch.rows.iter().enumerate() {
            for (j, &rj) in scratch.rows.iter().enumerate() {
                counts[i * dim + j] = cache.counts[ri * d + rj];
            }
        }
    }

    fn pair_gram_into(
        &self,
        pairs: &[(WorkerId, WorkerId)],
        gram: &mut TriplePairGram,
        scratch: &mut PeerGramScratch,
    ) {
        crate::gram::pair_gram_into_mapped(
            &self.matrix,
            self.scope
                .as_ref()
                .expect("view queried before it was anchored"),
            pairs,
            gram,
            scratch,
        );
    }
}

impl<T: AnchoredOverlap> AnchoredOverlap for &T {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        (**self).triple_common(a, b)
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        (**self).common_among(others)
    }

    fn gram_into(&self, peers: &[WorkerId], gram: &mut PeerGram, scratch: &mut PeerGramScratch) {
        (**self).gram_into(peers, gram, scratch);
    }

    fn pair_gram_into(
        &self,
        pairs: &[(WorkerId, WorkerId)],
        gram: &mut TriplePairGram,
        scratch: &mut PeerGramScratch,
    ) {
        (**self).pair_gram_into(pairs, gram, scratch);
    }
}

impl AnchoredOverlap for Ref<'_, AnchoredView> {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        (**self).triple_common(a, b)
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        (**self).common_among(others)
    }

    fn gram_into(&self, peers: &[WorkerId], gram: &mut PeerGram, scratch: &mut PeerGramScratch) {
        (**self).gram_into(peers, gram, scratch);
    }

    fn pair_gram_into(
        &self,
        pairs: &[(WorkerId, WorkerId)],
        gram: &mut TriplePairGram,
        scratch: &mut PeerGramScratch,
    ) {
        (**self).pair_gram_into(pairs, gram, scratch);
    }
}

/// A long-lived [`OverlapIndex`] plus lazily anchored, maintained
/// [`AnchoredView`]s — the substrate of streaming evaluation (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// use crowd_data::{
///     AnchoredOverlap, Label, OverlapSource, Response, StreamingIndex, TaskId, WorkerId,
/// };
///
/// let mut stream = StreamingIndex::new(3, 4, 2);
/// for t in 0..4u32 {
///     stream.record_response(Response {
///         worker: WorkerId(0), task: TaskId(t), label: Label(0),
///     })?;
///     stream.record_response(Response {
///         worker: WorkerId(1), task: TaskId(t), label: Label((t % 2) as u16),
///     })?;
/// }
/// assert_eq!(stream.pair(WorkerId(0), WorkerId(1)).common_tasks, 4);
/// // A peer-scoped view: only worker 1 gets a mask row.
/// let view = stream.anchored_for(WorkerId(0), &[WorkerId(1)]);
/// assert_eq!(view.triple_common(WorkerId(1), WorkerId(1)), 4);
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingIndex {
    index: OverlapIndex,
    views: Vec<RefCell<AnchoredView>>,
    /// Lazy re-anchors performed so far (diagnostic: a stable pairing
    /// should stop incurring these).
    reanchors: Cell<usize>,
    /// Monotone ingest epoch: 0 for an empty substrate, advanced by
    /// one per accepted response. [`StreamingIndex::from_matrix`]
    /// seeds at 1 (the seed is one opaque bulk ingest).
    epoch: u64,
    /// Per-worker epoch at which that worker's assessment inputs last
    /// changed (see the [module docs](self) and
    /// [`StreamingIndex::dirty_epoch`]).
    dirty_at: Vec<u64>,
    /// Sorted co-occurring-worker lists, maintained only under the
    /// dense pair backend whose table cannot enumerate a worker's
    /// neighbours; the sparse backend serves
    /// [`OverlapSource::co_occurring_into`] straight off its rows.
    dense_adj: Option<Vec<Vec<u32>>>,
    /// Reusable neighbour buffer for the per-ingest dirty sweep.
    dirty_scratch: Vec<WorkerId>,
}

/// Sorted-unique insertion for the mirror adjacency rows.
fn insert_sorted(row: &mut Vec<u32>, w: u32) {
    if let Err(pos) = row.binary_search(&w) {
        row.insert(pos, w);
    }
}

impl StreamingIndex {
    /// An empty streaming substrate of the given shape (dense pair
    /// table).
    ///
    /// # Panics
    /// Panics if `arity < 2` (mirroring [`OverlapIndex::new`]).
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16) -> Self {
        Self::new_with(n_workers, n_tasks, arity, PairBackend::Dense)
    }

    /// [`StreamingIndex::new`] with an explicit pair-table backend.
    /// The sparse [`crate::PairMap`] backend is the fleet-scale /
    /// per-shard opt-in: a shard worker ingesting only its closure's
    /// responses holds pair state proportional to the co-occurring
    /// pairs it actually sees, never `O(m²)` (see [`PairBackend`]).
    ///
    /// # Panics
    /// Panics if `arity < 2` (mirroring [`OverlapIndex::new_with`]).
    pub fn new_with(n_workers: usize, n_tasks: usize, arity: u16, backend: PairBackend) -> Self {
        let dense_adj = match backend {
            PairBackend::Dense => Some(vec![Vec::new(); n_workers]),
            PairBackend::Sparse => None,
        };
        Self {
            index: OverlapIndex::new_with(n_workers, n_tasks, arity, backend),
            views: (0..n_workers)
                .map(|_| RefCell::new(AnchoredView::new()))
                .collect(),
            reanchors: Cell::new(0),
            epoch: 0,
            dirty_at: vec![0; n_workers],
            dense_adj,
            dirty_scratch: Vec::new(),
        }
    }

    /// Seeds the substrate from an existing matrix — one batch index
    /// build and nothing else: views stay un-anchored (zero mask
    /// memory) until the first evaluation asks for them. The seed
    /// counts as one bulk ingest: the epoch starts at 1 with every
    /// worker dirty at it.
    pub fn from_matrix(data: &ResponseMatrix) -> Self {
        let index = OverlapIndex::from_matrix(data);
        // The batch index uses the dense pair backend, which cannot
        // enumerate neighbours; build the mirror adjacency from the
        // task responder lists (`O(Σ r_t²)`, same order as the pair
        // table build itself).
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); data.n_workers()];
        for t in 0..data.n_tasks() as u32 {
            let responders = index.task_responses(TaskId(t));
            for (i, &(a, _)) in responders.iter().enumerate() {
                for &(b, _) in &responders[i + 1..] {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
        }
        Self {
            index,
            views: (0..data.n_workers())
                .map(|_| RefCell::new(AnchoredView::new()))
                .collect(),
            reanchors: Cell::new(0),
            epoch: 1,
            dirty_at: vec![1; data.n_workers()],
            dense_adj: Some(adj),
            dirty_scratch: Vec::new(),
        }
    }

    /// Ingests one response, updating the index (rows + pair table) and
    /// every affected *anchored* view. `O(log r + r)` row insertion
    /// plus `O(r_t)` pair-table and bitset maintenance; un-anchored
    /// views cost nothing. The validation and error taxonomy are
    /// [`OverlapIndex::record_response`]'s.
    pub fn record_response(&mut self, response: Response) -> crate::Result<()> {
        self.index.record_response(response)?;
        let responders = self.index.task_responses(response.task);
        // Existing anchors of this task gain one bit: the new worker.
        for &(anchor, _) in responders {
            if anchor == response.worker.0 {
                continue;
            }
            self.views[anchor as usize]
                .borrow_mut()
                .note_peer_response(response.worker.0, response.task.0);
        }
        // The responding worker's own view gains the task as a slot.
        self.views[response.worker.index()]
            .borrow_mut()
            .note_anchor_task(response.task.0, responders);
        // Dense-backend mirror adjacency: the response co-occurs the
        // worker with every prior responder of the task.
        if let Some(adj) = self.dense_adj.as_mut() {
            let w = response.worker.0;
            for &(r, _) in responders {
                if r == w {
                    continue;
                }
                insert_sorted(&mut adj[w as usize], r);
                insert_sorted(&mut adj[r as usize], w);
            }
        }
        self.mark_dirty(response.worker);
        Ok(())
    }

    /// Advances the ingest epoch and stamps it on `{w} ∪ cooccur(w)`
    /// — every worker whose assessment inputs the accepted response
    /// can have moved (see the [module docs](self)). `O(d_w)` off the
    /// pair-table adjacency; the epoch is taken **after** the index
    /// update so co-occurrences the response itself created are in
    /// the set.
    fn mark_dirty(&mut self, worker: WorkerId) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.dirty_at[worker.index()] = epoch;
        let mut scratch = std::mem::take(&mut self.dirty_scratch);
        scratch.clear();
        if self.index.co_occurring_into(worker, &mut scratch) {
            for &p in &scratch {
                self.dirty_at[p.index()] = epoch;
            }
        } else if let Some(adj) = &self.dense_adj {
            for &p in &adj[worker.index()] {
                self.dirty_at[p as usize] = epoch;
            }
        } else {
            // No adjacency available (a future backend without
            // neighbour enumeration): degrade soundly by dirtying
            // everyone rather than risking a stale cached report.
            for d in &mut self.dirty_at {
                *d = epoch;
            }
        }
        self.dirty_scratch = scratch;
    }

    /// Serves the view of `anchor`, re-anchoring it first when its
    /// current scope does not cover `scope` — or when it covers it
    /// with more than 4× the rows the caller asked for: a long-lived
    /// view that once served a population-wide query must not pin
    /// `O(m)` mask rows forever after the caller has moved to a
    /// pairing-degree scope. The 4× slack tolerates ordinary pairing
    /// drift without rebuild thrash.
    fn ensure_scope(&self, anchor: WorkerId, scope: PeerMask) -> Ref<'_, AnchoredView> {
        let cell = &self.views[anchor.index()];
        {
            let view = cell.borrow();
            if view.covers(&scope) && !view.oversized_for(&scope) {
                return view;
            }
        }
        self.reanchors.set(self.reanchors.get() + 1);
        cell.borrow_mut().reanchor(&self.index, anchor, scope);
        cell.borrow()
    }

    /// The maintained index.
    #[inline]
    pub fn index(&self) -> &OverlapIndex {
        &self.index
    }

    /// The maintained anchored view of one worker, population-scoped
    /// (every worker may be queried; re-anchors if the view currently
    /// tracks fewer peers). Prefer [`OverlapSource::anchored_for`] on
    /// evaluation paths — it keeps the view at pairing-degree size.
    #[inline]
    pub fn view(&self, worker: WorkerId) -> Ref<'_, AnchoredView> {
        self.ensure_scope(worker, PeerMask::population(self.index.n_workers()))
    }

    /// Total responses ingested.
    #[inline]
    pub fn n_responses(&self) -> usize {
        self.index.n_responses()
    }

    /// Number of tasks covered.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.index.n_tasks()
    }

    /// Bytes resident across all maintained mask matrices — the
    /// quantity the peer-scoped design bounds by `O(m·l·n̄/64)`
    /// instead of `O(m²·n̄/64)`.
    pub fn view_mask_bytes(&self) -> usize {
        self.views.iter().map(|v| v.borrow().mask_bytes()).sum()
    }

    /// How many lazy re-anchors have run (diagnostic; see the
    /// [module docs](self)).
    pub fn reanchor_count(&self) -> usize {
        self.reanchors.get()
    }

    /// The monotone ingest epoch: 0 for an empty substrate, +1 per
    /// accepted response (a matrix seed counts as one bulk ingest).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch at which `worker`'s assessment inputs last changed
    /// (0 = never). An evaluation of `worker` computed when
    /// [`StreamingIndex::epoch`] read `E ≥ dirty_epoch(worker)` is
    /// still exact — re-running it would produce bit-identical
    /// output.
    #[inline]
    pub fn dirty_epoch(&self, worker: WorkerId) -> u64 {
        self.dirty_at[worker.index()]
    }

    /// Whether `worker`'s assessment inputs changed after `epoch`.
    #[inline]
    pub fn is_dirty_since(&self, worker: WorkerId, epoch: u64) -> bool {
        self.dirty_at[worker.index()] > epoch
    }

    /// Reinstates serialized epoch state after a checkpoint replay
    /// (see [`crate::checkpoint`]): replaying rows through
    /// [`StreamingIndex::record_response`] rebuilds the index
    /// deterministically but advances the epoch in replay order, so
    /// the original (ingest-order-dependent) counters are restored
    /// wholesale afterwards.
    pub(crate) fn restore_epoch_state(&mut self, epoch: u64, dirty_at: Vec<u64>) {
        debug_assert_eq!(dirty_at.len(), self.dirty_at.len());
        self.epoch = epoch;
        self.dirty_at = dirty_at;
    }

    /// Collects into `out` (cleared first, ascending ids) every worker
    /// whose assessment inputs changed after `epoch`. `O(m)` — meant
    /// for drain points, not the ingest path; per-worker checks should
    /// use [`StreamingIndex::is_dirty_since`].
    pub fn dirty_since(&self, epoch: u64, out: &mut Vec<WorkerId>) {
        out.clear();
        out.extend(
            self.dirty_at
                .iter()
                .enumerate()
                .filter(|&(_, &e)| e > epoch)
                .map(|(w, _)| WorkerId(w as u32)),
        );
    }

    /// Total in-place gram patch operations applied by ingest
    /// maintenance across all views (diagnostic: together with
    /// [`StreamingIndex::gram_rebuild_count`] this makes the
    /// maintained-gram traffic observable — an evaluation-heavy
    /// monitor should show patches dwarfing rebuilds).
    pub fn gram_patch_count(&self) -> usize {
        self.views.iter().map(|v| v.borrow().gram_patches).sum()
    }

    /// Total blocked gram (re)builds across all views — lazy first
    /// materializations plus rebuilds forced by re-anchors or an
    /// exhausted patch budget.
    pub fn gram_rebuild_count(&self) -> usize {
        self.views
            .iter()
            .map(|v| v.borrow().gram_rebuilds.get())
            .sum()
    }
}

impl OverlapSource for StreamingIndex {
    type Anchored<'a> = Ref<'a, AnchoredView>;

    fn n_workers(&self) -> usize {
        self.index.n_workers()
    }

    fn arity(&self) -> u16 {
        OverlapSource::arity(&self.index)
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        self.index.pair(a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        self.index.triple(a, b, c)
    }

    fn anchored(&self, anchor: WorkerId) -> Ref<'_, AnchoredView> {
        self.ensure_scope(anchor, PeerMask::population(self.index.n_workers()))
    }

    fn anchored_for(&self, anchor: WorkerId, peers: &[WorkerId]) -> Ref<'_, AnchoredView> {
        self.ensure_scope(anchor, PeerMask::scoped_for(peers, self.index.n_workers()))
    }

    fn co_occurring_into(&self, worker: WorkerId, out: &mut Vec<WorkerId>) -> bool {
        if self.index.co_occurring_into(worker, out) {
            return true;
        }
        // Dense backend: serve from the mirror adjacency the dirty
        // tracker maintains. Same sorted-ascending, positive-overlap
        // worker list the sparse rows would produce, so pairing sees
        // an identical candidate sequence (zero-overlap workers are
        // screened out either way; see `crowd_core::pairing`).
        match &self.dense_adj {
            Some(adj) => {
                out.extend(adj[worker.index()].iter().map(|&w| WorkerId(w)));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResponseMatrixBuilder, TaskId, pair_stats};

    /// A deterministic sparse matrix (same generator as the index
    /// tests).
    fn sample(m: usize, n: usize, arity: u16, seed: u64) -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(m, n, arity);
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for w in 0..m as u32 {
            for t in 0..n as u32 {
                if next() % 10 < 6 {
                    b.push(
                        WorkerId(w),
                        TaskId(t),
                        Label((next() % arity as u32) as u16),
                    )
                    .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    /// Streamed and seeded substrates answer the same queries as the
    /// batch index and its on-demand anchored views.
    #[test]
    fn maintained_views_match_batch_anchored_builds() {
        let data = sample(7, 45, 2, 2024);
        let batch = OverlapIndex::from_matrix(&data);
        let seeded = StreamingIndex::from_matrix(&data);
        let mut streamed = StreamingIndex::new(7, 45, 2);
        let mut responses: Vec<_> = data.iter().collect();
        responses.reverse();
        for r in responses {
            streamed.record_response(r).unwrap();
        }
        assert_eq!(streamed.index(), &batch);
        assert_eq!(seeded.index(), &batch);
        for anchor in batch.workers() {
            let fresh = batch.anchored(anchor);
            for sub in [&seeded, &streamed] {
                let view = sub.view(anchor);
                assert_eq!(
                    view.common_among(&[]),
                    batch.worker_responses(anchor).len(),
                    "anchor {anchor:?} slot count"
                );
                for a in batch.workers() {
                    assert_eq!(
                        view.pair_common(a),
                        if a == anchor {
                            batch.worker_responses(anchor).len()
                        } else {
                            pair_stats(&data, anchor, a).common_tasks
                        },
                        "anchor {anchor:?} pair {a:?}"
                    );
                    for b in batch.workers() {
                        assert_eq!(
                            view.triple_common(a, b),
                            fresh.triple_common(a, b),
                            "anchor {anchor:?} pair ({a:?},{b:?})"
                        );
                    }
                }
                let peers: Vec<WorkerId> = batch.workers().filter(|&w| w != anchor).collect();
                assert_eq!(
                    view.common_among(&peers[..4]),
                    fresh.common_among(&peers[..4])
                );
            }
        }
    }

    /// A peer-scoped view is maintained across later ingests with no
    /// re-anchor, and keeps matching fresh batch builds bit for bit.
    #[test]
    fn scoped_views_are_maintained_without_reanchoring() {
        let data = sample(6, 40, 2, 99);
        let mut responses: Vec<_> = data.iter().collect();
        responses.reverse();
        let cut = responses.len() / 2;

        let mut stream = StreamingIndex::new(6, 40, 2);
        for r in &responses[..cut] {
            stream.record_response(*r).unwrap();
        }
        let anchor = WorkerId(0);
        let peers = [WorkerId(2), WorkerId(4), WorkerId(5)];
        {
            let view = stream.anchored_for(anchor, &peers);
            let fresh = stream.index().anchored(anchor);
            assert_eq!(
                view.triple_common(peers[0], peers[1]),
                fresh.triple_common(peers[0], peers[1])
            );
        }
        assert_eq!(stream.reanchor_count(), 1);

        // Stream the rest: the scoped view must stay exact with zero
        // further rebuilds.
        for r in &responses[cut..] {
            stream.record_response(*r).unwrap();
        }
        let view = stream.anchored_for(anchor, &peers);
        let fresh = stream.index().anchored(anchor);
        for &a in &peers {
            assert_eq!(view.pair_common(a), fresh.pair_common(a), "peer {a:?}");
            for &b in &peers {
                assert_eq!(
                    view.triple_common(a, b),
                    fresh.triple_common(a, b),
                    "pair ({a:?},{b:?})"
                );
            }
        }
        assert_eq!(view.common_among(&peers), fresh.common_among(&peers));
        drop(view);
        assert_eq!(
            stream.reanchor_count(),
            1,
            "covered scopes must not rebuild"
        );

        // A peer outside the scope forces exactly one re-anchor.
        let wider = [WorkerId(1), WorkerId(2)];
        let view = stream.anchored_for(anchor, &wider);
        let fresh = stream.index().anchored(anchor);
        assert_eq!(
            view.triple_common(WorkerId(1), WorkerId(2)),
            fresh.triple_common(WorkerId(1), WorkerId(2))
        );
        drop(view);
        assert_eq!(stream.reanchor_count(), 2);
    }

    /// Views hold no mask memory until something asks for them, and
    /// peer-scoped memory tracks the declared peer count, not m.
    #[test]
    fn view_memory_is_lazy_and_peer_scoped() {
        let data = sample(8, 64, 2, 7);
        let stream = StreamingIndex::from_matrix(&data);
        assert_eq!(stream.view_mask_bytes(), 0, "un-anchored views are free");

        let peers = [WorkerId(1), WorkerId(2)];
        let scoped_bytes = {
            let view = stream.anchored_for(WorkerId(0), &peers);
            view.mask_bytes()
        };
        assert_eq!(stream.view_mask_bytes(), scoped_bytes);
        let full_bytes = stream.index().anchored(WorkerId(0)).mask_bytes();
        assert_eq!(
            full_bytes,
            scoped_bytes / peers.len() * data.n_workers(),
            "peer-scoped rows must cost a fraction peers/m of the full view"
        );
    }

    /// A downsizing re-anchor (population scope → small peer scope)
    /// actually releases the mask allocation — `mask_bytes` reports
    /// capacity, so slack cannot hide behind the length.
    #[test]
    fn downsizing_reanchor_releases_mask_memory() {
        let data = sample(16, 64, 2, 33);
        let stream = StreamingIndex::from_matrix(&data);
        let population_bytes = {
            let view = stream.view(WorkerId(0));
            view.mask_bytes()
        };
        assert!(population_bytes > 0);
        let peers = [WorkerId(3), WorkerId(9)];
        let scoped_bytes = {
            let view = stream.anchored_for(WorkerId(0), &peers);
            view.mask_bytes()
        };
        assert_eq!(stream.view_mask_bytes(), scoped_bytes);
        assert!(
            scoped_bytes * 4 <= population_bytes,
            "downsizing from 16 rows to 2 must release the allocation: \
             {scoped_bytes}B resident after re-anchor vs {population_bytes}B before"
        );
    }

    /// Querying outside the declared peer scope is a loud contract
    /// violation, not a silent zero.
    #[test]
    #[should_panic(expected = "peer scope")]
    fn out_of_scope_queries_panic() {
        let data = sample(5, 30, 2, 11);
        let stream = StreamingIndex::from_matrix(&data);
        let view = stream.anchored_for(WorkerId(0), &[WorkerId(1), WorkerId(2)]);
        let _ = view.triple_common(WorkerId(1), WorkerId(3));
    }

    /// Slot growth crosses word boundaries without losing bits.
    #[test]
    fn views_survive_word_boundary_growth() {
        // One anchor with > 128 tasks forces two mask re-layouts.
        let mut stream = StreamingIndex::new(2, 200, 2);
        // Anchor the views first so ingest maintenance (push_slot) is
        // what grows them across the 64- and 128-slot boundaries.
        {
            let _ = stream.anchored_for(WorkerId(0), &[WorkerId(1)]);
            let _ = stream.anchored_for(WorkerId(1), &[WorkerId(0)]);
        }
        for t in 0..150u32 {
            stream
                .record_response(Response {
                    worker: WorkerId(0),
                    task: TaskId(t),
                    label: Label(0),
                })
                .unwrap();
            if t % 3 == 0 {
                stream
                    .record_response(Response {
                        worker: WorkerId(1),
                        task: TaskId(t),
                        label: Label(0),
                    })
                    .unwrap();
            }
        }
        let view = stream.view(WorkerId(0));
        assert_eq!(view.common_among(&[]), 150);
        assert_eq!(view.pair_common(WorkerId(1)), 50);
        assert_eq!(stream.view(WorkerId(1)).pair_common(WorkerId(0)), 50);
        drop(view);
        assert_eq!(
            stream.reanchor_count(),
            4,
            "the two view() calls re-anchor to population scope once each"
        );
    }

    /// The ingest epoch advances once per accepted response and the
    /// dirty set of each ingest is exactly `{w} ∪ cooccur(w)` —
    /// under both pair backends.
    #[test]
    fn dirty_sets_are_worker_plus_cooccurrence() {
        for backend in [PairBackend::Dense, PairBackend::Sparse] {
            let mut stream = StreamingIndex::new_with(5, 10, 2, backend);
            assert_eq!(stream.epoch(), 0);
            for w in 0..5u32 {
                assert_eq!(stream.dirty_epoch(WorkerId(w)), 0);
                assert!(!stream.is_dirty_since(WorkerId(w), 0));
            }
            // Workers 0 and 1 share task 0; worker 3 answers task 5 alone.
            let ingest = |s: &mut StreamingIndex, w: u32, t: u32| {
                s.record_response(Response {
                    worker: WorkerId(w),
                    task: TaskId(t),
                    label: Label(0),
                })
                .unwrap();
            };
            ingest(&mut stream, 0, 0);
            assert_eq!(stream.epoch(), 1);
            assert_eq!(stream.dirty_epoch(WorkerId(0)), 1);
            assert_eq!(stream.dirty_epoch(WorkerId(1)), 0);

            ingest(&mut stream, 1, 0);
            // Worker 1's response co-occurs it with worker 0: both dirty.
            assert_eq!(stream.epoch(), 2);
            assert_eq!(stream.dirty_epoch(WorkerId(0)), 2);
            assert_eq!(stream.dirty_epoch(WorkerId(1)), 2);
            assert_eq!(stream.dirty_epoch(WorkerId(3)), 0);

            ingest(&mut stream, 3, 5);
            // A lone responder dirties only itself.
            assert_eq!(stream.epoch(), 3);
            assert_eq!(stream.dirty_epoch(WorkerId(0)), 2);
            assert_eq!(stream.dirty_epoch(WorkerId(3)), 3);

            let mut dirty = Vec::new();
            stream.dirty_since(0, &mut dirty);
            assert_eq!(dirty, vec![WorkerId(0), WorkerId(1), WorkerId(3)]);
            stream.dirty_since(2, &mut dirty);
            assert_eq!(dirty, vec![WorkerId(3)]);
            stream.dirty_since(3, &mut dirty);
            assert!(dirty.is_empty());
            assert!(stream.is_dirty_since(WorkerId(1), 1));
            assert!(!stream.is_dirty_since(WorkerId(1), 2));
        }
    }

    /// A response from `w` dirties co-occurring anchors even when they
    /// never touched the arriving task — their pairing reads peer–peer
    /// overlaps involving `w`, so a narrower responders-only dirty set
    /// would be unsound.
    #[test]
    fn cooccurring_nonresponders_are_dirtied() {
        let mut stream = StreamingIndex::new_with(3, 10, 2, PairBackend::Sparse);
        let ingest = |s: &mut StreamingIndex, w: u32, t: u32| {
            s.record_response(Response {
                worker: WorkerId(w),
                task: TaskId(t),
                label: Label(0),
            })
            .unwrap();
        };
        // Workers 0 and 1 co-occur on task 0.
        ingest(&mut stream, 0, 0);
        ingest(&mut stream, 1, 0);
        let mark = stream.epoch();
        // Worker 1 then answers task 7, which worker 0 never touched:
        // worker 0 must still be dirtied (its pair with 1 moved).
        ingest(&mut stream, 1, 7);
        assert!(stream.is_dirty_since(WorkerId(0), mark));
        assert!(!stream.is_dirty_since(WorkerId(2), mark));
    }

    /// A matrix seed is one bulk ingest: epoch 1, everyone dirty at
    /// it, and the mirror adjacency answers `co_occurring_into` with
    /// the same positive-overlap peers the pair table holds.
    #[test]
    fn seeded_substrates_start_fully_dirty_with_adjacency() {
        let data = sample(7, 30, 2, 41);
        let stream = StreamingIndex::from_matrix(&data);
        assert_eq!(stream.epoch(), 1);
        let mut dirty = Vec::new();
        stream.dirty_since(0, &mut dirty);
        assert_eq!(dirty.len(), 7, "every worker dirty after a seed");
        stream.dirty_since(1, &mut dirty);
        assert!(dirty.is_empty());

        let mut co = Vec::new();
        for a in stream.index().workers() {
            co.clear();
            assert!(
                stream.co_occurring_into(a, &mut co),
                "dense-backed streaming substrates must enumerate neighbours"
            );
            let expect: Vec<WorkerId> = stream
                .index()
                .workers()
                .filter(|&b| b != a && stream.pair(a, b).common_tasks > 0)
                .collect();
            assert_eq!(co, expect, "anchor {a:?}");
        }
    }

    /// Rejected responses leave the views untouched.
    #[test]
    fn rejected_ingest_is_a_no_op() {
        let data = sample(4, 20, 2, 77);
        let mut stream = StreamingIndex::from_matrix(&data);
        let some = data.iter().next().unwrap();
        assert!(stream.record_response(some).is_err());
        assert_eq!(stream.n_responses(), data.n_responses());
        assert_eq!(stream.epoch(), 1, "rejected ingest must not tick the epoch");
        let batch = OverlapIndex::from_matrix(&data);
        for anchor in batch.workers() {
            let fresh = batch.anchored(anchor);
            for a in batch.workers() {
                for b in batch.workers() {
                    assert_eq!(
                        stream.view(anchor).triple_common(a, b),
                        fresh.triple_common(a, b)
                    );
                }
            }
        }
    }
}
