//! The [`OverlapIndex`] — the one-pass sufficient-statistics substrate
//! behind fleet-wide assessment.
//!
//! The estimators' hot path consumes three families of statistics:
//!
//! 1. pairwise co-occurrence and agreement counts `(c_ij, a_ij)`,
//! 2. triple overlap counts `c_ijk`,
//! 3. joint label views for the k-ary counts tensor.
//!
//! The historical code recomputed each by a merge scan over per-worker
//! response lists at every use, which turns `evaluate_all` on `m`
//! workers into an `O(m³·n̄)`–`O(m⁴·n̄)` fan-out of redundant scans.
//! The index is built in **one pass over the response matrix** and
//! packs:
//!
//! * a segmented task → `(worker, label)` adjacency,
//! * a segmented worker → `(task, label)` adjacency,
//! * the packed upper-triangular pair table (a [`PairCache`]),
//!   harvested **per task** — each task's responder list contributes
//!   its pairs directly, so the table costs `O(Σ_t r_t²)` once instead
//!   of `O(m²)` merge scans.
//!
//! Triple statistics cannot be tabulated up front (`O(m³)` space), so
//! the index answers them two ways: merge scans over its adjacency
//! rows for one-off queries, and — the workhorse of Algorithm A2's
//! Lemma 4 covariance — an [`AnchoredOverlap`] view that fixes one
//! worker and answers `c_{anchor,a,b}` by bitset intersection over the
//! anchor's task set, turning the `O(l²)` triple scans of one worker
//! evaluation into word-parallel popcounts.
//!
//! # Peer-scoped anchored views
//!
//! An evaluation only ever queries its anchored view about the ≤ 2l
//! peers the pairing selected, so [`OverlapSource::anchored_for`]
//! scopes the view to a declared peer set: a `PeerMask` remaps each
//! peer to a dense mask row, the build stamps the anchor's slots into
//! an epoch-invalidated task→slot map and walks each peer's task row
//! once (`O(l_anchor + Σ_{p ∈ peers} l_p)`), and the matrix holds
//! `peers · ⌈l_anchor/64⌉` words — memory tracks the
//! pairing degree, never the population. Near-population scopes
//! (> m/2 peers, the paper-default uncapped pairing) are upgraded to
//! the identity map and the legacy `O(Σ_{t ∈ tasks(anchor)} r_t)`
//! responder fill, which is cheaper there; both fills produce the same
//! bits, so the choice is invisible to every query. The evaluate-all
//! hot path additionally reuses one [`AnchoredScratch`] per thread
//! ([`OverlapIndex::anchored_for_in`]), so consecutive view builds
//! allocate nothing. Matrices are always pre-sized to the anchor's
//! exact degree — the mask-word doubling re-layout only ever runs on
//! the streaming ingest path.
//!
//! # Batched Gram kernels
//!
//! The covariance assemblies do not query anchored views pair by pair:
//! they ask for the whole peers×peers table up front through
//! [`AnchoredOverlap::gram_into`] (and the k-ary `n₅` table through
//! [`AnchoredOverlap::pair_gram_into`]), computed in one
//! register-blocked pass over the mask words — `O(T²·n̄/64)` repeated
//! per-pair popcount work per anchor becomes one `O(l²·n̄/64)` blocked
//! pass plus `O(T²)` table reads. See [`crate::gram`] for the kernel
//! and the cost model.
//!
//! # Streaming appends and the amortization invariant
//!
//! The index is also the **streaming** substrate: one long-lived
//! instance absorbs responses via [`OverlapIndex::record_response`]
//! and stays observation-equivalent to `OverlapIndex::from_matrix` on
//! the accumulated data (the differential property tests in
//! `crates/data/tests/proptests.rs` enforce exactly this, for every
//! ingest order).
//!
//! To make appends cheap, each adjacency row is an independently
//! growable **segment** (a `Vec` with geometric capacity doubling)
//! rather than a slice of one packed CSR arena:
//!
//! * every row stays contiguous, so the merge scans and bitset builds
//!   read the exact same task-sorted / worker-sorted slices as before;
//! * appending response `(w, t)` is a sorted insert into two rows —
//!   `O(log r + r)` in the row lengths, amortized over the doubling —
//!   plus an `O(r_t)` pair-table harvest against the task's current
//!   responders; **no append ever triggers a whole-index rebuild**.
//!
//! The invariant: after any interleaving of builds and appends, row
//! `w` of the worker adjacency is exactly the task-sorted response
//! list of `w` (ditto tasks), and the pair table equals the one-pass
//! batch harvest of the accumulated data. Batch construction keeps
//! its one-pass cost; the only price of streamability is the per-row
//! capacity slack (bounded by 2× the row length).
//!
//! [`OverlapSource`] abstracts over the three providers (naive matrix
//! scans, matrix + streaming [`PairCache`], full index) so the
//! estimators are written once and the naive path stays available as
//! the correctness reference for the equivalence tests and benchmarks.
//! For streaming evaluation with maintained anchored views, see
//! [`crate::StreamingIndex`].

use crate::overlap::triple_scan;
use crate::{
    Label, PairCache, PairMap, PairStats, PeerGram, PeerGramScratch, Response, ResponseMatrix,
    TaskId, TriplePairGram, TripleStats, WorkerId,
};

/// A provider of pairwise and triple overlap statistics over one
/// response data set.
///
/// Implemented by [`ResponseMatrix`] (merge scans — the naive
/// reference), [`CachedOverlap`] (O(1) pairs from a streaming
/// [`PairCache`], scans for triples) and [`OverlapIndex`] (O(1) pairs,
/// CSR scans and anchored bitset popcounts for triples). All three
/// return *identical* counts — only the cost differs — which is what
/// lets `evaluate_all` switch substrates without changing a single
/// output bit.
pub trait OverlapSource {
    /// The anchored triple-overlap view; see [`OverlapSource::anchored`].
    type Anchored<'a>: AnchoredOverlap
    where
        Self: 'a;

    /// Number of workers covered (including silent ones).
    fn n_workers(&self) -> usize;

    /// Task arity (k) of the underlying data.
    fn arity(&self) -> u16;

    /// Pairwise co-occurrence and agreement counts for `(a, b)`.
    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats;

    /// Triple overlap count `c_abc`.
    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats;

    /// A view answering many triple queries that all share the fixed
    /// worker `anchor` — the access pattern of the Lemma 4 covariance
    /// assembly (`c_{i,a,b}` for one evaluated worker `i` and many peer
    /// pairs). Covers the whole population: any worker may be queried.
    fn anchored(&self, anchor: WorkerId) -> Self::Anchored<'_>;

    /// [`OverlapSource::anchored`] scoped to a declared peer set: the
    /// view only promises to answer queries about workers in `peers`
    /// (order and duplicates are irrelevant). The m-worker estimators
    /// only ever query the ≤ 2l peers their pairing selected, so a
    /// scoped view lets bitset implementations allocate `O(peers)`
    /// mask rows instead of `O(n_workers)` — the fleet-scale lever.
    ///
    /// Querying a worker outside `peers` is a contract violation:
    /// scan-based implementations still answer (they ignore the
    /// scope), but bitset implementations panic. The default simply
    /// forwards to the population-wide [`OverlapSource::anchored`].
    fn anchored_for(&self, anchor: WorkerId, peers: &[WorkerId]) -> Self::Anchored<'_> {
        let _ = peers;
        self.anchored(anchor)
    }

    /// If the substrate tracks co-occurrence explicitly, appends the
    /// workers sharing at least one task with `worker` to `out`
    /// (ascending by id, `worker` itself excluded) and returns `true`;
    /// otherwise returns `false` and leaves `out` untouched — callers
    /// must then scan the whole population. This is the pairing
    /// candidate scan's fast path: a sparse pair table answers it in
    /// `O(d_w)` instead of `O(m)` lookups, and because workers absent
    /// from the list have zero overlap by construction, consumers that
    /// filter on a minimum overlap see the **same candidate set in the
    /// same order** either way.
    fn co_occurring_into(&self, worker: WorkerId, out: &mut Vec<WorkerId>) -> bool {
        let _ = (worker, out);
        false
    }
}

/// Triple-overlap queries sharing one fixed anchor worker.
pub trait AnchoredOverlap {
    /// `c_{anchor,a,b}`: tasks attempted by the anchor and both peers.
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize;

    /// Tasks attempted by the anchor and *every* worker in `others`
    /// (the `n₅` count of the k-ary cross-triple covariance).
    fn common_among(&self, others: &[WorkerId]) -> usize;

    /// Fills `gram` with the full peers×peers symmetric matrix of
    /// triple-overlap counts for `peers` (order and duplicates are
    /// irrelevant; the gram sorts and deduplicates), with the per-peer
    /// pair overlaps `c_{anchor,a}` on the diagonal. After this call,
    /// [`PeerGram::get`] answers every
    /// [`AnchoredOverlap::triple_common`] query about in-set peers by
    /// table read — the batched entry point of the Lemma 4 covariance
    /// assembly (see [`crate::gram`]).
    ///
    /// The default computes each entry by a per-pair
    /// [`AnchoredOverlap::triple_common`] query — the pre-gram
    /// reference path; bitset views override it with the one-pass
    /// register-blocked kernel. Counts are identical either way.
    fn gram_into(&self, peers: &[WorkerId], gram: &mut PeerGram, scratch: &mut PeerGramScratch) {
        let _ = scratch;
        gram.reset(peers);
        for i in 0..gram.dim() {
            let a = gram.peer(i);
            for j in i..gram.dim() {
                let c = self.triple_common(a, gram.peer(j));
                gram.set_symmetric(i, j, c as u32);
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`AnchoredOverlap::gram_into`].
    fn gram(&self, peers: &[WorkerId]) -> PeerGram {
        let mut gram = PeerGram::default();
        self.gram_into(peers, &mut gram, &mut PeerGramScratch::default());
        gram
    }

    /// Fills `gram` with the T×T table of k-ary cross-triple `n₅`
    /// counts for the given peer pairs:
    /// `gram.get(t1, t2) = common_among(&[a₁, b₁, a₂, b₂])`, the
    /// diagonal holding each pair's own `c_{anchor,a,b}`.
    ///
    /// The default issues one [`AnchoredOverlap::common_among`] query
    /// per entry — the pre-gram reference path; bitset views override
    /// it by AND-combining each pair's mask rows once and running the
    /// blocked Gram kernel over the combined rows. Counts are
    /// identical either way.
    fn pair_gram_into(
        &self,
        pairs: &[(WorkerId, WorkerId)],
        gram: &mut TriplePairGram,
        scratch: &mut PeerGramScratch,
    ) {
        let _ = scratch;
        gram.reset(pairs.len());
        for (t1, &(a1, b1)) in pairs.iter().enumerate() {
            for (t2, &(a2, b2)) in pairs.iter().enumerate().skip(t1) {
                let c = if t1 == t2 {
                    self.common_among(&[a1, b1])
                } else {
                    self.common_among(&[a1, b1, a2, b2])
                };
                gram.set_symmetric(t1, t2, c as u32);
            }
        }
    }
}

/// Anchored view that falls back to per-query scans of a matrix — the
/// naive reference implementation.
#[derive(Debug, Clone, Copy)]
pub struct ScanAnchored<'a> {
    data: &'a ResponseMatrix,
    anchor: WorkerId,
}

impl AnchoredOverlap for ScanAnchored<'_> {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        crate::triple_overlap(self.data, self.anchor, a, b).common_tasks
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        self.data
            .worker_responses(self.anchor)
            .iter()
            .filter(|&&(task, _)| {
                others
                    .iter()
                    .all(|&w| self.data.response(w, TaskId(task)).is_some())
            })
            .count()
    }
}

impl OverlapSource for ResponseMatrix {
    type Anchored<'a> = ScanAnchored<'a>;

    fn n_workers(&self) -> usize {
        ResponseMatrix::n_workers(self)
    }

    fn arity(&self) -> u16 {
        ResponseMatrix::arity(self)
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        crate::pair_stats(self, a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        crate::triple_overlap(self, a, b, c)
    }

    fn anchored(&self, anchor: WorkerId) -> ScanAnchored<'_> {
        ScanAnchored { data: self, anchor }
    }
}

/// A matrix paired with an incrementally maintained [`PairCache`]:
/// O(1) pair lookups, merge scans for triples. The substrate of the
/// streaming evaluator, whose cache is updated response by response
/// (rebuilding a full [`OverlapIndex`] per response would defeat it).
#[derive(Debug, Clone, Copy)]
pub struct CachedOverlap<'a> {
    /// The underlying responses.
    pub data: &'a ResponseMatrix,
    /// The maintained pair table.
    pub cache: &'a PairCache,
}

impl OverlapSource for CachedOverlap<'_> {
    type Anchored<'b>
        = ScanAnchored<'b>
    where
        Self: 'b;

    fn n_workers(&self) -> usize {
        self.data.n_workers()
    }

    fn arity(&self) -> u16 {
        self.data.arity()
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        self.cache.get(a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        crate::triple_overlap(self.data, a, b, c)
    }

    fn anchored(&self, anchor: WorkerId) -> ScanAnchored<'_> {
        ScanAnchored {
            data: self.data,
            anchor,
        }
    }
}

/// Which pair-table representation an [`OverlapIndex`] holds.
///
/// The dense backend ([`PairCache`]) is the default: `m(m−1)/2` packed
/// entries, O(1) lookups, no per-entry overhead — right for paper-scale
/// crowds and for well-mixed data where most pairs co-occur anyway.
/// The sparse backend ([`PairMap`]) stores only co-occurring pairs and
/// can enumerate a worker's peers directly, so pair-state memory and
/// the pairing candidate scan track the co-occurrence degree instead
/// of the fleet size — the backend the sharded pipeline
/// ([`OverlapIndex::from_matrix_scoped`]) runs on. Both return
/// identical counts for every pair; only cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairBackend {
    /// Packed upper-triangular `O(m²)` table ([`PairCache`]).
    #[default]
    Dense,
    /// Per-worker sorted peer adjacencies, co-occurring pairs only
    /// ([`PairMap`]).
    Sparse,
}

/// The pair table of an [`OverlapIndex`]: dense or sparse (see
/// [`PairBackend`]), with one maintenance and lookup API so the index
/// code is written once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairTable {
    /// Dense packed table.
    Dense(PairCache),
    /// Sparse co-occurring-pairs map.
    Sparse(PairMap),
}

impl PairTable {
    fn empty(m: usize, backend: PairBackend) -> Self {
        match backend {
            PairBackend::Dense => Self::Dense(PairCache::empty(m)),
            PairBackend::Sparse => Self::Sparse(PairMap::empty(m)),
        }
    }

    /// The stored statistics for a pair (zero when it never
    /// co-occurred).
    pub fn get(&self, a: WorkerId, b: WorkerId) -> PairStats {
        match self {
            Self::Dense(t) => t.get(a, b),
            Self::Sparse(t) => t.get(a, b),
        }
    }

    /// Bytes resident in the pair state — the quantity the sharding
    /// benchmark compares across backends.
    pub fn table_bytes(&self) -> usize {
        match self {
            Self::Dense(t) => t.table_bytes(),
            Self::Sparse(t) => t.table_bytes(),
        }
    }

    fn harvest_task(&mut self, responders: &[(u32, Label)]) {
        match self {
            Self::Dense(t) => t.harvest_task(responders),
            Self::Sparse(t) => t.harvest_task(responders),
        }
    }

    fn record_response(&mut self, worker: WorkerId, label: Label, others: &[(u32, Label)]) {
        match self {
            Self::Dense(t) => t.record_response(worker, label, others),
            Self::Sparse(t) => t.record_response(worker, label, others),
        }
    }
}

/// The one-pass overlap substrate; see the [module docs](self).
///
/// # Example
///
/// ```
/// use crowd_data::{Label, OverlapIndex, OverlapSource, ResponseMatrixBuilder, TaskId, WorkerId};
///
/// let mut b = ResponseMatrixBuilder::new(3, 4, 2);
/// for t in 0..4u32 {
///     b.push(WorkerId(0), TaskId(t), Label(0))?;
///     b.push(WorkerId(1), TaskId(t), Label((t % 2) as u16))?;
/// }
/// b.push(WorkerId(2), TaskId(1), Label(1))?;
/// let data = b.build()?;
///
/// let index = OverlapIndex::from_matrix(&data);
/// assert_eq!(index.pair(WorkerId(0), WorkerId(1)).common_tasks, 4);
/// assert_eq!(index.pair(WorkerId(0), WorkerId(1)).agreements, 2);
/// assert_eq!(index.triple(WorkerId(0), WorkerId(1), WorkerId(2)).common_tasks, 1);
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapIndex {
    n_workers: usize,
    n_tasks: usize,
    n_responses: usize,
    arity: u16,
    /// Per-worker `(task, label)` rows, task-sorted. Each row is an
    /// independently growable segment (see the module docs).
    worker_rows: Vec<Vec<(u32, Label)>>,
    /// Per-task `(worker, label)` rows, worker-sorted.
    task_rows: Vec<Vec<(u32, Label)>>,
    /// Pair agreement/co-occurrence table (dense or sparse; see
    /// [`PairBackend`]).
    pairs: PairTable,
}

impl OverlapIndex {
    /// An empty index of the given shape, ready for
    /// [`OverlapIndex::record_response`]-driven streaming fills.
    ///
    /// # Panics
    /// Panics if `arity < 2` (mirroring
    /// [`crate::ResponseMatrixBuilder::new`]).
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16) -> Self {
        Self::new_with(n_workers, n_tasks, arity, PairBackend::Dense)
    }

    /// [`OverlapIndex::new`] with an explicit pair-table backend; see
    /// [`PairBackend`] for the trade-off.
    ///
    /// # Panics
    /// Panics if `arity < 2`.
    pub fn new_with(n_workers: usize, n_tasks: usize, arity: u16, backend: PairBackend) -> Self {
        assert!(
            arity >= 2,
            "tasks must have at least two possible responses"
        );
        Self {
            n_workers,
            n_tasks,
            n_responses: 0,
            arity,
            worker_rows: vec![Vec::new(); n_workers],
            task_rows: vec![Vec::new(); n_tasks],
            pairs: PairTable::empty(n_workers, backend),
        }
    }

    /// Builds the index in one pass over the matrix: the task rows and
    /// the pair table are filled from each task's responder list as it
    /// is visited; the worker rows from each worker's row.
    ///
    /// The adjacencies are *owned copies* (≈ 2·nnz entries) rather than
    /// borrows of the matrix: the index is self-contained, so it can
    /// outlive the matrix, be shipped to worker shards on its own, and
    /// keep its rows contiguous for the merge scans. Callers that
    /// cannot afford the copy can stay on [`CachedOverlap`], which
    /// borrows the matrix and only materializes the pair table.
    pub fn from_matrix(data: &ResponseMatrix) -> Self {
        Self::from_matrix_with(data, PairBackend::Dense)
    }

    /// [`OverlapIndex::from_matrix`] with an explicit pair-table
    /// backend (the sparse backend is the fleet-scale opt-in; see
    /// [`PairBackend`]). Every query answers identically across
    /// backends.
    pub fn from_matrix_with(data: &ResponseMatrix, backend: PairBackend) -> Self {
        let m = data.n_workers();
        let n = data.n_tasks();
        let nnz = data.n_responses();
        // Pair-table counts are packed into u32 (8 bytes per entry
        // matters at fleet scale); make the resulting capacity limit
        // explicit instead of silently wrapping.
        assert!(
            nnz <= u32::MAX as usize,
            "OverlapIndex supports at most {} responses, got {nnz}; \
             shard the matrix before indexing",
            u32::MAX
        );

        let mut pairs = PairTable::empty(m, backend);
        let mut task_rows = Vec::with_capacity(n);
        for task in data.tasks() {
            let responders = data.task_responses(task);
            pairs.harvest_task(responders);
            task_rows.push(responders.to_vec());
        }

        let mut worker_rows = Vec::with_capacity(m);
        for worker in data.workers() {
            worker_rows.push(data.worker_responses(worker).to_vec());
        }

        Self {
            n_workers: m,
            n_tasks: n,
            n_responses: nnz,
            arity: data.arity(),
            worker_rows,
            task_rows,
            pairs,
        }
    }

    /// Builds a **scoped** index holding only the rows of the workers
    /// in `scope` (ids outside `0..n_workers` are ignored; order and
    /// duplicates are irrelevant) — the shard-process substrate. The
    /// id spaces stay *global*: `n_workers`/`n_tasks` match the full
    /// data, out-of-scope worker rows are empty, task rows keep only
    /// in-scope responders, and the pair table is harvested from those
    /// filtered rows, so every statistic **among scope members** is
    /// exactly what the full index would report while memory tracks
    /// the scope, not the fleet. Defaults to the sparse pair backend:
    /// a scoped dense table would still be `O(m²)`, defeating the
    /// point.
    pub fn from_matrix_scoped(data: &ResponseMatrix, scope: &[WorkerId]) -> Self {
        let m = data.n_workers();
        let n = data.n_tasks();
        let mut member = vec![false; m];
        for w in scope {
            if w.index() < m {
                member[w.index()] = true;
            }
        }

        let mut pairs = PairTable::empty(m, PairBackend::Sparse);
        let mut task_rows = Vec::with_capacity(n);
        let mut n_responses = 0usize;
        for task in data.tasks() {
            let responders: Vec<(u32, Label)> = data
                .task_responses(task)
                .iter()
                .copied()
                .filter(|&(w, _)| member[w as usize])
                .collect();
            pairs.harvest_task(&responders);
            n_responses += responders.len();
            task_rows.push(responders);
        }

        let mut worker_rows = vec![Vec::new(); m];
        for (w, in_scope) in member.iter().enumerate() {
            if *in_scope {
                worker_rows[w] = data.worker_responses(WorkerId(w as u32)).to_vec();
            }
        }

        Self {
            n_workers: m,
            n_tasks: n,
            n_responses,
            arity: data.arity(),
            worker_rows,
            task_rows,
            pairs,
        }
    }

    /// Appends one response, keeping every view of the index exactly
    /// equivalent to a fresh [`OverlapIndex::from_matrix`] build on the
    /// accumulated data: sorted insert into the worker and task rows
    /// (`O(log r + r)`, amortized over the rows' geometric growth) and
    /// an `O(r_t)` pair-table update against the task's current
    /// responders. Rejects out-of-range ids, out-of-arity labels and
    /// duplicate `(worker, task)` responses via [`crate::DataError`].
    pub fn record_response(&mut self, response: Response) -> crate::Result<()> {
        let Response {
            worker,
            task,
            label,
        } = response;
        if worker.index() >= self.n_workers {
            return Err(crate::DataError::UnknownId {
                kind: "worker",
                id: worker.0,
            });
        }
        if task.index() >= self.n_tasks {
            return Err(crate::DataError::UnknownId {
                kind: "task",
                id: task.0,
            });
        }
        if !label.valid_for_arity(self.arity) {
            return Err(crate::DataError::LabelOutOfRange {
                label: label.0,
                arity: self.arity,
            });
        }
        assert!(
            self.n_responses < u32::MAX as usize,
            "OverlapIndex supports at most {} responses; \
             shard the stream before indexing",
            u32::MAX
        );
        // Both duplicate checks run before any mutation, so a rejected
        // response leaves the index untouched (the second is
        // unreachable while the worker/task rows mirror each other,
        // but must not be able to half-apply the append if that
        // invariant is ever broken).
        let w_pos =
            match self.worker_rows[worker.index()].binary_search_by_key(&task.0, |&(t, _)| t) {
                Ok(_) => return Err(crate::DataError::DuplicateResponse { worker, task }),
                Err(pos) => pos,
            };
        let t_pos = match self.task_rows[task.index()].binary_search_by_key(&worker.0, |&(w, _)| w)
        {
            Ok(_) => return Err(crate::DataError::DuplicateResponse { worker, task }),
            Err(pos) => pos,
        };
        // The pair table wants the task's responders *without* the new
        // response, so harvest before the task-row insert.
        self.pairs
            .record_response(worker, label, &self.task_rows[task.index()]);
        self.worker_rows[worker.index()].insert(w_pos, (task.0, label));
        self.task_rows[task.index()].insert(t_pos, (worker.0, label));
        self.n_responses += 1;
        Ok(())
    }

    /// Number of workers covered.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of tasks covered.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Total responses indexed.
    #[inline]
    pub fn n_responses(&self) -> usize {
        self.n_responses
    }

    /// Task arity (k).
    #[inline]
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// The pair table (dense or sparse; see [`PairBackend`]).
    #[inline]
    pub fn pairs(&self) -> &PairTable {
        &self.pairs
    }

    /// Bytes resident in the pair table; see
    /// [`PairTable::table_bytes`].
    pub fn pair_table_bytes(&self) -> usize {
        self.pairs.table_bytes()
    }

    /// One worker's `(task, label)` row, task-sorted.
    #[inline]
    pub fn worker_responses(&self, worker: WorkerId) -> &[(u32, Label)] {
        &self.worker_rows[worker.index()]
    }

    /// One task's `(worker, label)` row, worker-sorted.
    #[inline]
    pub fn task_responses(&self, task: TaskId) -> &[(u32, Label)] {
        &self.task_rows[task.index()]
    }

    /// All worker ids.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.n_workers as u32).map(WorkerId)
    }

    /// All task ids.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n_tasks as u32).map(TaskId)
    }

    /// The joint (possibly absent) labels of three workers on every
    /// task at least one of them attempted, by a three-way **union**
    /// merge of the CSR rows — `O(|w₁| + |w₂| + |w₃|)`, versus the
    /// matrix path's full scan over all `n` tasks with a binary search
    /// per cell. Ordering and contents match
    /// [`crate::triple_joint_labels_optional`] exactly.
    pub fn triple_joint_labels_optional(
        &self,
        a: WorkerId,
        b: WorkerId,
        c: WorkerId,
    ) -> Vec<(Option<Label>, Option<Label>, Option<Label>)> {
        let mut out = Vec::new();
        self.triple_joint_for_each(a, b, c, |row| out.push(row));
        out
    }

    /// Visitor form of [`OverlapIndex::triple_joint_labels_optional`]:
    /// the same three-way union merge, but each joint row is handed to
    /// `visit` instead of collected — the allocation-free path the
    /// reusable k-ary counts-tensor fill runs on
    /// ([`crate::CountsTensor::fill_from_index`]).
    pub fn triple_joint_for_each(
        &self,
        a: WorkerId,
        b: WorkerId,
        c: WorkerId,
        mut visit: impl FnMut((Option<Label>, Option<Label>, Option<Label>)),
    ) {
        let (la, lb, lc) = (
            self.worker_responses(a),
            self.worker_responses(b),
            self.worker_responses(c),
        );
        let (mut i, mut j, mut k) = (0, 0, 0);
        loop {
            let ta = la.get(i).map(|e| e.0);
            let tb = lb.get(j).map(|e| e.0);
            let tc = lc.get(k).map(|e| e.0);
            let Some(t) = [ta, tb, tc].into_iter().flatten().min() else {
                break;
            };
            let mut row = (None, None, None);
            if ta == Some(t) {
                row.0 = Some(la[i].1);
                i += 1;
            }
            if tb == Some(t) {
                row.1 = Some(lb[j].1);
                j += 1;
            }
            if tc == Some(t) {
                row.2 = Some(lc[k].1);
                k += 1;
            }
            visit(row);
        }
    }
}

impl OverlapSource for OverlapIndex {
    type Anchored<'a> = BitsetAnchored<'a>;

    fn n_workers(&self) -> usize {
        self.n_workers
    }

    fn arity(&self) -> u16 {
        self.arity
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        self.pairs.get(a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        triple_scan(
            self.worker_responses(a),
            self.worker_responses(b),
            self.worker_responses(c),
        )
    }

    fn anchored(&self, anchor: WorkerId) -> BitsetAnchored<'_> {
        BitsetAnchored::build(self, anchor)
    }

    fn anchored_for(&self, anchor: WorkerId, peers: &[WorkerId]) -> BitsetAnchored<'_> {
        BitsetAnchored::build_scoped(self, anchor, peers)
    }

    fn co_occurring_into(&self, worker: WorkerId, out: &mut Vec<WorkerId>) -> bool {
        match &self.pairs {
            // The dense table cannot enumerate a worker's peers without
            // an O(m) sweep — no better than the caller's own scan.
            PairTable::Dense(_) => false,
            PairTable::Sparse(map) => {
                out.extend(map.co_occurring(worker));
                true
            }
        }
    }
}

impl OverlapIndex {
    /// [`OverlapSource::anchored_for`] building into a caller-held
    /// [`AnchoredScratch`]: the returned view borrows the scratch's
    /// mask words, so an evaluate-all loop that keeps one scratch per
    /// thread re-layouts nothing and allocates nothing once the words
    /// vector has grown to the largest view it has served.
    pub fn anchored_for_in<'s>(
        &self,
        anchor: WorkerId,
        peers: &[WorkerId],
        scratch: &'s mut AnchoredScratch,
    ) -> BitsetAnchored<'s> {
        BitsetAnchored::build_in(self, anchor, peers, scratch)
    }
}

/// The peer → mask-row remap layer under [`MaskMatrix`].
///
/// Anchored views only ever answer queries about the peers their
/// caller declared (the ≤ 2l workers a pairing selected), so the bit
/// matrix does not need a row per *worker* — only a row per *peer*.
/// `PeerMask` is that remap: a dense, sorted peer → row map, with an
/// identity fast path for population-wide views so the full-view
/// adapter pays no lookup cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PeerMask {
    /// Identity over the whole population: worker `w` ↔ row `w`.
    Population(usize),
    /// Sorted, deduplicated peer ids; `peers[r]` ↔ row `r`. Lookups
    /// are a binary search over the (small) peer list.
    Peers(Vec<u32>),
}

impl PeerMask {
    /// The identity map over `n_workers` rows.
    pub(crate) fn population(n_workers: usize) -> Self {
        Self::Population(n_workers)
    }

    /// A scoped map for the given peers (sorted and deduplicated; the
    /// caller's order and duplicates are irrelevant to the view).
    pub(crate) fn scoped(peers: &[WorkerId]) -> Self {
        let mut ids: Vec<u32> = peers.iter().map(|w| w.0).collect();
        ids.sort_unstable();
        ids.dedup();
        Self::Peers(ids)
    }

    /// [`PeerMask::scoped`], upgraded to the identity map when the
    /// peer set covers more than half the population. Near-population
    /// scopes gain nothing from remapping — the per-peer merge build
    /// costs more than the legacy per-task responder fill and the
    /// memory saving is < 2× — so the paper-default (uncapped) pairing
    /// keeps its original build cost to the cycle, while genuinely
    /// small scopes (the fleet-capped case) get `O(peers)` rows.
    pub(crate) fn scoped_for(peers: &[WorkerId], n_workers: usize) -> Self {
        let mask = Self::scoped(peers);
        if mask.rows() * 2 > n_workers {
            Self::Population(n_workers)
        } else {
            mask
        }
    }

    /// Number of mask rows this map addresses.
    pub(crate) fn rows(&self) -> usize {
        match self {
            Self::Population(m) => *m,
            Self::Peers(ids) => ids.len(),
        }
    }

    /// The mask row of `worker`, if it is in scope.
    #[inline]
    pub(crate) fn row(&self, worker: u32) -> Option<usize> {
        match self {
            Self::Population(m) => ((worker as usize) < *m).then_some(worker as usize),
            Self::Peers(ids) => ids.binary_search(&worker).ok(),
        }
    }

    /// The mask row of `worker`; panics (contract violation) when the
    /// worker is outside the declared peer scope.
    #[inline]
    pub(crate) fn row_of(&self, worker: WorkerId) -> usize {
        self.row(worker.0).unwrap_or_else(|| {
            panic!("worker {worker:?} is outside this anchored view's peer scope")
        })
    }

    /// The worker occupying mask row `row`.
    #[inline]
    pub(crate) fn worker_of(&self, row: usize) -> u32 {
        match self {
            Self::Population(_) => row as u32,
            Self::Peers(ids) => ids[row],
        }
    }

    /// Whether every worker addressable through `other` is also
    /// addressable through `self` — the lazy re-anchoring test of the
    /// maintained streaming views.
    pub(crate) fn covers(&self, other: &PeerMask) -> bool {
        match (self, other) {
            (Self::Population(m), Self::Population(n)) => m >= n,
            (Self::Population(m), Self::Peers(ids)) => {
                ids.last().is_none_or(|&max| (max as usize) < *m)
            }
            (Self::Peers(_), Self::Population(n)) => *n == 0,
            (Self::Peers(have), Self::Peers(want)) => {
                // Both sorted: one linear sweep.
                let mut it = have.iter();
                want.iter().all(|w| it.any(|h| h == w))
            }
        }
    }
}

/// The `rows × words` anchored bit matrix and its popcount kernels,
/// shared by the batch [`BitsetAnchored`] view and the maintained
/// [`crate::AnchoredView`]: one implementation of the queries
/// underpins the streamed-vs-batch bit-identity guarantee, so the two
/// views cannot drift apart.
///
/// The anchor's attempted tasks occupy bit slots `0..anchor_tasks`;
/// row `r` records which of those tasks the worker a [`PeerMask`]
/// assigns to `r` attempted. Every query is slot-permutation-invariant
/// (popcounts), which is what lets the streaming view assign slots in
/// ingest order while the batch view assigns them in task order.
/// Row-block size of the blocked Gram kernel
/// ([`MaskMatrix::gram_rows_into`]): pairs are visited 4×4 rows at a
/// time so a block of rows is re-intersected while still L1-resident
/// (8 rows × ⌈n̄/64⌉ words comfortably fit); widening the block is the
/// first knob to turn once a wider SIMD lane makes the kernel
/// memory-bound.
pub(crate) const GRAM_BLOCK: usize = 4;

/// The AND+popcount inner product of the Gram kernels, with the SIMD
/// lane resolved **once per kernel invocation**: on x86-64 hosts with
/// AVX-512 `VPOPCNTDQ` the counts come from the hardware per-lane
/// popcount routine ([`and_popcount_avx512`]), on AVX2-only hosts
/// from the vectorized nibble-LUT routine ([`and_popcount_avx2`]),
/// everywhere else from the portable word loop. Every lane computes
/// the same integers — the dispatch is invisible to every output
/// bit — and detection is hoisted out of the pair loop so the hot
/// path pays one predictable branch per pair.
#[derive(Clone, Copy)]
pub(crate) struct AndPopcount {
    #[cfg(target_arch = "x86_64")]
    avx512: bool,
    #[cfg(target_arch = "x86_64")]
    avx2: bool,
}

impl AndPopcount {
    /// Resolves the fastest available lane for this host.
    #[inline]
    pub(crate) fn detect() -> Self {
        Self {
            // `avx512f` guards the 512-bit register file and
            // arithmetic, `avx512vpopcntdq` the per-lane popcount the
            // kernel is built around; both ship together on Ice
            // Lake+ / Zen 4+ but are distinct CPUID bits.
            #[cfg(target_arch = "x86_64")]
            avx512: std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
            #[cfg(target_arch = "x86_64")]
            avx2: std::arch::is_x86_feature_detected!("avx2"),
        }
    }

    /// The portable reference lane, kept callable on every host so the
    /// property tests can pin the vector lanes against it.
    #[cfg(test)]
    #[inline]
    pub(crate) fn portable() -> Self {
        Self {
            #[cfg(target_arch = "x86_64")]
            avx512: false,
            #[cfg(target_arch = "x86_64")]
            avx2: false,
        }
    }

    /// `popcount(a & b)` over two equal-length word slices. Masks
    /// under 8 words stay on the inlined scalar loop — a
    /// `#[target_feature]` function cannot be inlined into its
    /// caller, and for a handful of words the call itself would cost
    /// more than it saves.
    #[inline]
    pub(crate) fn count(self, a: &[u64], b: &[u64]) -> u32 {
        #[cfg(target_arch = "x86_64")]
        {
            if self.avx512 && a.len() >= 8 {
                // SAFETY: `detect` verified AVX-512F + VPOPCNTDQ
                // support on this host.
                return unsafe { and_popcount_avx512(a, b) };
            }
            if self.avx2 && a.len() >= 8 {
                if a.len() >= 64 {
                    // Wide masks amortize the Harley–Seal CSA tree: one
                    // shuffle-LUT popcount per 16 vectors instead of
                    // per vector lifts the port-5 bound (see
                    // [`and_popcount_avx2_harley_seal`]).
                    // SAFETY: `detect` verified AVX2 support.
                    return unsafe { and_popcount_avx2_harley_seal(a, b) };
                }
                // SAFETY: `detect` verified AVX2 support on this host.
                return unsafe { and_popcount_avx2(a, b) };
            }
        }
        a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
    }
}

/// Vectorized AND+popcount on the AVX-512 `VPOPCNTDQ` lane: 8 mask
/// words per step — one 512-bit AND, one hardware per-lane popcount
/// (`vpopcntq`), one lane-wise accumulate. No shuffle-LUT dance at
/// all, so the port-5 pressure that bounds the AVX2 nibble kernel on
/// Intel cores disappears; two independent accumulator chains (16
/// words per iteration) keep the popcount unit fed.
///
/// # Safety
/// The caller must ensure the host supports AVX-512F and
/// AVX-512VPOPCNTDQ.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
fn and_popcount_avx512(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 8;
    let mut acc0 = _mm512_setzero_si512();
    let mut acc1 = _mm512_setzero_si512();
    let pairs = chunks / 2;
    for i in 0..pairs {
        // SAFETY: `16 * i + 15 < n` for every `i < pairs`, so all four
        // 64-byte loads are in bounds; `loadu` has no alignment
        // requirement.
        let (v0, v1) = unsafe {
            let p = a.as_ptr().add(16 * i);
            let q = b.as_ptr().add(16 * i);
            (
                _mm512_and_si512(_mm512_loadu_si512(p.cast()), _mm512_loadu_si512(q.cast())),
                _mm512_and_si512(
                    _mm512_loadu_si512(p.add(8).cast()),
                    _mm512_loadu_si512(q.add(8).cast()),
                ),
            )
        };
        acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(v0));
        acc1 = _mm512_add_epi64(acc1, _mm512_popcnt_epi64(v1));
    }
    if chunks % 2 == 1 {
        // SAFETY: the last full 8-word chunk starts at `8 * (chunks - 1)`.
        let v = unsafe {
            let p = a.as_ptr().add(8 * (chunks - 1));
            let q = b.as_ptr().add(8 * (chunks - 1));
            _mm512_and_si512(_mm512_loadu_si512(p.cast()), _mm512_loadu_si512(q.cast()))
        };
        acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(v));
    }
    let mut total = _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)) as u64;
    let mut i = chunks * 8;
    while i < n {
        total += (a[i] & b[i]).count_ones() as u64;
        i += 1;
    }
    total as u32
}

/// Vectorized AND+popcount (Mula's `vpshufb` nibble-LUT algorithm):
/// 4 mask words per step — each 32-byte block is split into nibbles,
/// both halves are table-looked-up in one shuffle each, and
/// `vpsadbw` folds the byte counts into four running u64 lanes. The
/// body is written directly in intrinsics because rustc does not
/// inline ordinary (non-`target_feature`) code into a
/// `#[target_feature]` function, so iterator-based formulations
/// compile to outlined calls instead of vector code.
///
/// # Safety
/// The caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn and_popcount_avx2(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    // Two independent accumulator chains (8 words per iteration) keep
    // the shuffle ports fed instead of serializing on one vpaddq.
    let mut acc0 = zero;
    let mut acc1 = zero;
    let nibble_count = |v| {
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    };
    let pairs = chunks / 2;
    for i in 0..pairs {
        // SAFETY: `8 * i + 7 < n` for every `i < pairs`, so all four
        // 32-byte loads are in bounds; `loadu` has no alignment
        // requirement.
        let (v0, v1) = unsafe {
            let p = a.as_ptr().add(8 * i);
            let q = b.as_ptr().add(8 * i);
            (
                _mm256_and_si256(_mm256_loadu_si256(p.cast()), _mm256_loadu_si256(q.cast())),
                _mm256_and_si256(
                    _mm256_loadu_si256(p.add(4).cast()),
                    _mm256_loadu_si256(q.add(4).cast()),
                ),
            )
        };
        acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(nibble_count(v0), zero));
        acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(nibble_count(v1), zero));
    }
    if chunks % 2 == 1 {
        // SAFETY: the last full 4-word chunk starts at `4 * (chunks - 1)`.
        let v = unsafe {
            let p = a.as_ptr().add(4 * (chunks - 1));
            let q = b.as_ptr().add(4 * (chunks - 1));
            _mm256_and_si256(_mm256_loadu_si256(p.cast()), _mm256_loadu_si256(q.cast()))
        };
        acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(nibble_count(v), zero));
    }
    let mut lanes = [0u64; 4];
    // SAFETY: `lanes` is 32 bytes of writable memory; `storeu` has no
    // alignment requirement.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), _mm256_add_epi64(acc0, acc1)) };
    let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    let mut i = chunks * 4;
    while i < n {
        total += (a[i] & b[i]).count_ones() as u64;
        i += 1;
    }
    total as u32
}

/// Harley–Seal AND+popcount for wide masks on AVX2: 64 words (16
/// 256-bit vectors) per block are compressed through a carry-save
/// adder tree, so the shuffle-LUT popcount runs **once per block** on
/// the `sixteens` output instead of once per vector. The CSA tree is
/// pure AND/OR/XOR — instructions every vector ALU port executes — so
/// the port-5 `vpshufb` bound of the plain nibble kernel
/// ([`and_popcount_avx2`]) lifts on AVX2-only Intel cores, where port
/// 5 is the single shuffle port. Counts are reconstructed exactly as
/// `16·pop(sixteens) + 8·pop(eights) + 4·pop(fours) + 2·pop(twos) +
/// pop(ones)`; the sub-block tail delegates to the nibble kernel, so
/// every length produces the same integers as the portable loop.
///
/// # Safety
/// The caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn and_popcount_avx2_harley_seal(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let blocks = n / 64;
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let nibble_count = |v| {
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    };
    // Carry-save adder: bit-parallel full add of three lanes into a
    // (carry, sum) pair — `h` carries weight 2, `l` weight 1.
    let csa = |x, y, z| {
        let u = _mm256_xor_si256(x, y);
        (
            _mm256_or_si256(_mm256_and_si256(x, y), _mm256_and_si256(u, z)),
            _mm256_xor_si256(u, z),
        )
    };
    let mut ones = zero;
    let mut twos = zero;
    let mut fours = zero;
    let mut eights = zero;
    // u64-lane accumulator of popcounts over the per-block `sixteens`.
    let mut acc = zero;
    for blk in 0..blocks {
        // SAFETY: `64 * blk + 63 < n` for every `blk < blocks`, so all
        // 32-byte loads below are in bounds; `loadu` has no alignment
        // requirement.
        let d = |j: usize| unsafe {
            let p = a.as_ptr().add(64 * blk + 4 * j);
            let q = b.as_ptr().add(64 * blk + 4 * j);
            _mm256_and_si256(_mm256_loadu_si256(p.cast()), _mm256_loadu_si256(q.cast()))
        };
        let (twos_a, o) = csa(ones, d(0), d(1));
        let (twos_b, o) = csa(o, d(2), d(3));
        let (fours_a, t) = csa(twos, twos_a, twos_b);
        let (twos_a, o) = csa(o, d(4), d(5));
        let (twos_b, o) = csa(o, d(6), d(7));
        let (fours_b, t) = csa(t, twos_a, twos_b);
        let (eights_a, f) = csa(fours, fours_a, fours_b);
        let (twos_a, o) = csa(o, d(8), d(9));
        let (twos_b, o) = csa(o, d(10), d(11));
        let (fours_a, t) = csa(t, twos_a, twos_b);
        let (twos_a, o) = csa(o, d(12), d(13));
        let (twos_b, o) = csa(o, d(14), d(15));
        let (fours_b, t) = csa(t, twos_a, twos_b);
        let (eights_b, f) = csa(f, fours_a, fours_b);
        let (sixteens, e) = csa(eights, eights_a, eights_b);
        ones = o;
        twos = t;
        fours = f;
        eights = e;
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(nibble_count(sixteens), zero));
    }
    let hsum = |v| {
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is 32 bytes of writable memory; `storeu` has
        // no alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    };
    let pop = |v| hsum(_mm256_sad_epu8(nibble_count(v), zero));
    let mut total = 16 * hsum(acc) + 8 * pop(eights) + 4 * pop(fours) + 2 * pop(twos) + pop(ones);
    if !n.is_multiple_of(64) {
        // Same target-feature context, so the nibble kernel is a plain
        // (inlinable) call here — no re-dispatch, no `unsafe`.
        total += and_popcount_avx2(&a[64 * blocks..], &b[64 * blocks..]) as u64;
    }
    total as u32
}

#[derive(Debug, Clone)]
pub(crate) struct MaskMatrix {
    n_rows: usize,
    /// Words allocated per row.
    words: usize,
    /// Slots in use (= tasks the anchor attempted).
    anchor_tasks: usize,
    /// Row-major bit matrix.
    masks: Vec<u64>,
}

impl MaskMatrix {
    pub(crate) fn new(n_rows: usize, words: usize) -> Self {
        let words = words.max(1);
        Self {
            n_rows,
            words,
            anchor_tasks: 0,
            masks: vec![0u64; n_rows * words],
        }
    }

    /// Re-shapes the matrix in place for a fresh build — `n_rows`
    /// zeroed rows of `words` words with `slots` slots pre-claimed —
    /// reusing the existing word allocation when it is large enough.
    /// This is the scratch-reuse and pre-sizing entry point: callers
    /// that know the anchor's degree up front (the batch and re-anchor
    /// builds) pass `words = degree.div_ceil(64)` and `slots = degree`,
    /// so no [`MaskMatrix::push_slot`] doubling re-layout ever runs.
    pub(crate) fn reset(&mut self, n_rows: usize, words: usize, slots: usize) {
        let words = words.max(1);
        debug_assert!(slots <= words * 64, "pre-claimed slots exceed capacity");
        self.n_rows = n_rows;
        self.words = words;
        self.anchor_tasks = slots;
        self.masks.clear();
        self.masks.resize(n_rows * words, 0);
    }

    /// Bytes resident in the bit matrix (the per-view memory the
    /// peer-scoped refactor shrinks from `O(n_workers)` to `O(peers)`
    /// rows). Reports the allocation's *capacity*, not its in-use
    /// length — a [`MaskMatrix::reset`] keeps slack for reuse, and
    /// pretending that slack is free would overstate any measured
    /// memory reduction.
    pub(crate) fn mask_bytes(&self) -> usize {
        self.masks.capacity() * std::mem::size_of::<u64>()
    }

    /// Releases the reuse slack so the allocation matches the in-use
    /// rows — for long-lived matrices (the maintained streaming views)
    /// after a downsizing re-anchor; scratch matrices keep their slack
    /// on purpose.
    pub(crate) fn shrink(&mut self) {
        self.masks.shrink_to_fit();
    }

    /// Claims the next slot, doubling the per-row word capacity (one
    /// `O(n_rows · words)` re-layout per doubling, amortized away)
    /// when the slot budget is exhausted.
    pub(crate) fn push_slot(&mut self) -> u32 {
        if self.anchor_tasks == self.words * 64 {
            let new_words = self.words * 2;
            let mut masks = vec![0u64; self.n_rows * new_words];
            for w in 0..self.n_rows {
                masks[w * new_words..w * new_words + self.words]
                    .copy_from_slice(&self.masks[w * self.words..(w + 1) * self.words]);
            }
            self.words = new_words;
            self.masks = masks;
        }
        let slot = self.anchor_tasks as u32;
        self.anchor_tasks += 1;
        slot
    }

    /// Marks `row` as having attempted the anchor task in `slot`.
    #[inline]
    pub(crate) fn set_bit(&mut self, row: usize, slot: u32) {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        self.masks[row * self.words + word] |= 1u64 << bit;
    }

    #[inline]
    fn mask(&self, row: usize) -> &[u64] {
        &self.masks[row * self.words..(row + 1) * self.words]
    }

    /// Mutable view of one row's words — the anchored fill's hot loop
    /// sets many bits per row, so it borrows the row once instead of
    /// paying [`MaskMatrix::set_bit`]'s offset math per bit.
    #[inline]
    pub(crate) fn row_mut(&mut self, row: usize) -> &mut [u64] {
        &mut self.masks[row * self.words..(row + 1) * self.words]
    }

    /// `c_{anchor,a}`: tasks shared by the anchor and the worker of
    /// row `a`.
    pub(crate) fn pair_common(&self, a: usize) -> usize {
        self.mask(a).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `c_{anchor,a,b}` by word-parallel popcount.
    pub(crate) fn triple_common(&self, a: usize, b: usize) -> usize {
        self.mask(a)
            .iter()
            .zip(self.mask(b))
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// Words allocated per row.
    #[inline]
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// Slots in use (= tasks the anchor attempted).
    #[inline]
    pub(crate) fn anchor_slots(&self) -> usize {
        self.anchor_tasks
    }

    /// Whether `row` has the bit for `slot` set.
    #[inline]
    pub(crate) fn bit(&self, row: usize, slot: u32) -> bool {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        self.masks[row * self.words + word] >> bit & 1 == 1
    }

    /// Fills row `row` with the AND of rows `a` and `b` of `src` —
    /// the derived "triple mask" of the k-ary `n₅` kernel. `self` must
    /// have been [`MaskMatrix::reset`] to `src`'s word count.
    pub(crate) fn fill_and_of(&mut self, row: usize, src: &MaskMatrix, a: usize, b: usize) {
        debug_assert_eq!(
            self.words, src.words,
            "combined rows mirror the source layout"
        );
        let (ra, rb) = (src.mask(a), src.mask(b));
        for (w, dst) in self.masks[row * self.words..(row + 1) * self.words]
            .iter_mut()
            .enumerate()
        {
            *dst = ra[w] & rb[w];
        }
    }

    /// The blocked Gram kernel behind [`crate::PeerGram`]: fills `out`
    /// with the `d × d` symmetric AND-popcount matrix of the given
    /// mask rows (`out[i·d + j] = popcount(rows[i] & rows[j])`,
    /// diagonal = per-row popcounts). Row pairs are visited
    /// [`GRAM_BLOCK`] × [`GRAM_BLOCK`] rows at a time, so one block of
    /// mask rows stays L1-resident while it is intersected against
    /// the opposite block — a per-pair [`MaskMatrix::triple_common`]
    /// loop instead re-streams every row once per opposite peer. The
    /// per-pair AND+popcount goes through [`AndPopcount`]: masks of
    /// 1–4 words run monomorphized fully-unrolled loops (the `match`
    /// below), wider masks an inlined scalar zip, and on x86-64 hosts
    /// masks of ≥ 8 words call the runtime-dispatched vectorized
    /// leaves — [`and_popcount_avx512`] where `VPOPCNTDQ` is
    /// available, [`and_popcount_avx2`] otherwise; `portable_simd`
    /// can drop into the same seam once stable. Every lane computes
    /// the same integers, so the dispatch is invisible to every
    /// output bit. Only the upper triangle of blocks is computed;
    /// entries are mirrored on write-back.
    pub(crate) fn gram_rows_into(&self, rows: &[usize], out: &mut Vec<u32>) {
        let d = rows.len();
        out.clear();
        out.resize(d * d, 0);
        // Monomorphize the 1–4-word cases: a fleet-capped anchor's
        // mask is often a word or two, and there the generic path's
        // per-pair slice setup and loop control cost more than the
        // popcounts themselves. `W = 0` keeps the dynamic loop (and
        // the AVX2 lane) for wide masks.
        match self.words {
            1 => self.gram_rows_kernel::<1>(rows, out),
            2 => self.gram_rows_kernel::<2>(rows, out),
            3 => self.gram_rows_kernel::<3>(rows, out),
            4 => self.gram_rows_kernel::<4>(rows, out),
            _ => self.gram_rows_kernel::<0>(rows, out),
        }
    }

    fn gram_rows_kernel<const W: usize>(&self, rows: &[usize], out: &mut [u32]) {
        const B: usize = GRAM_BLOCK;
        let d = rows.len();
        let pop = AndPopcount::detect();
        for i0 in (0..d).step_by(B) {
            let ih = (i0 + B).min(d);
            for j0 in (i0..d).step_by(B) {
                let jh = (j0 + B).min(d);
                for gi in i0..ih {
                    let left = self.mask(rows[gi]);
                    // Diagonal blocks compute the upper triangle only.
                    for gj in j0.max(gi)..jh {
                        let right = self.mask(rows[gj]);
                        let c = if W > 0 {
                            // One bounds check, then a fully unrolled
                            // compile-time-length popcount.
                            let (l, r) = (&left[..W], &right[..W]);
                            let mut acc = 0u32;
                            for w in 0..W {
                                acc += (l[w] & r[w]).count_ones();
                            }
                            acc
                        } else {
                            pop.count(left, right)
                        };
                        out[gi * d + gj] = c;
                        out[gj * d + gi] = c;
                    }
                }
            }
        }
    }

    /// Anchor tasks attempted by the worker of *every* row in `rows`.
    pub(crate) fn common_among(&self, rows: &[usize]) -> usize {
        let Some((&first, rest)) = rows.split_first() else {
            // Every anchor task trivially intersects an empty peer set.
            return self.anchor_tasks;
        };
        (0..self.words)
            .map(|w| {
                let mut acc = self.mask(first)[w];
                for &other in rest {
                    acc &= self.mask(other)[w];
                }
                acc.count_ones() as usize
            })
            .sum()
    }
}

/// Where a [`BitsetAnchored`] view keeps its bit matrix: owned (the
/// one-off build paths) or borrowed from a caller-held
/// [`AnchoredScratch`] (the evaluate-all hot path, which reuses one
/// allocation across every worker of a thread's chunk).
#[derive(Debug)]
enum MaskStore<'a> {
    Owned(MaskMatrix),
    Scratch(&'a mut MaskMatrix),
}

impl MaskStore<'_> {
    #[inline]
    fn get(&self) -> &MaskMatrix {
        match self {
            Self::Owned(m) => m,
            Self::Scratch(m) => m,
        }
    }
}

/// An epoch-stamped `task → slot` map: `begin` invalidates every
/// entry in O(1) (a new epoch), so repeated peer-scoped builds never
/// pay an O(n) clear. Backing the anchored build with O(1) slot
/// lookups is what makes the peer fill `O(l_anchor + Σ_p l_p)` —
/// each peer row is walked once, no per-peer merge against the
/// anchor's row.
#[derive(Debug, Default)]
pub(crate) struct SlotStamps {
    epoch: u64,
    stamp: Vec<u64>,
    slot: Vec<u32>,
}

impl SlotStamps {
    /// Starts a fresh map covering tasks `0..n`.
    fn begin(&mut self, n: usize) {
        self.epoch += 1;
        if self.stamp.len() < n {
            // Epochs start at 1, so zeroed stamps never match.
            self.stamp.resize(n, 0);
            self.slot.resize(n, 0);
        }
    }

    #[inline]
    fn set(&mut self, task: u32, slot: u32) {
        self.stamp[task as usize] = self.epoch;
        self.slot[task as usize] = slot;
    }

    #[inline]
    fn get(&self, task: u32) -> Option<u32> {
        (self.stamp[task as usize] == self.epoch).then(|| self.slot[task as usize])
    }
}

/// Reusable build storage for [`OverlapIndex::anchored_for_in`]:
/// holds the mask words and the stamped slot map of the previous view
/// so consecutive anchored builds (one per evaluated worker) allocate
/// nothing once both have reached their high-water marks.
#[derive(Debug, Default)]
pub struct AnchoredScratch {
    matrix: Option<MaskMatrix>,
    stamps: SlotStamps,
}

/// Anchored triple overlaps by bitset intersection.
///
/// The anchor's attempted tasks define bit positions `0..s` (task
/// order). A [`PeerMask`] maps each in-scope worker to a mask row
/// recording which of those tasks it attempted; then
/// `c_{anchor,a,b} = popcount(masks[a] & masks[b])`, a handful of word
/// operations per query instead of a three-way merge scan.
///
/// Population-wide views ([`OverlapSource::anchored`]) fill their `m`
/// rows in one pass over the anchor's tasks' responder lists —
/// `O(Σ_{t ∈ tasks(anchor)} r_t)` build work and `m · ⌈s/64⌉` words.
/// Peer-scoped views ([`OverlapSource::anchored_for`]) instead merge
/// each peer's task row against the anchor's —
/// `O(Σ_{p ∈ peers} (l_anchor + l_p))` build work and only
/// `peers · ⌈s/64⌉` words, so view memory tracks the pairing degree,
/// never the population.
#[derive(Debug)]
pub struct BitsetAnchored<'a> {
    store: MaskStore<'a>,
    peers: PeerMask,
}

/// Shared anchored-view fill: re-shapes `matrix` (pre-sized to the
/// anchor's exact degree, so no doubling re-layout ever runs) and sets
/// its bits for the scope. Slots are the anchor's tasks in task order.
/// Identity scopes use the legacy per-task responder fill
/// (`O(Σ_{t ∈ tasks(anchor)} r_t)`, O(1) row mapping); peer scopes
/// stamp the anchor's slots into `stamps` and walk each peer's task
/// row once with O(1) slot lookups (`O(l_anchor + Σ_{p ∈ peers} l_p)`
/// — no per-peer merge against the anchor's row). Both fills produce
/// the same bits for every in-scope worker.
pub(crate) fn fill_anchored(
    index: &OverlapIndex,
    anchor: WorkerId,
    peers: &PeerMask,
    matrix: &mut MaskMatrix,
    stamps: &mut SlotStamps,
) {
    if matches!(peers, PeerMask::Peers(_)) {
        stamps.begin(index.n_tasks());
        for (slot, &(task, _)) in index.worker_responses(anchor).iter().enumerate() {
            stamps.set(task, slot as u32);
        }
    }
    fill_anchored_with(index, anchor, peers, matrix, |task| stamps.get(task));
}

/// The fill kernel behind both the batch builds and the streaming
/// re-anchor, parameterized over the peer branch's `task → slot`
/// lookup (epoch stamps for the batch paths, the maintained view's
/// own slot map for streaming) so there is exactly **one**
/// implementation of the bit layout — the streamed-vs-batch
/// bit-identity guarantee cannot drift between copies.
pub(crate) fn fill_anchored_with(
    index: &OverlapIndex,
    anchor: WorkerId,
    peers: &PeerMask,
    matrix: &mut MaskMatrix,
    slot_of: impl Fn(u32) -> Option<u32>,
) {
    let anchor_row = index.worker_responses(anchor);
    matrix.reset(
        peers.rows(),
        anchor_row.len().div_ceil(64),
        anchor_row.len(),
    );
    match peers {
        PeerMask::Population(_) => {
            for (slot, &(task, _)) in anchor_row.iter().enumerate() {
                for &(w, _) in index.task_responses(TaskId(task)) {
                    matrix.set_bit(w as usize, slot as u32);
                }
            }
        }
        PeerMask::Peers(_) => {
            for row in 0..peers.rows() {
                // One bounds check and row-offset multiply per peer,
                // not per response — this loop touches every response
                // of every peer, the dominant term of the fill.
                let words = matrix.row_mut(row);
                for &(task, _) in index.worker_responses(WorkerId(peers.worker_of(row))) {
                    if let Some(slot) = slot_of(task) {
                        words[slot as usize / 64] |= 1u64 << (slot as usize % 64);
                    }
                }
            }
        }
    }
}

/// Maps `others` through the peer mask into row indices and runs the
/// multi-way intersection popcount — through a stack buffer for the
/// estimator-sized queries (the k-ary `n₅` loop asks about 4 workers,
/// `O(l²)` times per evaluation), so the hot path allocates nothing.
pub(crate) fn common_among_mapped(
    matrix: &MaskMatrix,
    peers: &PeerMask,
    others: &[WorkerId],
) -> usize {
    let mut buf = [0usize; 8];
    if others.len() <= buf.len() {
        for (slot, &w) in buf.iter_mut().zip(others) {
            *slot = peers.row_of(w);
        }
        matrix.common_among(&buf[..others.len()])
    } else {
        let rows: Vec<usize> = others.iter().map(|&w| peers.row_of(w)).collect();
        matrix.common_among(&rows)
    }
}

impl<'a> BitsetAnchored<'a> {
    /// One-shot build owning its matrix (population or peer scope).
    /// The matrix is shrunk to its in-use rows: unlike a scratch
    /// build, there is no next build to reuse the slack for.
    fn build_owned(index: &OverlapIndex, anchor: WorkerId, peers: PeerMask) -> BitsetAnchored<'a> {
        let mut matrix = MaskMatrix::new(0, 1);
        fill_anchored(
            index,
            anchor,
            &peers,
            &mut matrix,
            &mut SlotStamps::default(),
        );
        matrix.shrink();
        BitsetAnchored {
            store: MaskStore::Owned(matrix),
            peers,
        }
    }

    /// Population-wide build: a row per worker.
    fn build(index: &OverlapIndex, anchor: WorkerId) -> BitsetAnchored<'a> {
        Self::build_owned(index, anchor, PeerMask::population(index.n_workers()))
    }

    /// Peer-scoped build owning its matrix.
    fn build_scoped(
        index: &OverlapIndex,
        anchor: WorkerId,
        peer_ids: &[WorkerId],
    ) -> BitsetAnchored<'a> {
        Self::build_owned(
            index,
            anchor,
            PeerMask::scoped_for(peer_ids, index.n_workers()),
        )
    }

    /// Peer-scoped build into `scratch`'s reusable words vector and
    /// slot stamps.
    fn build_in(
        index: &OverlapIndex,
        anchor: WorkerId,
        peer_ids: &[WorkerId],
        scratch: &'a mut AnchoredScratch,
    ) -> BitsetAnchored<'a> {
        let peers = PeerMask::scoped_for(peer_ids, index.n_workers());
        let matrix = scratch.matrix.get_or_insert_with(|| MaskMatrix::new(0, 1));
        fill_anchored(index, anchor, &peers, matrix, &mut scratch.stamps);
        BitsetAnchored {
            store: MaskStore::Scratch(matrix),
            peers,
        }
    }

    /// `c_{anchor,a}`: tasks shared by the anchor and one worker.
    pub fn pair_common(&self, a: WorkerId) -> usize {
        self.store.get().pair_common(self.peers.row_of(a))
    }

    /// Bytes resident in the view's bit matrix — `peers · ⌈s/64⌉`
    /// words for scoped views, `n_workers · ⌈s/64⌉` for population
    /// views. The scaling benchmark's bytes-per-view measurement.
    pub fn mask_bytes(&self) -> usize {
        self.store.get().mask_bytes()
    }
}

impl AnchoredOverlap for BitsetAnchored<'_> {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        self.store
            .get()
            .triple_common(self.peers.row_of(a), self.peers.row_of(b))
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        common_among_mapped(self.store.get(), &self.peers, others)
    }

    fn gram_into(&self, peers: &[WorkerId], gram: &mut PeerGram, scratch: &mut PeerGramScratch) {
        crate::gram::gram_into_mapped(self.store.get(), &self.peers, peers, gram, scratch);
    }

    fn pair_gram_into(
        &self,
        pairs: &[(WorkerId, WorkerId)],
        gram: &mut TriplePairGram,
        scratch: &mut PeerGramScratch,
    ) {
        crate::gram::pair_gram_into_mapped(self.store.get(), &self.peers, pairs, gram, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResponseMatrixBuilder, pair_stats, triple_joint_labels_optional, triple_overlap};

    /// A deterministic sparse matrix exercising uneven attempt sets.
    fn sample(m: usize, n: usize, arity: u16, seed: u64) -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(m, n, arity);
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for w in 0..m as u32 {
            for t in 0..n as u32 {
                if next() % 10 < 6 {
                    b.push(
                        WorkerId(w),
                        TaskId(t),
                        Label((next() % arity as u32) as u16),
                    )
                    .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    /// Every popcount lane — portable, AVX2, AVX-512 `VPOPCNTDQ` —
    /// computes the same integers, across lengths straddling each
    /// dispatch boundary (scalar < 8 words, single vector chunks, odd
    /// tails, two-chain bodies) and across degenerate all-zero /
    /// all-one masks. Vector lanes are forced explicitly where the
    /// host supports them, so a dispatch bug cannot hide behind
    /// detection.
    #[test]
    fn popcount_lanes_are_bit_identical() {
        let mut state = 0xD6E8_FEB8_6659_FD93u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let detected = AndPopcount::detect();
        let portable = AndPopcount::portable();
        // Lengths straddle every dispatch boundary: scalar (< 8), the
        // nibble kernel (8..64) and the Harley–Seal blocks (≥ 64) with
        // 0/partial/odd tails — 64 exact, 65 one-word tail, 127 a full
        // nibble-kernel tail, 128/192 multi-block, 129/257 block+word.
        for len in [
            0usize, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 33, 63, 64, 65, 96, 101, 127, 128, 129, 192,
            257,
        ] {
            let mut cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
                (
                    (0..len).map(|_| next()).collect(),
                    (0..len).map(|_| next()).collect(),
                ),
                (vec![u64::MAX; len], vec![u64::MAX; len]),
                (vec![0u64; len], (0..len).map(|_| next()).collect()),
            ];
            for (a, b) in cases.drain(..) {
                let reference: u32 = a.iter().zip(&b).map(|(x, y)| (x & y).count_ones()).sum();
                assert_eq!(portable.count(&a, &b), reference, "portable, len {len}");
                assert_eq!(detected.count(&a, &b), reference, "detected, len {len}");
                #[cfg(target_arch = "x86_64")]
                {
                    if detected.avx512 {
                        let forced = AndPopcount {
                            avx512: true,
                            avx2: false,
                        };
                        assert_eq!(forced.count(&a, &b), reference, "avx512, len {len}");
                    }
                    if detected.avx2 {
                        let forced = AndPopcount {
                            avx512: false,
                            avx2: true,
                        };
                        assert_eq!(forced.count(&a, &b), reference, "avx2, len {len}");
                    }
                }
            }
        }
    }

    #[test]
    fn index_matches_merge_scans() {
        let data = sample(7, 40, 3, 99);
        let index = OverlapIndex::from_matrix(&data);
        assert_eq!(index.n_workers(), 7);
        assert_eq!(index.n_tasks(), 40);
        assert_eq!(index.n_responses(), data.n_responses());
        assert_eq!(index.arity(), 3);
        for a in 0..7u32 {
            assert_eq!(
                index.worker_responses(WorkerId(a)),
                data.worker_responses(WorkerId(a))
            );
            for b in (a + 1)..7u32 {
                assert_eq!(
                    index.pair(WorkerId(a), WorkerId(b)),
                    pair_stats(&data, WorkerId(a), WorkerId(b)),
                );
                for c in (b + 1)..7u32 {
                    assert_eq!(
                        index.triple(WorkerId(a), WorkerId(b), WorkerId(c)),
                        triple_overlap(&data, WorkerId(a), WorkerId(b), WorkerId(c)),
                    );
                }
            }
        }
        for t in 0..40u32 {
            assert_eq!(
                index.task_responses(TaskId(t)),
                data.task_responses(TaskId(t))
            );
        }
    }

    #[test]
    fn anchored_bitsets_match_scans() {
        let data = sample(8, 60, 2, 4242);
        let index = OverlapIndex::from_matrix(&data);
        for anchor in 0..8u32 {
            let fast = index.anchored(WorkerId(anchor));
            let slow = data.anchored(WorkerId(anchor));
            for a in 0..8u32 {
                assert_eq!(
                    fast.pair_common(WorkerId(a)),
                    pair_stats(&data, WorkerId(anchor), WorkerId(a))
                        .common_tasks
                        .max(if a == anchor {
                            data.worker_task_count(WorkerId(anchor))
                        } else {
                            0
                        }),
                    "anchor {anchor}, worker {a}"
                );
                for b in 0..8u32 {
                    if a == b {
                        continue;
                    }
                    assert_eq!(
                        fast.triple_common(WorkerId(a), WorkerId(b)),
                        slow.triple_common(WorkerId(a), WorkerId(b)),
                        "anchor {anchor}, pair ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn peer_scoped_views_match_population_views() {
        let data = sample(9, 70, 2, 2026);
        let index = OverlapIndex::from_matrix(&data);
        for anchor in 0..9u32 {
            let full = index.anchored(WorkerId(anchor));
            // An arbitrary, unsorted, duplicated peer list.
            let peers = [
                WorkerId((anchor + 3) % 9),
                WorkerId((anchor + 1) % 9),
                WorkerId((anchor + 6) % 9),
                WorkerId((anchor + 1) % 9),
            ];
            let scoped = index.anchored_for(WorkerId(anchor), &peers);
            for &a in &peers {
                assert_eq!(scoped.pair_common(a), full.pair_common(a));
                for &b in &peers {
                    assert_eq!(
                        scoped.triple_common(a, b),
                        full.triple_common(a, b),
                        "anchor {anchor}, pair ({a:?},{b:?})"
                    );
                }
            }
            assert_eq!(
                scoped.common_among(&peers[..3]),
                full.common_among(&peers[..3])
            );
            assert_eq!(
                scoped.common_among(&[]),
                data.worker_task_count(WorkerId(anchor))
            );
            // Memory tracks the (deduplicated) peer count, not m:
            // 3 peer rows versus the population view's 9.
            assert_eq!(scoped.mask_bytes() * 3, full.mask_bytes());
        }
    }

    #[test]
    fn scratch_builds_match_owned_builds_across_anchors() {
        let data = sample(8, 90, 3, 515);
        let index = OverlapIndex::from_matrix(&data);
        let mut scratch = AnchoredScratch::default();
        // Re-using one scratch across anchors of very different degree
        // must never leak stale bits from a previous, larger build.
        for anchor in [0u32, 5, 1, 7, 2] {
            let peers: Vec<WorkerId> = (0..8)
                .filter(|&w| w != anchor && w % 2 == anchor % 2)
                .map(WorkerId)
                .collect();
            let owned = index.anchored_for(WorkerId(anchor), &peers);
            let reused = index.anchored_for_in(WorkerId(anchor), &peers, &mut scratch);
            for &a in &peers {
                assert_eq!(reused.pair_common(a), owned.pair_common(a));
                for &b in &peers {
                    assert_eq!(
                        reused.triple_common(a, b),
                        owned.triple_common(a, b),
                        "anchor {anchor}, pair ({a:?},{b:?})"
                    );
                }
            }
            assert_eq!(reused.common_among(&peers), owned.common_among(&peers));
        }
    }

    #[test]
    #[should_panic(expected = "peer scope")]
    fn peer_scoped_view_rejects_out_of_scope_queries() {
        let data = sample(5, 30, 2, 8);
        let index = OverlapIndex::from_matrix(&data);
        let view = index.anchored_for(WorkerId(0), &[WorkerId(1), WorkerId(2)]);
        let _ = view.triple_common(WorkerId(1), WorkerId(4));
    }

    #[test]
    fn peer_mask_covers_is_a_subset_test() {
        let all = PeerMask::population(6);
        let some = PeerMask::scoped(&[WorkerId(1), WorkerId(4)]);
        let more = PeerMask::scoped(&[WorkerId(1), WorkerId(3), WorkerId(4)]);
        let none = PeerMask::scoped(&[]);
        assert!(all.covers(&some) && all.covers(&all) && all.covers(&none));
        assert!(more.covers(&some) && more.covers(&none));
        assert!(!some.covers(&more) && !some.covers(&all));
        assert!(some.covers(&some));
        assert!(!PeerMask::population(4).covers(&PeerMask::scoped(&[WorkerId(5)])));
    }

    #[test]
    fn common_among_matches_naive_filter() {
        let data = sample(6, 50, 2, 7);
        let index = OverlapIndex::from_matrix(&data);
        let anchor = WorkerId(0);
        let fast = index.anchored(anchor);
        let slow = data.anchored(anchor);
        let others = [WorkerId(1), WorkerId(2), WorkerId(4), WorkerId(5)];
        assert_eq!(fast.common_among(&others), slow.common_among(&others));
        assert_eq!(
            fast.common_among(&[]),
            data.worker_task_count(anchor),
            "empty peer set means every anchor task qualifies"
        );
    }

    #[test]
    fn union_merge_matches_matrix_joint_labels() {
        let data = sample(5, 30, 4, 314);
        let index = OverlapIndex::from_matrix(&data);
        for (a, b, c) in [(0u32, 1, 2), (2, 4, 0), (3, 3, 3)] {
            if a == b || b == c || a == c {
                continue;
            }
            assert_eq!(
                index.triple_joint_labels_optional(WorkerId(a), WorkerId(b), WorkerId(c)),
                triple_joint_labels_optional(&data, WorkerId(a), WorkerId(b), WorkerId(c)),
            );
        }
    }

    #[test]
    fn cached_overlap_delegates() {
        let data = sample(5, 25, 2, 11);
        let cache = PairCache::from_matrix(&data);
        let src = CachedOverlap {
            data: &data,
            cache: &cache,
        };
        assert_eq!(OverlapSource::n_workers(&src), 5);
        assert_eq!(
            src.pair(WorkerId(0), WorkerId(3)),
            pair_stats(&data, WorkerId(0), WorkerId(3))
        );
        assert_eq!(
            src.triple(WorkerId(0), WorkerId(1), WorkerId(2)),
            triple_overlap(&data, WorkerId(0), WorkerId(1), WorkerId(2))
        );
    }

    #[test]
    fn streaming_appends_match_batch_build() {
        // Replaying the matrix response by response — in an order the
        // batch build never sees — produces a structurally identical
        // index: same rows, same pair table, same counters.
        let data = sample(7, 40, 3, 99);
        let batch = OverlapIndex::from_matrix(&data);
        let mut streamed = OverlapIndex::new(7, 40, 3);
        let mut responses: Vec<_> = data.iter().collect();
        responses.reverse();
        for r in responses {
            streamed.record_response(r).unwrap();
        }
        assert_eq!(streamed, batch);
    }

    #[test]
    fn record_response_rejects_bad_input_without_corruption() {
        use crate::{DataError, Response};
        let mut index = OverlapIndex::new(3, 5, 2);
        let ok = Response {
            worker: WorkerId(0),
            task: TaskId(1),
            label: Label(1),
        };
        index.record_response(ok).unwrap();
        let before = index.clone();
        assert!(matches!(
            index.record_response(ok),
            Err(DataError::DuplicateResponse { .. })
        ));
        assert!(matches!(
            index.record_response(Response {
                worker: WorkerId(9),
                task: TaskId(0),
                label: Label(0)
            }),
            Err(DataError::UnknownId { kind: "worker", .. })
        ));
        assert!(matches!(
            index.record_response(Response {
                worker: WorkerId(0),
                task: TaskId(9),
                label: Label(0)
            }),
            Err(DataError::UnknownId { kind: "task", .. })
        ));
        assert!(matches!(
            index.record_response(Response {
                worker: WorkerId(0),
                task: TaskId(0),
                label: Label(2)
            }),
            Err(DataError::LabelOutOfRange { .. })
        ));
        assert_eq!(index, before, "rejected responses must not mutate");
    }

    #[test]
    fn empty_and_silent_workers_are_handled() {
        // Worker 2 never answers; several tasks have no responses.
        let mut b = ResponseMatrixBuilder::new(3, 10, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(7), Label(1)).unwrap();
        let data = b.build().unwrap();
        let index = OverlapIndex::from_matrix(&data);
        assert_eq!(index.pair(WorkerId(0), WorkerId(1)).common_tasks, 1);
        assert_eq!(index.pair(WorkerId(0), WorkerId(2)).common_tasks, 0);
        assert!(index.worker_responses(WorkerId(2)).is_empty());
        assert_eq!(
            index
                .triple(WorkerId(0), WorkerId(1), WorkerId(2))
                .common_tasks,
            0
        );
        let view = index.anchored(WorkerId(2));
        assert_eq!(view.triple_common(WorkerId(0), WorkerId(1)), 0);
    }
}
