//! K-ary task labels.

/// A task response label: one of `r_0 .. r_{k-1}` for arity-`k` tasks.
///
/// The paper indexes responses `r_1..r_k` and reserves `r_0` for "did
/// not attempt"; in this crate absence is represented by `Option`
/// (or by slot 0 of the [`crate::CountsTensor`]), so `Label` itself is
/// always a real response and is zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u16);

impl Label {
    /// The canonical "No"/negative label of a binary task.
    pub const NO: Label = Label(0);
    /// The canonical "Yes"/positive label of a binary task.
    pub const YES: Label = Label(1);

    /// The label as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// For binary tasks: the opposite label.
    ///
    /// # Panics
    /// Panics on non-binary labels (value > 1).
    pub fn flipped(self) -> Label {
        match self.0 {
            0 => Label(1),
            1 => Label(0),
            v => panic!("flipped() requires a binary label, got {v}"),
        }
    }

    /// True if `self` is valid under the given arity.
    #[inline]
    pub fn valid_for_arity(self, arity: u16) -> bool {
        self.0 < arity
    }
}

impl From<u16> for Label {
    fn from(v: u16) -> Self {
        Self(v)
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_constants() {
        assert_eq!(Label::NO.index(), 0);
        assert_eq!(Label::YES.index(), 1);
        assert_eq!(Label::NO.flipped(), Label::YES);
        assert_eq!(Label::YES.flipped(), Label::NO);
    }

    #[test]
    #[should_panic(expected = "binary label")]
    fn flipping_kary_panics() {
        Label(2).flipped();
    }

    #[test]
    fn arity_validation() {
        assert!(Label(2).valid_for_arity(3));
        assert!(!Label(3).valid_for_arity(3));
    }

    #[test]
    fn display_is_r_indexed() {
        assert_eq!(Label(4).to_string(), "r4");
    }
}
