//! Pairwise and triple overlap statistics.
//!
//! These are the sufficient statistics of the binary algorithms:
//! `c_ij` (tasks attempted by both `w_i` and `w_j`), the agreement rate
//! `q̂_ij` over those tasks, and `c_ijk` (tasks attempted by all three
//! workers of a triple). Both are computed by merge-scans over the
//! task-sorted per-worker response lists, so evaluating a pair costs
//! `O(|w_i| + |w_j|)`.

use crate::{Label, ResponseMatrix, WorkerId};

/// Overlap statistics for one worker pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairStats {
    /// `c_ij`: number of tasks attempted by both workers.
    pub common_tasks: usize,
    /// Number of common tasks with identical labels.
    pub agreements: usize,
}

impl PairStats {
    /// Empirical agreement rate `q̂_ij = agreements / common_tasks`.
    ///
    /// Returns `None` when the pair shares no tasks (the paper requires
    /// at least one common task per pair it uses).
    pub fn agreement_rate(&self) -> Option<f64> {
        if self.common_tasks == 0 {
            None
        } else {
            Some(self.agreements as f64 / self.common_tasks as f64)
        }
    }
}

/// Computes `c_ij` and the agreement count for a worker pair by merge
/// scan of the two sorted response lists.
pub fn pair_stats(data: &ResponseMatrix, a: WorkerId, b: WorkerId) -> PairStats {
    pair_scan(data.worker_responses(a), data.worker_responses(b))
}

/// Merge scan of two task-sorted `(task, label)` rows. Shared by the
/// matrix-level [`pair_stats`] and the CSR rows of
/// [`crate::OverlapIndex`].
pub(crate) fn pair_scan(la: &[(u32, Label)], lb: &[(u32, Label)]) -> PairStats {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0;
    let mut agree = 0;
    while i < la.len() && j < lb.len() {
        match la[i].0.cmp(&lb[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                if la[i].1 == lb[j].1 {
                    agree += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    PairStats {
        common_tasks: common,
        agreements: agree,
    }
}

/// Overlap statistics for one worker triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleStats {
    /// `c_ijk`: tasks attempted by all three workers.
    pub common_tasks: usize,
}

/// Computes `c_ijk` for three workers by a three-way merge scan.
pub fn triple_overlap(data: &ResponseMatrix, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
    triple_scan(
        data.worker_responses(a),
        data.worker_responses(b),
        data.worker_responses(c),
    )
}

/// Three-way merge scan of task-sorted rows; see [`pair_scan`].
pub(crate) fn triple_scan(
    la: &[(u32, Label)],
    lb: &[(u32, Label)],
    lc: &[(u32, Label)],
) -> TripleStats {
    let mut i = 0;
    let mut j = 0;
    let mut k = 0;
    let mut common = 0;
    while i < la.len() && j < lb.len() && k < lc.len() {
        let (ta, tb, tc) = (la[i].0, lb[j].0, lc[k].0);
        let max = ta.max(tb).max(tc);
        if ta == tb && tb == tc {
            common += 1;
            i += 1;
            j += 1;
            k += 1;
        } else {
            if ta < max {
                i += 1;
            }
            if tb < max {
                j += 1;
            }
            if tc < max {
                k += 1;
            }
        }
    }
    TripleStats {
        common_tasks: common,
    }
}

/// Per-triple joint view: for every task all three workers attempted,
/// the three labels given. Used by the k-ary counts tensor and by
/// tests cross-checking the merge scans.
pub fn triple_joint_labels(
    data: &ResponseMatrix,
    a: WorkerId,
    b: WorkerId,
    c: WorkerId,
) -> Vec<(Label, Label, Label)> {
    triple_joint_scan(
        data.worker_responses(a),
        data.worker_responses(b),
        data.worker_responses(c),
    )
}

/// Three-way merge collecting the joint labels; see [`pair_scan`].
pub(crate) fn triple_joint_scan(
    la: &[(u32, Label)],
    lb: &[(u32, Label)],
    lc: &[(u32, Label)],
) -> Vec<(Label, Label, Label)> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    let mut k = 0;
    while i < la.len() && j < lb.len() && k < lc.len() {
        let (ta, tb, tc) = (la[i].0, lb[j].0, lc[k].0);
        let max = ta.max(tb).max(tc);
        if ta == tb && tb == tc {
            out.push((la[i].1, lb[j].1, lc[k].1));
            i += 1;
            j += 1;
            k += 1;
        } else {
            if ta < max {
                i += 1;
            }
            if tb < max {
                j += 1;
            }
            if tc < max {
                k += 1;
            }
        }
    }
    out
}

/// All pairwise overlap statistics, maintained either by a one-shot
/// scan ([`PairCache::from_matrix`]) or incrementally, one response at
/// a time ([`PairCache::record_response`]).
///
/// The batch estimators recompute `q̂_ij` by merge scans; with a cache
/// those lookups are `O(1)`, which is what makes streaming evaluation
/// cheap — each arriving response touches only the pairs it completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCache {
    m: usize,
    /// Upper-triangular `(common, agreements)` counts, row-major over
    /// `a < b`.
    counts: Vec<(u32, u32)>,
}

impl PairCache {
    /// An all-zero cache for `m` workers.
    pub fn empty(m: usize) -> Self {
        Self {
            m,
            counts: vec![(0, 0); m * (m.max(1) - 1) / 2],
        }
    }

    /// Builds the cache in **one pass over the response matrix**: every
    /// task's responder list is harvested directly into the packed pair
    /// table, costing `O(Σ_t r_t²)` total instead of one
    /// `O(|w_i| + |w_j|)` merge scan per pair — on sparse data the
    /// per-task responder lists are short, so this is the cheaper and
    /// far more cache-friendly direction.
    pub fn from_matrix(data: &ResponseMatrix) -> Self {
        let mut cache = Self::empty(data.n_workers());
        for task in data.tasks() {
            cache.harvest_task(data.task_responses(task));
        }
        cache
    }

    /// Folds one task's worker-sorted responder list into the table.
    pub(crate) fn harvest_task(&mut self, responders: &[(u32, Label)]) {
        for (i, &(wa, la)) in responders.iter().enumerate() {
            for &(wb, lb) in &responders[i + 1..] {
                let idx = self.index(wa, wb);
                let (c, a) = &mut self.counts[idx];
                *c += 1;
                if la == lb {
                    *a += 1;
                }
            }
        }
    }

    /// Number of workers covered.
    pub fn n_workers(&self) -> usize {
        self.m
    }

    /// Bytes resident in the packed pair table — `m(m−1)/2` entries
    /// of 8 bytes, *regardless of how many pairs co-occur*. The
    /// scaling benchmark's dense-side pair-state measurement; compare
    /// [`crate::PairMap::table_bytes`].
    pub fn table_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    fn index(&self, a: u32, b: u32) -> usize {
        debug_assert!(a != b, "pair cache has no diagonal");
        let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
        // Row-major upper triangle: offset of row `lo` + column shift.
        lo * self.m - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// The cached statistics for a worker pair.
    pub fn get(&self, a: WorkerId, b: WorkerId) -> PairStats {
        let (common, agree) = self.counts[self.index(a.0, b.0)];
        PairStats {
            common_tasks: common as usize,
            agreements: agree as usize,
        }
    }

    /// Updates the cache for a new response by `worker` with `label`,
    /// given the task's *other* responders (i.e. the per-task list
    /// **before** the response is inserted). `O(responders)`.
    pub fn record_response(&mut self, worker: WorkerId, label: Label, others: &[(u32, Label)]) {
        for &(other, other_label) in others {
            if other == worker.0 {
                continue;
            }
            let idx = self.index(worker.0, other);
            let (c, a) = &mut self.counts[idx];
            *c += 1;
            if other_label == label {
                *a += 1;
            }
        }
    }
}

/// For every task at least one of the three workers attempted, the
/// (possibly absent) labels of all three. Tasks none of the three
/// attempted are skipped — they carry no information about the triple
/// and the paper's `Counts[0][0][0]` slot is never read.
pub fn triple_joint_labels_optional(
    data: &ResponseMatrix,
    a: WorkerId,
    b: WorkerId,
    c: WorkerId,
) -> Vec<(Option<Label>, Option<Label>, Option<Label>)> {
    let mut out = Vec::new();
    for task in data.tasks() {
        let la = data.response(a, task);
        let lb = data.response(b, task);
        let lc = data.response(c, task);
        if la.is_some() || lb.is_some() || lc.is_some() {
            out.push((la, lb, lc));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResponseMatrixBuilder, TaskId};

    /// The paper's §III-B example: 100 tasks; w0 attempts the first 80,
    /// w1 the last 80, w2 the middle 80. Then c01 = 60, c02 = c12 = 70,
    /// c012 = 60.
    fn paper_example() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(3, 100, 2);
        for t in 0..80u32 {
            b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
        }
        for t in 20..100u32 {
            b.push(WorkerId(1), TaskId(t), Label(0)).unwrap();
        }
        for t in 10..90u32 {
            b.push(WorkerId(2), TaskId(t), Label(0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn paper_section_iiib_overlap_counts() {
        let m = paper_example();
        assert_eq!(pair_stats(&m, WorkerId(0), WorkerId(1)).common_tasks, 60);
        assert_eq!(pair_stats(&m, WorkerId(0), WorkerId(2)).common_tasks, 70);
        assert_eq!(pair_stats(&m, WorkerId(1), WorkerId(2)).common_tasks, 70);
        assert_eq!(
            triple_overlap(&m, WorkerId(0), WorkerId(1), WorkerId(2)).common_tasks,
            60
        );
    }

    #[test]
    fn agreement_counting() {
        let mut b = ResponseMatrixBuilder::new(2, 5, 2);
        // Agree on tasks 0,1,2; disagree on 3; task 4 only w0.
        for t in 0..4u32 {
            b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
        }
        b.push(WorkerId(0), TaskId(4), Label(0)).unwrap();
        for t in 0..3u32 {
            b.push(WorkerId(1), TaskId(t), Label(0)).unwrap();
        }
        b.push(WorkerId(1), TaskId(3), Label(1)).unwrap();
        let m = b.build().unwrap();
        let s = pair_stats(&m, WorkerId(0), WorkerId(1));
        assert_eq!(s.common_tasks, 4);
        assert_eq!(s.agreements, 3);
        assert!((s.agreement_rate().unwrap() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn pair_stats_is_symmetric() {
        let m = paper_example();
        let ab = pair_stats(&m, WorkerId(0), WorkerId(2));
        let ba = pair_stats(&m, WorkerId(2), WorkerId(0));
        assert_eq!(ab, ba);
    }

    #[test]
    fn disjoint_workers_have_no_rate() {
        let mut b = ResponseMatrixBuilder::new(2, 4, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(0)).unwrap();
        let m = b.build().unwrap();
        let s = pair_stats(&m, WorkerId(0), WorkerId(1));
        assert_eq!(s.common_tasks, 0);
        assert_eq!(s.agreement_rate(), None);
    }

    #[test]
    fn joint_labels_match_triple_overlap() {
        let m = paper_example();
        let joint = triple_joint_labels(&m, WorkerId(0), WorkerId(1), WorkerId(2));
        assert_eq!(
            joint.len(),
            triple_overlap(&m, WorkerId(0), WorkerId(1), WorkerId(2)).common_tasks
        );
    }

    #[test]
    fn joint_labels_preserve_per_worker_labels() {
        let mut b = ResponseMatrixBuilder::new(3, 3, 3);
        for t in 0..3u32 {
            b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
            b.push(WorkerId(1), TaskId(t), Label(1)).unwrap();
            b.push(WorkerId(2), TaskId(t), Label(2)).unwrap();
        }
        let m = b.build().unwrap();
        let joint = triple_joint_labels(&m, WorkerId(0), WorkerId(1), WorkerId(2));
        assert_eq!(joint, vec![(Label(0), Label(1), Label(2)); 3]);
        // Worker order matters.
        let joint = triple_joint_labels(&m, WorkerId(2), WorkerId(1), WorkerId(0));
        assert_eq!(joint, vec![(Label(2), Label(1), Label(0)); 3]);
    }

    #[test]
    fn pair_cache_matches_batch_scan() {
        let m = paper_example();
        let cache = PairCache::from_matrix(&m);
        assert_eq!(cache.n_workers(), 3);
        for a in 0..3u32 {
            for b in (a + 1)..3u32 {
                assert_eq!(
                    cache.get(WorkerId(a), WorkerId(b)),
                    pair_stats(&m, WorkerId(a), WorkerId(b))
                );
                // Symmetric lookup.
                assert_eq!(
                    cache.get(WorkerId(b), WorkerId(a)),
                    cache.get(WorkerId(a), WorkerId(b))
                );
            }
        }
    }

    #[test]
    fn pair_cache_incremental_matches_batch() {
        // Stream the example matrix response-by-response; the
        // incrementally maintained cache must equal the batch scan.
        let target = paper_example();
        let mut data = ResponseMatrix::empty(3, 100, 2);
        let mut cache = PairCache::empty(3);
        for r in target.iter() {
            cache.record_response(r.worker, r.label, data.task_responses(r.task));
            data.insert(r).unwrap();
        }
        assert_eq!(cache, PairCache::from_matrix(&target));
    }

    #[test]
    fn pair_cache_empty_and_tiny() {
        let cache = PairCache::empty(0);
        assert_eq!(cache.n_workers(), 0);
        let cache = PairCache::empty(2);
        assert_eq!(cache.get(WorkerId(0), WorkerId(1)).common_tasks, 0);
    }

    #[test]
    fn brute_force_cross_check() {
        // Compare the merge scans with a naive O(n·m) recomputation on a
        // small pseudo-random matrix.
        let mut b = ResponseMatrixBuilder::new(4, 30, 2);
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for w in 0..4u32 {
            for t in 0..30u32 {
                if next() % 10 < 7 {
                    b.push(WorkerId(w), TaskId(t), Label((next() % 2) as u16))
                        .unwrap();
                }
            }
        }
        let m = b.build().unwrap();
        for a in 0..4u32 {
            for c in (a + 1)..4u32 {
                let fast = pair_stats(&m, WorkerId(a), WorkerId(c));
                let mut common = 0;
                let mut agree = 0;
                for t in 0..30u32 {
                    if let (Some(x), Some(y)) = (
                        m.response(WorkerId(a), TaskId(t)),
                        m.response(WorkerId(c), TaskId(t)),
                    ) {
                        common += 1;
                        if x == y {
                            agree += 1;
                        }
                    }
                }
                assert_eq!(fast.common_tasks, common);
                assert_eq!(fast.agreements, agree);
            }
        }
    }
}
