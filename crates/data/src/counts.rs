//! The `(k+1)³` response-counts tensor of Algorithm A3.
//!
//! For a worker triple `(w₁, w₂, w₃)` on arity-`k` tasks,
//! `counts[a][b][c]` is the number of tasks where `w₁` responded with
//! `r_{a−1}`, `w₂` with `r_{b−1}` and `w₃` with `r_{c−1}`; slot 0 in
//! any coordinate means "did not attempt" (the paper's null response
//! `r₀`).
//!
//! Entries are stored as `f64` because the k-ary confidence-interval
//! computation perturbs individual entries by `±ε` to differentiate
//! `ProbEstimate` numerically (Algorithm A3, step 6).

use crate::overlap::triple_joint_labels_optional;
use crate::{ResponseMatrix, WorkerId};

/// Which of the three workers attempted a task: a 3-bit mask with bit
/// 0 for `w₁`, bit 1 for `w₂`, bit 2 for `w₃`.
///
/// Entries of the counts tensor with the same pattern form one
/// multinomial group; Lemma 9's covariances are zero across groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttemptPattern(pub u8);

impl AttemptPattern {
    /// Pattern of a tensor index triple.
    pub fn of(a: usize, b: usize, c: usize) -> Self {
        let mut mask = 0u8;
        if a > 0 {
            mask |= 1;
        }
        if b > 0 {
            mask |= 2;
        }
        if c > 0 {
            mask |= 4;
        }
        Self(mask)
    }

    /// Number of workers that attempted.
    pub fn worker_count(self) -> u32 {
        self.0.count_ones()
    }

    /// All 8 possible patterns.
    pub fn all() -> impl Iterator<Item = Self> {
        (0u8..8).map(Self)
    }
}

/// The counts tensor for one worker triple.
#[derive(Debug, Clone, PartialEq)]
pub struct CountsTensor {
    arity: usize,
    side: usize,
    data: Vec<f64>,
}

impl CountsTensor {
    /// An all-zero tensor for arity-`k` tasks.
    ///
    /// # Panics
    /// Panics if `arity < 2`.
    pub fn zeros(arity: usize) -> Self {
        assert!(arity >= 2, "arity must be at least 2");
        let side = arity + 1;
        Self {
            arity,
            side,
            data: vec![0.0; side * side * side],
        }
    }

    /// Builds the tensor from a response matrix and a worker triple,
    /// scanning every task once.
    pub fn from_matrix(data: &ResponseMatrix, w1: WorkerId, w2: WorkerId, w3: WorkerId) -> Self {
        Self::from_joint(
            data.arity() as usize,
            triple_joint_labels_optional(data, w1, w2, w3),
        )
    }

    /// Builds the tensor from an [`crate::OverlapIndex`] by a union
    /// merge of the triple's CSR rows — `O(|w₁| + |w₂| + |w₃|)` instead
    /// of a binary search per (task, worker) cell. Bit-identical to
    /// [`CountsTensor::from_matrix`] on the same data.
    pub fn from_index(
        index: &crate::OverlapIndex,
        w1: WorkerId,
        w2: WorkerId,
        w3: WorkerId,
    ) -> Self {
        let mut t = Self::zeros(index.arity() as usize);
        t.fill_from_index(index, w1, w2, w3);
        t
    }

    /// Re-fills an existing tensor from the index **in place** —
    /// zeroes the entries, then replays the same union merge as
    /// [`CountsTensor::from_index`], allocating nothing when the
    /// arities match (an arity change re-shapes the tensor instead,
    /// so a reused scratch buffer is always safe). The k-ary
    /// evaluate-all hot path reuses one tensor per thread this way
    /// (see `crowd_core::KaryEvalScratch`); counts are bit-identical
    /// to a fresh build.
    pub fn fill_from_index(
        &mut self,
        index: &crate::OverlapIndex,
        w1: WorkerId,
        w2: WorkerId,
        w3: WorkerId,
    ) {
        if self.arity != index.arity() as usize {
            *self = Self::zeros(index.arity() as usize);
        } else {
            self.data.fill(0.0);
        }
        index.triple_joint_for_each(w1, w2, w3, |(a, b, c)| {
            let ia = a.map_or(0, |l| l.index() + 1);
            let ib = b.map_or(0, |l| l.index() + 1);
            let ic = c.map_or(0, |l| l.index() + 1);
            self.add(ia, ib, ic, 1.0);
        });
    }

    fn from_joint(
        arity: usize,
        joint: Vec<(
            Option<crate::Label>,
            Option<crate::Label>,
            Option<crate::Label>,
        )>,
    ) -> Self {
        let mut t = Self::zeros(arity);
        for (a, b, c) in joint {
            let ia = a.map_or(0, |l| l.index() + 1);
            let ib = b.map_or(0, |l| l.index() + 1);
            let ic = c.map_or(0, |l| l.index() + 1);
            t.add(ia, ib, ic, 1.0);
        }
        t
    }

    /// Task arity `k`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Side length of the tensor (`k + 1`).
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    #[inline]
    fn idx(&self, a: usize, b: usize, c: usize) -> usize {
        debug_assert!(a < self.side && b < self.side && c < self.side);
        (a * self.side + b) * self.side + c
    }

    /// Reads `counts[a][b][c]`.
    #[inline]
    pub fn get(&self, a: usize, b: usize, c: usize) -> f64 {
        self.data[self.idx(a, b, c)]
    }

    /// Writes `counts[a][b][c]`.
    #[inline]
    pub fn set(&mut self, a: usize, b: usize, c: usize, value: f64) {
        let i = self.idx(a, b, c);
        self.data[i] = value;
    }

    /// Adds `delta` to `counts[a][b][c]` (used by the ±ε perturbation
    /// of the numeric differentiation step).
    #[inline]
    pub fn add(&mut self, a: usize, b: usize, c: usize, delta: f64) {
        let i = self.idx(a, b, c);
        self.data[i] += delta;
    }

    /// Iterates `(a, b, c, count)` over the whole tensor.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, usize, f64)> + '_ {
        let side = self.side;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let c = i % side;
            let b = (i / side) % side;
            let a = i / (side * side);
            (a, b, c, v)
        })
    }

    /// Total number of tasks recorded (sum of all entries).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// `n₁₂₃`: tasks attempted by all three workers.
    pub fn n_all_three(&self) -> f64 {
        self.group_total(AttemptPattern(0b111))
    }

    /// `n_ij` for the worker pair given as a pattern of two bits:
    /// tasks attempted by **exactly** that pair (the paper's `n_{i,j}`,
    /// which excludes tasks the third worker also attempted).
    ///
    /// # Panics
    /// Panics unless exactly two bits are set in `pair`.
    pub fn n_exactly_pair(&self, pair: AttemptPattern) -> f64 {
        assert_eq!(
            pair.worker_count(),
            2,
            "pair pattern must have exactly two workers"
        );
        self.group_total(pair)
    }

    /// Sum of all entries whose indices match `pattern`.
    pub fn group_total(&self, pattern: AttemptPattern) -> f64 {
        self.entries()
            .filter(|&(a, b, c, _)| AttemptPattern::of(a, b, c) == pattern)
            .map(|(_, _, _, v)| v)
            .sum()
    }

    /// The number of tasks both `w₁` and `w₂` attempted (regardless of
    /// `w₃`) — the denominator `n₁₂₃ + n₁₂` of A3 step 2.
    pub fn n_pair_at_least(&self, pair: AttemptPattern) -> f64 {
        assert_eq!(
            pair.worker_count(),
            2,
            "pair pattern must have exactly two workers"
        );
        self.n_exactly_pair(pair) + self.n_all_three()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Label, ResponseMatrixBuilder, TaskId};

    fn tiny() -> ResponseMatrix {
        // Arity 2; 5 tasks.
        // t0: all three answer (0, 1, 0)
        // t1: w1, w2 answer (1, 1); w3 absent
        // t2: w1 only (0)
        // t3: all three answer (1, 1, 1)
        // t4: w2, w3 answer (0, 1); w1 absent
        let mut b = ResponseMatrixBuilder::new(3, 5, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(2), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(1), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(1)).unwrap();
        b.push(WorkerId(0), TaskId(2), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(3), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(3), Label(1)).unwrap();
        b.push(WorkerId(2), TaskId(3), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(4), Label(0)).unwrap();
        b.push(WorkerId(2), TaskId(4), Label(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn from_matrix_places_counts() {
        let t = CountsTensor::from_matrix(&tiny(), WorkerId(0), WorkerId(1), WorkerId(2));
        // t0: labels (0,1,0) → indices (1,2,1).
        assert_eq!(t.get(1, 2, 1), 1.0);
        // t1: (1,1,absent) → (2,2,0).
        assert_eq!(t.get(2, 2, 0), 1.0);
        // t2: (0,absent,absent) → (1,0,0).
        assert_eq!(t.get(1, 0, 0), 1.0);
        // t3: (1,1,1) → (2,2,2).
        assert_eq!(t.get(2, 2, 2), 1.0);
        // t4: (absent,0,1) → (0,1,2).
        assert_eq!(t.get(0, 1, 2), 1.0);
        assert_eq!(t.total(), 5.0);
    }

    #[test]
    fn group_totals() {
        let t = CountsTensor::from_matrix(&tiny(), WorkerId(0), WorkerId(1), WorkerId(2));
        assert_eq!(t.n_all_three(), 2.0);
        assert_eq!(t.n_exactly_pair(AttemptPattern(0b011)), 1.0); // w1,w2 only: t1
        assert_eq!(t.n_exactly_pair(AttemptPattern(0b110)), 1.0); // w2,w3 only: t4
        assert_eq!(t.n_exactly_pair(AttemptPattern(0b101)), 0.0); // w1,w3 only
        assert_eq!(t.n_pair_at_least(AttemptPattern(0b011)), 3.0);
        assert_eq!(t.group_total(AttemptPattern(0b001)), 1.0); // w1 only: t2
        assert_eq!(t.group_total(AttemptPattern(0b000)), 0.0);
    }

    #[test]
    fn pattern_classification() {
        assert_eq!(AttemptPattern::of(0, 0, 0), AttemptPattern(0));
        assert_eq!(AttemptPattern::of(1, 0, 2), AttemptPattern(0b101));
        assert_eq!(AttemptPattern::of(3, 1, 2).worker_count(), 3);
        assert_eq!(AttemptPattern::all().count(), 8);
    }

    #[test]
    fn entries_roundtrip() {
        let mut t = CountsTensor::zeros(3);
        t.set(2, 0, 3, 7.0);
        t.add(2, 0, 3, 1.0);
        let found: Vec<_> = t.entries().filter(|&(_, _, _, v)| v != 0.0).collect();
        assert_eq!(found, vec![(2, 0, 3, 8.0)]);
        assert_eq!(t.side(), 4);
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn perturbation_is_local() {
        let mut t = CountsTensor::zeros(2);
        t.add(1, 1, 1, 0.01);
        t.add(1, 1, 1, -0.02);
        assert!((t.get(1, 1, 1) + 0.01).abs() < 1e-15);
        assert_eq!(t.get(1, 1, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "exactly two")]
    fn pair_pattern_validation() {
        CountsTensor::zeros(2).n_exactly_pair(AttemptPattern(0b111));
    }

    #[test]
    fn total_matches_task_count_when_all_attempted() {
        let mut b = ResponseMatrixBuilder::new(3, 10, 2);
        for t in 0..10u32 {
            for w in 0..3u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        let m = b.build().unwrap();
        let t = CountsTensor::from_matrix(&m, WorkerId(0), WorkerId(1), WorkerId(2));
        assert_eq!(t.n_all_three(), 10.0);
        assert_eq!(t.total(), 10.0);
    }
}
