//! Newtype identifiers for workers and tasks.
//!
//! Raw `u32` indices are easy to transpose by accident when both
//! workers and tasks are in play; the newtypes make the APIs
//! self-documenting at zero runtime cost.

/// Identifier of a crowd worker (dense index starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

/// Identifier of a task (dense index starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl WorkerId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for WorkerId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_index() {
        let w: WorkerId = 3u32.into();
        assert_eq!(w.index(), 3);
        let t: TaskId = 9u32.into();
        assert_eq!(t.index(), 9);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(WorkerId(2) < WorkerId(10));
        assert!(TaskId(0) < TaskId(1));
    }

    #[test]
    fn display() {
        assert_eq!(WorkerId(5).to_string(), "w5");
        assert_eq!(TaskId(7).to_string(), "t7");
    }
}
