//! Majority-vote aggregation.
//!
//! Two consumers: the spammer-pruning preprocessing of Figure 4
//! (workers disagreeing with the majority more than 40% of the time
//! are dropped before interval estimation) and the super-worker
//! construction of the reproduced "old technique" baseline.

use crate::{Label, ResponseMatrix, TaskId, WorkerId};

/// The majority label of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MajorityOutcome {
    /// A strict plurality winner.
    Winner(Label),
    /// Two or more labels tied for the lead; carries the smallest tied
    /// label for deterministic downstream behaviour.
    Tie(Label),
    /// Nobody answered the task.
    Empty,
}

impl MajorityOutcome {
    /// The winning label if one exists (ties resolve to the smallest
    /// tied label; `None` only for unanswered tasks).
    pub fn label_or_tiebreak(self) -> Option<Label> {
        match self {
            Self::Winner(l) | Self::Tie(l) => Some(l),
            Self::Empty => None,
        }
    }

    /// True for strict winners only.
    pub fn is_strict(self) -> bool {
        matches!(self, Self::Winner(_))
    }
}

/// Majority vote over one task's responses.
pub fn majority_vote(data: &ResponseMatrix, task: TaskId) -> MajorityOutcome {
    let responses = data.task_responses(task);
    if responses.is_empty() {
        return MajorityOutcome::Empty;
    }
    let k = data.arity() as usize;
    let mut counts = vec![0usize; k];
    for &(_, label) in responses {
        counts[label.index()] += 1;
    }
    let best = *counts.iter().max().expect("non-empty counts");
    let leaders: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == best)
        .map(|(i, _)| i)
        .collect();
    let label = Label(leaders[0] as u16);
    if leaders.len() == 1 {
        MajorityOutcome::Winner(label)
    } else {
        MajorityOutcome::Tie(label)
    }
}

/// Majority vote over one task's responses, **excluding** one worker —
/// used when scoring that worker's own disagreement so its vote does
/// not dilute the reference.
pub fn majority_vote_excluding(
    data: &ResponseMatrix,
    task: TaskId,
    excluded: WorkerId,
) -> MajorityOutcome {
    let responses = data.task_responses(task);
    let k = data.arity() as usize;
    let mut counts = vec![0usize; k];
    let mut any = false;
    for &(w, label) in responses {
        if w == excluded.0 {
            continue;
        }
        counts[label.index()] += 1;
        any = true;
    }
    if !any {
        return MajorityOutcome::Empty;
    }
    let best = *counts.iter().max().expect("non-empty counts");
    let leaders: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == best)
        .map(|(i, _)| i)
        .collect();
    let label = Label(leaders[0] as u16);
    if leaders.len() == 1 {
        MajorityOutcome::Winner(label)
    } else {
        MajorityOutcome::Tie(label)
    }
}

/// For every worker: the fraction of its responses disagreeing with the
/// leave-one-out majority. Workers with no scorable response get `None`.
///
/// This is the "simple majority technique" of §III-E the paper uses to
/// approximate error rates when pruning spammers.
pub fn disagreement_rates(data: &ResponseMatrix) -> Vec<Option<f64>> {
    data.workers()
        .map(|w| {
            let mut scored = 0usize;
            let mut disagreed = 0usize;
            for &(t, label) in data.worker_responses(w) {
                match majority_vote_excluding(data, TaskId(t), w) {
                    MajorityOutcome::Winner(m) => {
                        scored += 1;
                        if m != label {
                            disagreed += 1;
                        }
                    }
                    // Ties and empty references carry no signal.
                    MajorityOutcome::Tie(_) | MajorityOutcome::Empty => {}
                }
            }
            if scored == 0 {
                None
            } else {
                Some(disagreed as f64 / scored as f64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseMatrixBuilder;

    fn build(
        rows: &[(u32, u32, u16)],
        n_workers: usize,
        n_tasks: usize,
        arity: u16,
    ) -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(n_workers, n_tasks, arity);
        for &(w, t, l) in rows {
            b.push(WorkerId(w), TaskId(t), Label(l)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn strict_winner() {
        let m = build(&[(0, 0, 1), (1, 0, 1), (2, 0, 0)], 3, 1, 2);
        assert_eq!(
            majority_vote(&m, TaskId(0)),
            MajorityOutcome::Winner(Label(1))
        );
    }

    #[test]
    fn tie_reports_smallest() {
        let m = build(&[(0, 0, 1), (1, 0, 0)], 2, 1, 2);
        let out = majority_vote(&m, TaskId(0));
        assert_eq!(out, MajorityOutcome::Tie(Label(0)));
        assert!(!out.is_strict());
        assert_eq!(out.label_or_tiebreak(), Some(Label(0)));
    }

    #[test]
    fn empty_task() {
        let m = build(&[(0, 0, 1)], 1, 2, 2);
        assert_eq!(majority_vote(&m, TaskId(1)), MajorityOutcome::Empty);
        assert_eq!(MajorityOutcome::Empty.label_or_tiebreak(), None);
    }

    #[test]
    fn excluding_changes_outcome() {
        // Votes: w0=1, w1=0, w2=1 → majority 1; excluding w2 → tie.
        let m = build(&[(0, 0, 1), (1, 0, 0), (2, 0, 1)], 3, 1, 2);
        assert_eq!(
            majority_vote(&m, TaskId(0)),
            MajorityOutcome::Winner(Label(1))
        );
        assert_eq!(
            majority_vote_excluding(&m, TaskId(0), WorkerId(2)),
            MajorityOutcome::Tie(Label(0))
        );
        assert_eq!(
            majority_vote_excluding(&m, TaskId(0), WorkerId(1)),
            MajorityOutcome::Winner(Label(1))
        );
    }

    #[test]
    fn excluding_sole_voter_is_empty() {
        let m = build(&[(0, 0, 1)], 1, 1, 2);
        assert_eq!(
            majority_vote_excluding(&m, TaskId(0), WorkerId(0)),
            MajorityOutcome::Empty
        );
    }

    #[test]
    fn disagreement_rates_identify_the_contrarian() {
        // 4 workers, 6 tasks; w3 always contradicts the other three.
        let mut rows = Vec::new();
        for t in 0..6u32 {
            for w in 0..3u32 {
                rows.push((w, t, 0u16));
            }
            rows.push((3, t, 1u16));
        }
        let m = build(&rows, 4, 6, 2);
        let rates = disagreement_rates(&m);
        assert_eq!(rates[0], Some(0.0));
        assert_eq!(rates[1], Some(0.0));
        assert_eq!(rates[2], Some(0.0));
        assert_eq!(rates[3], Some(1.0));
    }

    #[test]
    fn worker_with_no_scorable_tasks_is_none() {
        // w1's only task has no other voters.
        let m = build(&[(0, 0, 0), (1, 1, 1)], 2, 2, 2);
        let rates = disagreement_rates(&m);
        assert_eq!(rates[1], None);
    }

    #[test]
    fn kary_majority() {
        let m = build(&[(0, 0, 2), (1, 0, 2), (2, 0, 1), (3, 0, 0)], 4, 1, 3);
        assert_eq!(
            majority_vote(&m, TaskId(0)),
            MajorityOutcome::Winner(Label(2))
        );
    }
}
