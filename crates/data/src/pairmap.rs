//! The sparse pair table: co-occurrence/agreement counts keyed by
//! **co-occurring worker pairs only**.
//!
//! The dense [`crate::PairCache`] packs one `(common, agreements)`
//! entry per unordered worker pair — `m(m−1)/2` entries regardless of
//! how many pairs ever share a task. That is the right trade on small
//! or well-mixed crowds (O(1) lookups, no per-entry overhead), but at
//! fleet scale it is the last `O(m²)` object in the pipeline: a
//! 10 000-worker fleet pays ~400 MB for a table that is mostly zeros,
//! because real crowds are *clustered* — a worker co-occurs with the
//! peers of its task neighbourhood, not with the whole fleet.
//!
//! [`PairMap`] stores only the nonzero entries, as per-worker sorted
//! peer adjacencies (both directions, so either endpoint can enumerate
//! its peers):
//!
//! * `get(a, b)` is a binary search over `a`'s peer row — `O(log d_a)`
//!   in the co-occurrence degree, and absent pairs read as zero;
//! * [`PairMap::co_occurring`] enumerates a worker's co-occurring
//!   peers directly — the pairing candidate scan becomes `O(d_w)`
//!   instead of the dense table's `O(m)` sweep;
//! * memory is `O(Σ_w d_w)` — it tracks the data's co-occurrence
//!   structure, never the fleet size. This is what lets a shard
//!   process ([`OverlapIndex::from_matrix_scoped`](crate::OverlapIndex)
//!   with the sparse backend) hold pair state proportional to *its*
//!   rows only.
//!
//! Maintenance mirrors the dense cache exactly: one-shot per-task
//! harvests ([`PairMap::harvest_task`]) or streaming appends
//! ([`PairMap::record_response`]), and the differential property tests
//! in `crates/data/tests/proptests.rs` pin `PairMap` == `PairCache`
//! for every co-occurring pair under random matrices and random ingest
//! orders.

use crate::{Label, PairStats, WorkerId};

/// One peer entry of a worker's adjacency row: `(peer, common,
/// agreements)`, kept sorted by peer id.
type PairEntry = (u32, u32, u32);

/// Sparse pairwise co-occurrence/agreement counts; see the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMap {
    /// Per-worker peer rows, sorted by peer id. Both directions of a
    /// pair are stored, so `rows[a]` alone answers "who co-occurs with
    /// `a`".
    rows: Vec<Vec<PairEntry>>,
}

impl PairMap {
    /// An all-empty map for `m` workers (every pair reads as zero).
    pub fn empty(m: usize) -> Self {
        Self {
            rows: vec![Vec::new(); m],
        }
    }

    /// Builds the map in one pass over the response matrix, harvesting
    /// each task's responder list — the same `O(Σ_t r_t²)` discipline
    /// as [`crate::PairCache::from_matrix`], but touching only the
    /// pairs that actually co-occur.
    pub fn from_matrix(data: &crate::ResponseMatrix) -> Self {
        let mut map = Self::empty(data.n_workers());
        for task in data.tasks() {
            map.harvest_task(data.task_responses(task));
        }
        map
    }

    /// Number of workers covered.
    pub fn n_workers(&self) -> usize {
        self.rows.len()
    }

    /// Number of distinct co-occurring (unordered) pairs stored.
    pub fn n_pairs(&self) -> usize {
        self.rows.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Bytes resident in the adjacency rows (capacity, not length —
    /// slack from growth is real memory). The scaling benchmark's
    /// pair-state measurement.
    pub fn table_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<Vec<PairEntry>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<PairEntry>())
                .sum::<usize>()
    }

    /// The workers sharing at least one task with `worker`, ascending
    /// by id — the pairing candidate scan's fast path.
    pub fn co_occurring(&self, worker: WorkerId) -> impl Iterator<Item = WorkerId> + '_ {
        self.rows[worker.index()]
            .iter()
            .map(|&(p, _, _)| WorkerId(p))
    }

    /// The stored statistics for a pair; pairs that never co-occurred
    /// read as zero.
    pub fn get(&self, a: WorkerId, b: WorkerId) -> PairStats {
        debug_assert!(a != b, "pair map has no diagonal");
        let (common, agree) = match self.rows[a.index()].binary_search_by_key(&b.0, |&(p, _, _)| p)
        {
            Ok(pos) => {
                let (_, c, g) = self.rows[a.index()][pos];
                (c, g)
            }
            Err(_) => (0, 0),
        };
        PairStats {
            common_tasks: common as usize,
            agreements: agree as usize,
        }
    }

    /// Adds one `(common, agreement)` observation to both directions
    /// of the pair.
    fn bump(&mut self, a: u32, b: u32, agree: bool) {
        self.bump_directed(a, b, agree);
        self.bump_directed(b, a, agree);
    }

    fn bump_directed(&mut self, from: u32, to: u32, agree: bool) {
        let row = &mut self.rows[from as usize];
        match row.binary_search_by_key(&to, |&(p, _, _)| p) {
            Ok(pos) => {
                row[pos].1 += 1;
                row[pos].2 += u32::from(agree);
            }
            Err(pos) => row.insert(pos, (to, 1, u32::from(agree))),
        }
    }

    /// Folds one task's worker-sorted responder list into the map;
    /// mirrors [`crate::PairCache::harvest_task`].
    pub(crate) fn harvest_task(&mut self, responders: &[(u32, Label)]) {
        for (i, &(wa, la)) in responders.iter().enumerate() {
            for &(wb, lb) in &responders[i + 1..] {
                self.bump(wa, wb, la == lb);
            }
        }
    }

    /// Updates the map for a new response by `worker` with `label`,
    /// given the task's *other* responders (the per-task list
    /// **before** the response is inserted); mirrors
    /// [`crate::PairCache::record_response`].
    pub fn record_response(&mut self, worker: WorkerId, label: Label, others: &[(u32, Label)]) {
        for &(other, other_label) in others {
            if other == worker.0 {
                continue;
            }
            self.bump(worker.0, other, other_label == label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PairCache, ResponseMatrix, ResponseMatrixBuilder, TaskId};

    fn sample() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(5, 12, 2);
        let mut state = 77u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for w in 0..4u32 {
            for t in 0..12u32 {
                if next() % 10 < 6 {
                    b.push(WorkerId(w), TaskId(t), Label((next() % 2) as u16))
                        .unwrap();
                }
            }
        }
        // Worker 4 stays silent: every pair involving it must read 0.
        b.build().unwrap()
    }

    #[test]
    fn matches_dense_cache_everywhere() {
        let data = sample();
        let sparse = PairMap::from_matrix(&data);
        let dense = PairCache::from_matrix(&data);
        assert_eq!(sparse.n_workers(), 5);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a == b {
                    continue;
                }
                assert_eq!(
                    sparse.get(WorkerId(a), WorkerId(b)),
                    dense.get(WorkerId(a), WorkerId(b)),
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn co_occurring_lists_exactly_the_nonzero_pairs() {
        let data = sample();
        let sparse = PairMap::from_matrix(&data);
        for a in 0..5u32 {
            let listed: Vec<u32> = sparse.co_occurring(WorkerId(a)).map(|w| w.0).collect();
            let mut expect: Vec<u32> = (0..5u32)
                .filter(|&b| {
                    b != a && crate::pair_stats(&data, WorkerId(a), WorkerId(b)).common_tasks > 0
                })
                .collect();
            expect.sort_unstable();
            assert_eq!(listed, expect, "worker {a}");
        }
        assert_eq!(sparse.co_occurring(WorkerId(4)).count(), 0);
    }

    #[test]
    fn incremental_matches_batch_harvest() {
        let data = sample();
        let batch = PairMap::from_matrix(&data);
        let mut streamed = PairMap::empty(5);
        for t in data.tasks() {
            let mut so_far: Vec<(u32, Label)> = Vec::new();
            for &(w, label) in data.task_responses(t) {
                streamed.record_response(WorkerId(w), label, &so_far);
                so_far.push((w, label));
            }
        }
        assert_eq!(streamed, batch);
    }

    #[test]
    fn empty_and_absent_pairs_read_zero() {
        let map = PairMap::empty(3);
        assert_eq!(map.n_pairs(), 0);
        assert_eq!(map.get(WorkerId(0), WorkerId(2)).common_tasks, 0);
        assert_eq!(map.get(WorkerId(0), WorkerId(2)).agreement_rate(), None);
    }

    #[test]
    fn pair_count_and_bytes_track_the_data() {
        let data = sample();
        let sparse = PairMap::from_matrix(&data);
        let nonzero = (0..5u32)
            .flat_map(|a| ((a + 1)..5u32).map(move |b| (a, b)))
            .filter(|&(a, b)| crate::pair_stats(&data, WorkerId(a), WorkerId(b)).common_tasks > 0)
            .count();
        assert_eq!(sparse.n_pairs(), nonzero);
        assert!(sparse.table_bytes() > 0);
    }
}
