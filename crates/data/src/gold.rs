//! Gold-standard labels and empirical worker statistics.
//!
//! The real-data experiments (Figures 3–5) do not know true worker
//! error rates; following the paper they use the fraction of
//! gold-standard tasks each worker got wrong as a proxy, and for the
//! k-ary case the empirical confusion matrix
//! `P̂ᵢ[j₁,j₂] = #(truth=j₁, response=j₂) / #(truth=j₁)`.

use crate::{Label, ResponseMatrix, TaskId, WorkerId};
use crowd_linalg::Matrix;

/// True labels for (a subset of) tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldStandard {
    labels: Vec<Option<Label>>,
}

impl GoldStandard {
    /// Full gold standard: one true label per task.
    pub fn complete(labels: Vec<Label>) -> Self {
        Self {
            labels: labels.into_iter().map(Some).collect(),
        }
    }

    /// Partial gold standard over `n_tasks` tasks.
    pub fn partial(n_tasks: usize, known: impl IntoIterator<Item = (TaskId, Label)>) -> Self {
        let mut labels = vec![None; n_tasks];
        for (t, l) in known {
            labels[t.index()] = Some(l);
        }
        Self { labels }
    }

    /// The true label of a task, if known.
    pub fn label(&self, task: TaskId) -> Option<Label> {
        self.labels.get(task.index()).copied().flatten()
    }

    /// Number of tasks covered by the gold standard.
    pub fn known_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Number of tasks (known or not).
    pub fn n_tasks(&self) -> usize {
        self.labels.len()
    }

    /// Empirical error rate of a worker: the fraction of its responses
    /// on gold tasks that disagree with the gold label. `None` if the
    /// worker attempted no gold task.
    pub fn worker_error_rate(&self, data: &ResponseMatrix, worker: WorkerId) -> Option<f64> {
        let mut attempted = 0usize;
        let mut wrong = 0usize;
        for &(t, label) in data.worker_responses(worker) {
            if let Some(truth) = self.label(TaskId(t)) {
                attempted += 1;
                if truth != label {
                    wrong += 1;
                }
            }
        }
        if attempted == 0 {
            None
        } else {
            Some(wrong as f64 / attempted as f64)
        }
    }

    /// Number of (attempted gold tasks, errors) for a worker.
    pub fn worker_error_counts(&self, data: &ResponseMatrix, worker: WorkerId) -> (usize, usize) {
        let mut attempted = 0usize;
        let mut wrong = 0usize;
        for &(t, label) in data.worker_responses(worker) {
            if let Some(truth) = self.label(TaskId(t)) {
                attempted += 1;
                if truth != label {
                    wrong += 1;
                }
            }
        }
        (attempted, wrong)
    }

    /// Raw confusion *counts* of a worker: entry `(j₁, j₂)` is the
    /// number of gold tasks with truth `r_j₁` the worker answered
    /// `r_j₂`. Lets callers distinguish observed zeros from unobserved
    /// rows.
    pub fn worker_confusion_counts(&self, data: &ResponseMatrix, worker: WorkerId) -> Matrix {
        let k = data.arity() as usize;
        let mut counts = Matrix::zeros(k, k);
        for &(t, label) in data.worker_responses(worker) {
            if let Some(truth) = self.label(TaskId(t)) {
                let v = counts.get(truth.index(), label.index()) + 1.0;
                counts.set(truth.index(), label.index(), v);
            }
        }
        counts
    }

    /// Empirical k×k confusion matrix of a worker:
    /// `row j₁, column j₂ = P̂(response = r_j₂ | truth = r_j₁)`.
    ///
    /// Rows with no observations are left as the identity row (the
    /// best-guess prior that the worker is accurate), mirroring how the
    /// paper's evaluation treats response probabilities it cannot
    /// measure.
    pub fn worker_confusion(&self, data: &ResponseMatrix, worker: WorkerId) -> Matrix {
        let k = data.arity() as usize;
        let mut counts = Matrix::zeros(k, k);
        for &(t, label) in data.worker_responses(worker) {
            if let Some(truth) = self.label(TaskId(t)) {
                let v = counts.get(truth.index(), label.index()) + 1.0;
                counts.set(truth.index(), label.index(), v);
            }
        }
        let mut out = Matrix::zeros(k, k);
        for r in 0..k {
            let row_sum: f64 = counts.row(r).iter().sum();
            if row_sum == 0.0 {
                out.set(r, r, 1.0);
            } else {
                for c in 0..k {
                    out.set(r, c, counts.get(r, c) / row_sum);
                }
            }
        }
        out
    }

    /// Empirical selectivity: the fraction of known gold labels equal to
    /// each label value.
    pub fn selectivity(&self, arity: u16) -> Vec<f64> {
        let mut counts = vec![0usize; arity as usize];
        let mut total = 0usize;
        for l in self.labels.iter().flatten() {
            counts[l.index()] += 1;
            total += 1;
        }
        if total == 0 {
            return vec![1.0 / arity as f64; arity as usize];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseMatrixBuilder;

    fn setup() -> (ResponseMatrix, GoldStandard) {
        // 2 workers, 4 tasks, arity 2. Truth: 0,1,0,1.
        // w0 answers all correctly except task 3.
        // w1 answers tasks 0..2 and is wrong on 0 and 1.
        let mut b = ResponseMatrixBuilder::new(2, 4, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(1), Label(1)).unwrap();
        b.push(WorkerId(0), TaskId(2), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(3), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(2), Label(0)).unwrap();
        let data = b.build().unwrap();
        let gold = GoldStandard::complete(vec![Label(0), Label(1), Label(0), Label(1)]);
        (data, gold)
    }

    #[test]
    fn error_rates() {
        let (data, gold) = setup();
        assert!((gold.worker_error_rate(&data, WorkerId(0)).unwrap() - 0.25).abs() < 1e-15);
        assert!((gold.worker_error_rate(&data, WorkerId(1)).unwrap() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(gold.worker_error_counts(&data, WorkerId(0)), (4, 1));
    }

    #[test]
    fn partial_gold_only_counts_known_tasks() {
        let (data, _) = setup();
        let gold = GoldStandard::partial(4, [(TaskId(0), Label(0)), (TaskId(3), Label(1))]);
        assert_eq!(gold.known_count(), 2);
        assert_eq!(gold.n_tasks(), 4);
        assert_eq!(gold.label(TaskId(1)), None);
        // w0 attempted both known tasks, wrong on task 3.
        assert!((gold.worker_error_rate(&data, WorkerId(0)).unwrap() - 0.5).abs() < 1e-15);
        // w1 attempted only task 0 among known tasks, and was wrong.
        assert!((gold.worker_error_rate(&data, WorkerId(1)).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn no_gold_overlap_gives_none() {
        let (data, _) = setup();
        let gold = GoldStandard::partial(4, []);
        assert_eq!(gold.worker_error_rate(&data, WorkerId(0)), None);
    }

    #[test]
    fn confusion_matrix_rows_are_distributions() {
        let (data, gold) = setup();
        let p = gold.worker_confusion(&data, WorkerId(1));
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Truth 0 appeared twice for w1 (tasks 0 and 2): responses 1, 0.
        assert!((p.get(0, 0) - 0.5).abs() < 1e-15);
        assert!((p.get(0, 1) - 0.5).abs() < 1e-15);
        // Truth 1 appeared once (task 1): response 0.
        assert!((p.get(1, 0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unobserved_truth_rows_default_to_identity() {
        let mut b = ResponseMatrixBuilder::new(1, 1, 3);
        b.push(WorkerId(0), TaskId(0), Label(2)).unwrap();
        let data = b.build().unwrap();
        let gold = GoldStandard::complete(vec![Label(2)]);
        let p = gold.worker_confusion(&data, WorkerId(0));
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(1, 1), 1.0);
        assert_eq!(p.get(2, 2), 1.0);
    }

    #[test]
    fn selectivity_counts_labels() {
        let gold = GoldStandard::complete(vec![Label(0), Label(1), Label(0), Label(1)]);
        let s = gold.selectivity(2);
        assert_eq!(s, vec![0.5, 0.5]);
        let empty = GoldStandard::partial(3, []);
        assert_eq!(empty.selectivity(4), vec![0.25; 4]);
    }
}
