//! Property-based tests on the data-model invariants: overlap scans,
//! the pair cache, counts tensors and CSV round-trips must all agree
//! with brute-force recomputation on arbitrary sparse matrices.

use crowd_data::{
    AttemptPattern, CountsTensor, Label, PairCache, ResponseMatrix, ResponseMatrixBuilder,
    TaskId, WorkerId, majority_vote, pair_stats, triple_joint_labels, triple_overlap,
};
use proptest::prelude::*;

/// Strategy: an arbitrary sparse response matrix. Each (worker, task)
/// cell is present with probability ~0.6 and carries a random label.
fn sparse_matrix(
    max_workers: usize,
    max_tasks: usize,
    arity: u16,
) -> impl Strategy<Value = ResponseMatrix> {
    (2..=max_workers, 2..=max_tasks).prop_flat_map(move |(m, n)| {
        proptest::collection::vec(proptest::option::weighted(0.6, 0..arity), m * n).prop_map(
            move |cells| {
                let mut b = ResponseMatrixBuilder::new(m, n, arity);
                for (i, cell) in cells.iter().enumerate() {
                    if let Some(label) = cell {
                        let (w, t) = (i / n, i % n);
                        b.push(WorkerId(w as u32), TaskId(t as u32), Label(*label))
                            .expect("generated ids are valid");
                    }
                }
                b.build().expect("generated cells are unique")
            },
        )
    })
}

/// Brute-force pair statistics straight from `response()` lookups.
fn brute_pair(data: &ResponseMatrix, a: WorkerId, b: WorkerId) -> (usize, usize) {
    let mut common = 0;
    let mut agree = 0;
    for t in 0..data.n_tasks() as u32 {
        if let (Some(x), Some(y)) =
            (data.response(a, TaskId(t)), data.response(b, TaskId(t)))
        {
            common += 1;
            if x == y {
                agree += 1;
            }
        }
    }
    (common, agree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge-scan pair statistics equal brute force, and are
    /// symmetric in the worker order.
    #[test]
    fn pair_stats_match_brute_force(data in sparse_matrix(6, 25, 3)) {
        for a in 0..data.n_workers() as u32 {
            for b in 0..data.n_workers() as u32 {
                let s = pair_stats(&data, WorkerId(a), WorkerId(b));
                let (common, agree) = brute_pair(&data, WorkerId(a), WorkerId(b));
                prop_assert_eq!(s.common_tasks, common);
                prop_assert_eq!(s.agreements, agree);
                let t = pair_stats(&data, WorkerId(b), WorkerId(a));
                prop_assert_eq!(s.common_tasks, t.common_tasks);
                prop_assert_eq!(s.agreements, t.agreements);
            }
        }
    }

    /// The pair cache agrees with per-pair merge scans for every pair.
    #[test]
    fn pair_cache_matches_scans(data in sparse_matrix(6, 25, 2)) {
        let cache = PairCache::from_matrix(&data);
        for a in 0..data.n_workers() as u32 {
            for b in 0..data.n_workers() as u32 {
                if a == b { continue; }
                let direct = pair_stats(&data, WorkerId(a), WorkerId(b));
                let cached = cache.get(WorkerId(a), WorkerId(b));
                prop_assert_eq!(direct, cached);
            }
        }
    }

    /// Replaying responses one at a time through the incremental cache
    /// reproduces the batch cache (the invariant the streaming
    /// evaluator relies on).
    #[test]
    fn incremental_cache_matches_batch(data in sparse_matrix(5, 20, 2)) {
        let batch = PairCache::from_matrix(&data);
        let mut incremental = PairCache::empty(data.n_workers());
        // Replay grouped by task: each arriving response sees the
        // earlier responses of the same task.
        for t in 0..data.n_tasks() as u32 {
            let mut so_far: Vec<(u32, Label)> = Vec::new();
            for (w, label) in data.task_responses(TaskId(t)) {
                incremental.record_response(WorkerId(*w), *label, &so_far);
                so_far.push((*w, *label));
            }
        }
        for a in 0..data.n_workers() as u32 {
            for b in (a + 1)..data.n_workers() as u32 {
                prop_assert_eq!(
                    batch.get(WorkerId(a), WorkerId(b)),
                    incremental.get(WorkerId(a), WorkerId(b))
                );
            }
        }
    }

    /// Triple overlap and joint labels agree; the overlap equals the
    /// joint-label count; the tensor's all-three group equals both.
    #[test]
    fn triple_views_are_consistent(data in sparse_matrix(5, 25, 3)) {
        let (a, b, c) = (WorkerId(0), WorkerId(1), WorkerId(2));
        if data.n_workers() < 3 { return Ok(()); }
        let overlap = triple_overlap(&data, a, b, c);
        let joint = triple_joint_labels(&data, a, b, c);
        prop_assert_eq!(overlap.common_tasks, joint.len());
        let counts = CountsTensor::from_matrix(&data, a, b, c);
        prop_assert_eq!(counts.n_all_three() as usize, joint.len());
        // Every entry of the all-three block is a count of a joint
        // label combination; their totals match.
        let k = counts.arity();
        let mut block_total = 0.0;
        for x in 1..=k {
            for y in 1..=k {
                for z in 1..=k {
                    block_total += counts.get(x, y, z);
                }
            }
        }
        prop_assert_eq!(block_total as usize, joint.len());
    }

    /// The counts tensor partitions every response-bearing task into
    /// exactly one attempt group; group totals sum to the number of
    /// tasks attempted by at least one of the three workers.
    #[test]
    fn tensor_groups_partition_tasks(data in sparse_matrix(4, 30, 2)) {
        let (a, b, c) = (WorkerId(0), WorkerId(1), WorkerId(2));
        if data.n_workers() < 3 { return Ok(()); }
        let counts = CountsTensor::from_matrix(&data, a, b, c);
        let group_sum: f64 = AttemptPattern::all()
            .filter(|p| p.worker_count() >= 1)
            .map(|p| counts.group_total(p))
            .sum();
        let mut expected = 0;
        for t in 0..data.n_tasks() as u32 {
            let touched = [a, b, c]
                .iter()
                .any(|&w| data.response(w, TaskId(t)).is_some());
            if touched {
                expected += 1;
            }
        }
        prop_assert_eq!(group_sum as usize, expected);
    }

    /// CSV round-trips preserve the matrix exactly.
    #[test]
    fn csv_roundtrip_is_identity(data in sparse_matrix(6, 20, 4)) {
        let mut buf = Vec::new();
        crowd_data::csv::write_responses(&data, &mut buf).unwrap();
        let reloaded = crowd_data::csv::read_responses(buf.as_slice()).unwrap();
        prop_assert_eq!(&reloaded, &data);
    }

    /// `retain_workers` keeps exactly the selected workers' responses
    /// and reindexes densely.
    #[test]
    fn retain_workers_projects_responses(data in sparse_matrix(6, 20, 2)) {
        let (kept_data, kept_ids) = data.retain_workers(|w| w.0 % 2 == 0);
        prop_assert_eq!(kept_data.n_workers(), kept_ids.len());
        for (new_idx, old_id) in kept_ids.iter().enumerate() {
            prop_assert_eq!(
                kept_data.worker_responses(WorkerId(new_idx as u32)),
                data.worker_responses(*old_id)
            );
        }
        let total: usize =
            kept_ids.iter().map(|&w| data.worker_responses(w).len()).sum();
        prop_assert_eq!(kept_data.n_responses(), total);
    }

    /// Majority vote: the winner's tally is maximal, and unanimous
    /// tasks elect the unanimous label.
    #[test]
    fn majority_vote_invariants(data in sparse_matrix(5, 20, 3)) {
        for t in 0..data.n_tasks() as u32 {
            let responses = data.task_responses(TaskId(t));
            let outcome = majority_vote(&data, TaskId(t));
            if responses.is_empty() {
                prop_assert!(outcome.label_or_tiebreak().is_none());
                continue;
            }
            let winner = outcome.label_or_tiebreak().expect("non-empty task");
            let tally = |l: Label| responses.iter().filter(|(_, x)| *x == l).count();
            for (_, label) in responses {
                prop_assert!(tally(winner) >= tally(*label));
            }
            if responses.iter().all(|(_, l)| *l == responses[0].1) {
                prop_assert_eq!(winner, responses[0].1);
                prop_assert!(outcome.is_strict() || responses.is_empty());
            }
        }
    }
}
