//! Property-based tests on the data-model invariants: overlap scans,
//! the pair cache, counts tensors and CSV round-trips must all agree
//! with brute-force recomputation on arbitrary sparse matrices.

use crowd_data::{
    AnchoredOverlap, AnchoredScratch, AttemptPattern, CountsTensor, Label, OverlapIndex,
    OverlapSource, PairBackend, PairCache, PairMap, PeerGram, PeerGramScratch, Response,
    ResponseMatrix, ResponseMatrixBuilder, StreamingIndex, TaskId, TriplePairGram, WorkerId,
    majority_vote, pair_stats, triple_joint_labels, triple_joint_labels_optional, triple_overlap,
};
use proptest::prelude::*;

/// Deterministic Fisher-Yates shuffle (the vendored proptest has no
/// shuffle strategy; a seeded LCG keeps failures reproducible).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        items.swap(i, j);
    }
}

/// Strategy: an arbitrary sparse response matrix. Each (worker, task)
/// cell is present with probability ~0.6 and carries a random label.
fn sparse_matrix(
    max_workers: usize,
    max_tasks: usize,
    arity: u16,
) -> impl Strategy<Value = ResponseMatrix> {
    (2..=max_workers, 2..=max_tasks).prop_flat_map(move |(m, n)| {
        proptest::collection::vec(proptest::option::weighted(0.6, 0..arity), m * n).prop_map(
            move |cells| {
                let mut b = ResponseMatrixBuilder::new(m, n, arity);
                for (i, cell) in cells.iter().enumerate() {
                    if let Some(label) = cell {
                        let (w, t) = (i / n, i % n);
                        b.push(WorkerId(w as u32), TaskId(t as u32), Label(*label))
                            .expect("generated ids are valid");
                    }
                }
                b.build().expect("generated cells are unique")
            },
        )
    })
}

/// Brute-force pair statistics straight from `response()` lookups.
fn brute_pair(data: &ResponseMatrix, a: WorkerId, b: WorkerId) -> (usize, usize) {
    let mut common = 0;
    let mut agree = 0;
    for t in 0..data.n_tasks() as u32 {
        if let (Some(x), Some(y)) = (data.response(a, TaskId(t)), data.response(b, TaskId(t))) {
            common += 1;
            if x == y {
                agree += 1;
            }
        }
    }
    (common, agree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge-scan pair statistics equal brute force, and are
    /// symmetric in the worker order.
    #[test]
    fn pair_stats_match_brute_force(data in sparse_matrix(6, 25, 3)) {
        for a in 0..data.n_workers() as u32 {
            for b in 0..data.n_workers() as u32 {
                let s = pair_stats(&data, WorkerId(a), WorkerId(b));
                let (common, agree) = brute_pair(&data, WorkerId(a), WorkerId(b));
                prop_assert_eq!(s.common_tasks, common);
                prop_assert_eq!(s.agreements, agree);
                let t = pair_stats(&data, WorkerId(b), WorkerId(a));
                prop_assert_eq!(s.common_tasks, t.common_tasks);
                prop_assert_eq!(s.agreements, t.agreements);
            }
        }
    }

    /// The pair cache agrees with per-pair merge scans for every pair.
    #[test]
    fn pair_cache_matches_scans(data in sparse_matrix(6, 25, 2)) {
        let cache = PairCache::from_matrix(&data);
        for a in 0..data.n_workers() as u32 {
            for b in 0..data.n_workers() as u32 {
                if a == b { continue; }
                let direct = pair_stats(&data, WorkerId(a), WorkerId(b));
                let cached = cache.get(WorkerId(a), WorkerId(b));
                prop_assert_eq!(direct, cached);
            }
        }
    }

    /// Replaying responses one at a time through the incremental cache
    /// reproduces the batch cache (the invariant the streaming
    /// evaluator relies on).
    #[test]
    fn incremental_cache_matches_batch(data in sparse_matrix(5, 20, 2)) {
        let batch = PairCache::from_matrix(&data);
        let mut incremental = PairCache::empty(data.n_workers());
        // Replay grouped by task: each arriving response sees the
        // earlier responses of the same task.
        for t in 0..data.n_tasks() as u32 {
            let mut so_far: Vec<(u32, Label)> = Vec::new();
            for (w, label) in data.task_responses(TaskId(t)) {
                incremental.record_response(WorkerId(*w), *label, &so_far);
                so_far.push((*w, *label));
            }
        }
        for a in 0..data.n_workers() as u32 {
            for b in (a + 1)..data.n_workers() as u32 {
                prop_assert_eq!(
                    batch.get(WorkerId(a), WorkerId(b)),
                    incremental.get(WorkerId(a), WorkerId(b))
                );
            }
        }
    }

    /// Triple overlap and joint labels agree; the overlap equals the
    /// joint-label count; the tensor's all-three group equals both.
    #[test]
    fn triple_views_are_consistent(data in sparse_matrix(5, 25, 3)) {
        let (a, b, c) = (WorkerId(0), WorkerId(1), WorkerId(2));
        if data.n_workers() < 3 { return Ok(()); }
        let overlap = triple_overlap(&data, a, b, c);
        let joint = triple_joint_labels(&data, a, b, c);
        prop_assert_eq!(overlap.common_tasks, joint.len());
        let counts = CountsTensor::from_matrix(&data, a, b, c);
        prop_assert_eq!(counts.n_all_three() as usize, joint.len());
        // Every entry of the all-three block is a count of a joint
        // label combination; their totals match.
        let k = counts.arity();
        let mut block_total = 0.0;
        for x in 1..=k {
            for y in 1..=k {
                for z in 1..=k {
                    block_total += counts.get(x, y, z);
                }
            }
        }
        prop_assert_eq!(block_total as usize, joint.len());
    }

    /// The counts tensor partitions every response-bearing task into
    /// exactly one attempt group; group totals sum to the number of
    /// tasks attempted by at least one of the three workers.
    #[test]
    fn tensor_groups_partition_tasks(data in sparse_matrix(4, 30, 2)) {
        let (a, b, c) = (WorkerId(0), WorkerId(1), WorkerId(2));
        if data.n_workers() < 3 { return Ok(()); }
        let counts = CountsTensor::from_matrix(&data, a, b, c);
        let group_sum: f64 = AttemptPattern::all()
            .filter(|p| p.worker_count() >= 1)
            .map(|p| counts.group_total(p))
            .sum();
        let mut expected = 0;
        for t in 0..data.n_tasks() as u32 {
            let touched = [a, b, c]
                .iter()
                .any(|&w| data.response(w, TaskId(t)).is_some());
            if touched {
                expected += 1;
            }
        }
        prop_assert_eq!(group_sum as usize, expected);
    }

    /// CSV round-trips preserve the matrix exactly.
    #[test]
    fn csv_roundtrip_is_identity(data in sparse_matrix(6, 20, 4)) {
        let mut buf = Vec::new();
        crowd_data::csv::write_responses(&data, &mut buf).unwrap();
        let reloaded = crowd_data::csv::read_responses(buf.as_slice()).unwrap();
        prop_assert_eq!(&reloaded, &data);
    }

    /// `retain_workers` keeps exactly the selected workers' responses
    /// and reindexes densely.
    #[test]
    fn retain_workers_projects_responses(data in sparse_matrix(6, 20, 2)) {
        let (kept_data, kept_ids) = data.retain_workers(|w| w.0 % 2 == 0);
        prop_assert_eq!(kept_data.n_workers(), kept_ids.len());
        for (new_idx, old_id) in kept_ids.iter().enumerate() {
            prop_assert_eq!(
                kept_data.worker_responses(WorkerId(new_idx as u32)),
                data.worker_responses(*old_id)
            );
        }
        let total: usize =
            kept_ids.iter().map(|&w| data.worker_responses(w).len()).sum();
        prop_assert_eq!(kept_data.n_responses(), total);
    }

    /// The one-pass [`OverlapIndex`] reproduces every naive merge-scan
    /// statistic exactly: pair counts and agreements for every pair,
    /// triple overlaps for every triple, and CSR rows equal to the
    /// matrix's own adjacency — the invariant every indexed estimator
    /// path rests on.
    #[test]
    fn overlap_index_matches_merge_scans(data in sparse_matrix(6, 25, 3)) {
        let index = OverlapIndex::from_matrix(&data);
        prop_assert_eq!(OverlapSource::n_workers(&index), data.n_workers());
        prop_assert_eq!(index.n_tasks(), data.n_tasks());
        prop_assert_eq!(index.n_responses(), data.n_responses());
        let m = data.n_workers() as u32;
        for a in 0..m {
            prop_assert_eq!(
                index.worker_responses(WorkerId(a)),
                data.worker_responses(WorkerId(a))
            );
            for b in 0..m {
                if a == b { continue; }
                prop_assert_eq!(
                    index.pair(WorkerId(a), WorkerId(b)),
                    pair_stats(&data, WorkerId(a), WorkerId(b))
                );
                for c in 0..m {
                    if c == a || c == b { continue; }
                    prop_assert_eq!(
                        index.triple(WorkerId(a), WorkerId(b), WorkerId(c)),
                        triple_overlap(&data, WorkerId(a), WorkerId(b), WorkerId(c))
                    );
                }
            }
        }
        for t in 0..data.n_tasks() as u32 {
            prop_assert_eq!(index.task_responses(TaskId(t)), data.task_responses(TaskId(t)));
        }
    }

    /// The anchored bitset view answers exactly the naive triple and
    /// shared-task queries, for every anchor.
    #[test]
    fn anchored_view_matches_naive_queries(data in sparse_matrix(6, 30, 2)) {
        let index = OverlapIndex::from_matrix(&data);
        let m = data.n_workers() as u32;
        for anchor in 0..m {
            let fast = index.anchored(WorkerId(anchor));
            let slow = data.anchored(WorkerId(anchor));
            let peers: Vec<WorkerId> =
                (0..m).filter(|&w| w != anchor).map(WorkerId).collect();
            for &a in &peers {
                for &b in &peers {
                    if a == b { continue; }
                    prop_assert_eq!(
                        fast.triple_common(a, b),
                        slow.triple_common(a, b),
                        "anchor {} pair ({:?},{:?})", anchor, a, b
                    );
                }
            }
            if peers.len() >= 4 {
                let four = &peers[..4];
                prop_assert_eq!(fast.common_among(four), slow.common_among(four));
            }
            prop_assert_eq!(
                fast.common_among(&[]),
                data.worker_task_count(WorkerId(anchor))
            );
        }
    }

    /// The union-merge joint view and the counts tensor built from the
    /// index are identical to their matrix-scan counterparts.
    #[test]
    fn indexed_joint_labels_and_tensor_match(data in sparse_matrix(5, 25, 3)) {
        if data.n_workers() < 3 { return Ok(()); }
        let index = OverlapIndex::from_matrix(&data);
        let (a, b, c) = (WorkerId(0), WorkerId(1), WorkerId(2));
        prop_assert_eq!(
            index.triple_joint_labels_optional(a, b, c),
            triple_joint_labels_optional(&data, a, b, c)
        );
        prop_assert_eq!(
            CountsTensor::from_index(&index, a, b, c),
            CountsTensor::from_matrix(&data, a, b, c)
        );
    }

    /// Differential test of the streaming append path: for random
    /// response streams ingested in a random order, the incrementally
    /// built [`OverlapIndex`] is **structurally identical** to
    /// `from_matrix` on the accumulated matrix — same adjacency rows,
    /// same pair table, same counters — and therefore answers every
    /// pair/triple/joint-label query identically.
    #[test]
    fn streamed_index_equals_batch_for_any_ingest_order(
        data in sparse_matrix(6, 25, 3),
        seed in 0u64..u64::MAX,
    ) {
        let batch = OverlapIndex::from_matrix(&data);
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed);
        let mut streamed = OverlapIndex::new(data.n_workers(), data.n_tasks(), data.arity());
        for r in &responses {
            streamed.record_response(*r).expect("stream is duplicate-free");
        }
        prop_assert_eq!(&streamed, &batch);
        // And at every prefix, the partial index equals a batch build
        // of the partial matrix.
        let cut = responses.len() / 2;
        let mut partial = OverlapIndex::new(data.n_workers(), data.n_tasks(), data.arity());
        let mut accumulated = ResponseMatrix::empty(
            data.n_workers(), data.n_tasks(), data.arity());
        for r in &responses[..cut] {
            partial.record_response(*r).unwrap();
            accumulated.insert(*r).unwrap();
        }
        prop_assert_eq!(&partial, &OverlapIndex::from_matrix(&accumulated));
    }

    /// The maintained anchored views of a [`StreamingIndex`] answer
    /// exactly what a fresh batch-built anchored view answers, for
    /// every anchor, at an arbitrary mid-stream point — slot order may
    /// differ (ingest order vs. task order) but every popcount query
    /// is permutation-invariant.
    #[test]
    fn streaming_views_match_batch_views_mid_stream(
        data in sparse_matrix(5, 20, 2),
        seed in 0u64..u64::MAX,
    ) {
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed);
        let cut = responses.len() * 2 / 3;
        let mut stream = StreamingIndex::new(data.n_workers(), data.n_tasks(), data.arity());
        let mut accumulated = ResponseMatrix::empty(
            data.n_workers(), data.n_tasks(), data.arity());
        for r in &responses[..cut] {
            stream.record_response(*r).unwrap();
            accumulated.insert(*r).unwrap();
        }
        let batch = OverlapIndex::from_matrix(&accumulated);
        prop_assert_eq!(stream.index(), &batch);
        let m = data.n_workers() as u32;
        for anchor in 0..m {
            let maintained = stream.view(WorkerId(anchor));
            let fresh = batch.anchored(WorkerId(anchor));
            prop_assert_eq!(
                maintained.common_among(&[]),
                accumulated.worker_task_count(WorkerId(anchor))
            );
            for a in 0..m {
                prop_assert_eq!(
                    maintained.pair_common(WorkerId(a)),
                    fresh.pair_common(WorkerId(a)),
                    "anchor {} worker {}", anchor, a
                );
                for b in 0..m {
                    prop_assert_eq!(
                        maintained.triple_common(WorkerId(a), WorkerId(b)),
                        fresh.triple_common(WorkerId(a), WorkerId(b)),
                        "anchor {} pair ({},{})", anchor, a, b
                    );
                }
            }
            let peers: Vec<WorkerId> =
                (0..m).filter(|&w| w != anchor).map(WorkerId).collect();
            prop_assert_eq!(
                maintained.common_among(&peers),
                fresh.common_among(&peers)
            );
        }
    }

    /// Peer-scoped anchored views are **bit-identical** to the
    /// full-population [`OverlapIndex`] view on every in-scope query —
    /// `pair_common`, `triple_common` and `common_among` — for random
    /// instances and arbitrary peer subsets, with the scratch-reusing
    /// build agreeing too. Binary here; the k-ary (arity 3) twin below
    /// exercises the same guarantee on multi-label data.
    #[test]
    fn peer_scoped_batch_views_match_population_views(
        data in sparse_matrix(7, 25, 2),
        mask in 0u64..u64::MAX,
    ) {
        let index = OverlapIndex::from_matrix(&data);
        let m = data.n_workers() as u32;
        let mut scratch = AnchoredScratch::default();
        for anchor in 0..m {
            // An arbitrary subset of the other workers, from the mask.
            let peers: Vec<WorkerId> = (0..m)
                .filter(|&w| w != anchor && (mask >> (w % 64)) & 1 == 1)
                .map(WorkerId)
                .collect();
            let full = index.anchored(WorkerId(anchor));
            let scoped = index.anchored_for(WorkerId(anchor), &peers);
            let reused = index.anchored_for_in(WorkerId(anchor), &peers, &mut scratch);
            for &a in &peers {
                prop_assert_eq!(scoped.pair_common(a), full.pair_common(a));
                prop_assert_eq!(reused.pair_common(a), full.pair_common(a));
                for &b in &peers {
                    prop_assert_eq!(
                        scoped.triple_common(a, b),
                        full.triple_common(a, b),
                        "anchor {} pair ({:?},{:?})", anchor, a, b
                    );
                    prop_assert_eq!(
                        reused.triple_common(a, b),
                        full.triple_common(a, b),
                        "scratch anchor {} pair ({:?},{:?})", anchor, a, b
                    );
                }
            }
            prop_assert_eq!(scoped.common_among(&peers), full.common_among(&peers));
            prop_assert_eq!(reused.common_among(&peers), full.common_among(&peers));
            prop_assert_eq!(
                scoped.common_among(&[]),
                data.worker_task_count(WorkerId(anchor))
            );
        }
    }

    /// The k-ary twin of the test above: label arity must be invisible
    /// to the attempt-set masks.
    #[test]
    fn peer_scoped_batch_views_match_population_views_kary(
        data in sparse_matrix(6, 20, 3),
        mask in 0u64..u64::MAX,
    ) {
        let index = OverlapIndex::from_matrix(&data);
        let m = data.n_workers() as u32;
        for anchor in 0..m {
            let peers: Vec<WorkerId> = (0..m)
                .filter(|&w| w != anchor && (mask >> (w % 64)) & 1 == 1)
                .map(WorkerId)
                .collect();
            let full = index.anchored(WorkerId(anchor));
            let scoped = index.anchored_for(WorkerId(anchor), &peers);
            for &a in &peers {
                for &b in &peers {
                    prop_assert_eq!(scoped.triple_common(a, b), full.triple_common(a, b));
                }
            }
            prop_assert_eq!(scoped.common_among(&peers), full.common_among(&peers));
        }
    }

    /// Streaming: a peer-scoped maintained view anchored mid-stream
    /// and then maintained through the rest of an arbitrary ingest
    /// order answers every in-scope query exactly like a fresh batch
    /// build of the final data — with no further re-anchoring (the
    /// rebuild counter pins the "maintained, not rebuilt" claim).
    #[test]
    fn peer_scoped_streaming_views_stay_exact_across_ingest(
        data in sparse_matrix(6, 20, 3),
        seed in 0u64..u64::MAX,
        mask in 0u64..u64::MAX,
    ) {
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed);
        let cut = responses.len() / 2;
        let mut stream = StreamingIndex::new(data.n_workers(), data.n_tasks(), data.arity());
        for r in &responses[..cut] {
            stream.record_response(*r).unwrap();
        }
        let m = data.n_workers() as u32;
        let scopes: Vec<Vec<WorkerId>> = (0..m)
            .map(|anchor| {
                (0..m)
                    .filter(|&w| w != anchor && (mask >> (w % 64)) & 1 == 1)
                    .map(WorkerId)
                    .collect()
            })
            .collect();
        // Anchor every view mid-stream with its arbitrary peer scope.
        for anchor in 0..m {
            let _ = stream.anchored_for(WorkerId(anchor), &scopes[anchor as usize]);
        }
        let anchors_done = stream.reanchor_count();
        for r in &responses[cut..] {
            stream.record_response(*r).unwrap();
        }
        let batch = OverlapIndex::from_matrix(&data);
        for anchor in 0..m {
            let peers = &scopes[anchor as usize];
            let view = stream.anchored_for(WorkerId(anchor), peers);
            let fresh = batch.anchored(WorkerId(anchor));
            for &a in peers {
                prop_assert_eq!(
                    view.pair_common(a),
                    fresh.pair_common(a),
                    "anchor {} peer {:?}", anchor, a
                );
                for &b in peers {
                    prop_assert_eq!(
                        view.triple_common(a, b),
                        fresh.triple_common(a, b),
                        "anchor {} pair ({:?},{:?})", anchor, a, b
                    );
                }
            }
            prop_assert_eq!(view.common_among(peers), fresh.common_among(peers));
            prop_assert_eq!(
                view.common_among(&[]),
                data.worker_task_count(WorkerId(anchor))
            );
        }
        prop_assert_eq!(
            stream.reanchor_count(), anchors_done,
            "covered scopes must be maintained, never rebuilt"
        );
    }

    /// The sparse [`PairMap`] is observation-equivalent to the dense
    /// [`PairCache`] on arbitrary matrices: identical `(common,
    /// agreements)` for every co-occurring pair, absent pairs reading
    /// as zero, and the co-occurrence listing exactly the nonzero
    /// pairs — the invariant that lets the sharded pipeline swap the
    /// `O(m²)` table for co-occurring-pairs-only state.
    #[test]
    fn sparse_pair_map_matches_dense_cache(data in sparse_matrix(7, 25, 3)) {
        let sparse = PairMap::from_matrix(&data);
        let dense = PairCache::from_matrix(&data);
        prop_assert_eq!(sparse.n_workers(), data.n_workers());
        let m = data.n_workers() as u32;
        let mut nonzero = 0usize;
        for a in 0..m {
            for b in 0..m {
                if a == b { continue; }
                let s = sparse.get(WorkerId(a), WorkerId(b));
                prop_assert_eq!(s, dense.get(WorkerId(a), WorkerId(b)),
                    "pair ({},{})", a, b);
                if a < b && s.common_tasks > 0 { nonzero += 1; }
            }
            let listed: Vec<u32> =
                sparse.co_occurring(WorkerId(a)).map(|w| w.0).collect();
            let expect: Vec<u32> = (0..m)
                .filter(|&b| b != a
                    && dense.get(WorkerId(a), WorkerId(b)).common_tasks > 0)
                .collect();
            prop_assert_eq!(listed, expect, "worker {}", a);
        }
        prop_assert_eq!(sparse.n_pairs(), nonzero);
    }

    /// Replaying the stream response by response — in a random ingest
    /// order — leaves the sparse map identical to the batch harvest,
    /// exactly as the dense cache's differential test guarantees for
    /// the dense path. Ingest grouping mirrors production: each
    /// arriving response sees the task's earlier responders.
    #[test]
    fn sparse_pair_map_incremental_matches_batch(
        data in sparse_matrix(6, 20, 2),
        seed in 0u64..u64::MAX,
    ) {
        let batch = PairMap::from_matrix(&data);
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed);
        let mut streamed = PairMap::empty(data.n_workers());
        let mut accumulated =
            ResponseMatrix::empty(data.n_workers(), data.n_tasks(), data.arity());
        for r in &responses {
            streamed.record_response(r.worker, r.label, accumulated.task_responses(r.task));
            accumulated.insert(*r).unwrap();
        }
        prop_assert_eq!(&streamed, &batch);
    }

    /// A sparse-backed [`OverlapIndex`] — batch-built or streamed in a
    /// random order — answers every pair query identically to the
    /// dense default, and a scoped build agrees on every pair within
    /// its scope.
    #[test]
    fn sparse_backed_index_matches_dense(
        data in sparse_matrix(6, 20, 2),
        seed in 0u64..u64::MAX,
        mask in 0u64..u64::MAX,
    ) {
        let dense = OverlapIndex::from_matrix(&data);
        let sparse = OverlapIndex::from_matrix_with(&data, PairBackend::Sparse);
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed);
        let mut streamed = OverlapIndex::new_with(
            data.n_workers(), data.n_tasks(), data.arity(), PairBackend::Sparse);
        for r in &responses {
            streamed.record_response(*r).unwrap();
        }
        prop_assert_eq!(&streamed, &sparse);
        let m = data.n_workers() as u32;
        let scope: Vec<WorkerId> = (0..m)
            .filter(|&w| (mask >> (w % 64)) & 1 == 1)
            .map(WorkerId)
            .collect();
        let scoped = OverlapIndex::from_matrix_scoped(&data, &scope);
        for a in 0..m {
            for b in 0..m {
                if a == b { continue; }
                let expect = dense.pair(WorkerId(a), WorkerId(b));
                prop_assert_eq!(sparse.pair(WorkerId(a), WorkerId(b)), expect);
                if scope.contains(&WorkerId(a)) && scope.contains(&WorkerId(b)) {
                    prop_assert_eq!(
                        scoped.pair(WorkerId(a), WorkerId(b)), expect,
                        "scoped pair ({},{})", a, b
                    );
                }
            }
        }
    }

    /// The blocked [`PeerGram`] kernel equals per-pair
    /// `triple_common` queries entry for entry — diagonal (pair
    /// overlaps) included — on arbitrary sparse matrices, for every
    /// anchor, against both the naive scan substrate (which computes
    /// its gram through the per-pair trait default) and direct
    /// queries of the bitset view, with one scratch reused across all
    /// anchors. Binary and k-ary data share the code path, so the
    /// 3-ary strategy covers both.
    #[test]
    fn blocked_gram_matches_per_pair_queries(data in sparse_matrix(6, 40, 3)) {
        let index = OverlapIndex::from_matrix(&data);
        let m = data.n_workers() as u32;
        let mut gram = PeerGram::default();
        let mut scratch = PeerGramScratch::default();
        for anchor in 0..m {
            // An unsorted, duplicated peer list exercising the remap.
            let mut peers: Vec<WorkerId> =
                (0..m).filter(|&w| w != anchor).map(WorkerId).collect();
            peers.reverse();
            if let Some(&first) = peers.first() { peers.push(first); }
            let fast = index.anchored_for(WorkerId(anchor), &peers);
            fast.gram_into(&peers, &mut gram, &mut scratch);
            let slow = data.anchored(WorkerId(anchor));
            prop_assert_eq!(&gram, &slow.gram(&peers), "anchor {}", anchor);
            for &a in &peers {
                for &b in &peers {
                    prop_assert_eq!(
                        gram.get(a, b),
                        slow.triple_common(a, b),
                        "anchor {} pair ({:?},{:?})", anchor, a, b
                    );
                }
                prop_assert_eq!(gram.pair_common(a), fast.pair_common(a));
            }
        }
        // Empty and singleton peer sets are well-formed.
        let empty = index.anchored_for(WorkerId(0), &[]).gram(&[]);
        prop_assert_eq!(empty.dim(), 0);
        if m >= 2 {
            let one = [WorkerId(1)];
            let single = index.anchored_for(WorkerId(0), &one).gram(&one);
            prop_assert_eq!(single.dim(), 1);
            prop_assert_eq!(
                single.get(one[0], one[0]),
                pair_stats(&data, WorkerId(0), one[0]).common_tasks
            );
        }
    }

    /// The blocked pair-combined [`TriplePairGram`] (the k-ary `n₅`
    /// table) equals per-entry `common_among` queries, against the
    /// per-pair trait default on the naive scan substrate.
    #[test]
    fn blocked_pair_gram_matches_common_among(data in sparse_matrix(7, 35, 3)) {
        let m = data.n_workers() as u32;
        if m < 5 { return Ok(()); }
        let index = OverlapIndex::from_matrix(&data);
        let anchor = WorkerId(0);
        let peers: Vec<WorkerId> = (1..m).map(WorkerId).collect();
        let pairs: Vec<(WorkerId, WorkerId)> = peers.chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| (c[0], c[1]))
            .collect();
        let mut n5 = TriplePairGram::default();
        let mut scratch = PeerGramScratch::default();
        index
            .anchored_for(anchor, &peers)
            .pair_gram_into(&pairs, &mut n5, &mut scratch);
        let mut slow_n5 = TriplePairGram::default();
        data.anchored(anchor)
            .pair_gram_into(&pairs, &mut slow_n5, &mut scratch);
        prop_assert_eq!(&n5, &slow_n5);
        let slow = data.anchored(anchor);
        for (t1, &(a1, b1)) in pairs.iter().enumerate() {
            prop_assert_eq!(n5.get(t1, t1), slow.common_among(&[a1, b1]));
            for (t2, &(a2, b2)) in pairs.iter().enumerate().skip(t1 + 1) {
                prop_assert_eq!(
                    n5.get(t1, t2),
                    slow.common_among(&[a1, b1, a2, b2]),
                    "triples {} and {}", t1, t2
                );
                prop_assert_eq!(n5.get(t1, t2), n5.get(t2, t1));
            }
        }
    }

    /// The streaming view's **maintained** gram — materialized once,
    /// then patched bit by bit across further ingests in a random
    /// order — equals a fresh blocked build from the accumulated
    /// index at every prefix, without re-anchoring.
    #[test]
    fn streaming_gram_after_ingest_matches_fresh(
        data in sparse_matrix(6, 30, 2),
        seed in 0u64..u64::MAX,
    ) {
        let m = data.n_workers() as u32;
        if m < 4 { return Ok(()); }
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed);
        let cut = responses.len() / 2;

        let mut stream = StreamingIndex::new(data.n_workers(), data.n_tasks(), 2);
        for r in &responses[..cut] {
            stream.record_response(*r).unwrap();
        }
        let anchor = WorkerId(0);
        let peers: Vec<WorkerId> = (1..m).map(WorkerId).collect();
        // Materialize the maintained gram on the prefix...
        let before = stream.anchored_for(anchor, &peers).gram(&peers);
        prop_assert_eq!(
            &before,
            &stream.index().anchored_for(anchor, &peers).gram(&peers)
        );
        let reanchors = stream.reanchor_count();
        // ...ingest the rest (patching, never rebuilding)...
        for r in &responses[cut..] {
            stream.record_response(*r).unwrap();
        }
        // ...and the patched gram must equal a fresh blocked build
        // from the accumulated index, with zero re-anchors.
        let after = stream.anchored_for(anchor, &peers).gram(&peers);
        prop_assert_eq!(
            &after,
            &stream.index().anchored_for(anchor, &peers).gram(&peers)
        );
        prop_assert_eq!(stream.reanchor_count(), reanchors, "covered scope rebuilt");
        // Sub-scope extractions read the same maintained table.
        let sub = [WorkerId(1), WorkerId(3)];
        let sub_gram = stream.anchored_for(anchor, &sub).gram(&sub);
        for &a in &sub {
            for &b in &sub {
                prop_assert_eq!(sub_gram.get(a, b), after.get(a, b));
            }
        }
    }

    /// Majority vote: the winner's tally is maximal, and unanimous
    /// tasks elect the unanimous label.
    #[test]
    fn majority_vote_invariants(data in sparse_matrix(5, 20, 3)) {
        for t in 0..data.n_tasks() as u32 {
            let responses = data.task_responses(TaskId(t));
            let outcome = majority_vote(&data, TaskId(t));
            if responses.is_empty() {
                prop_assert!(outcome.label_or_tiebreak().is_none());
                continue;
            }
            let winner = outcome.label_or_tiebreak().expect("non-empty task");
            let tally = |l: Label| responses.iter().filter(|(_, x)| *x == l).count();
            for (_, label) in responses {
                prop_assert!(tally(winner) >= tally(*label));
            }
            if responses.iter().all(|(_, l)| *l == responses[0].1) {
                prop_assert_eq!(winner, responses[0].1);
                prop_assert!(outcome.is_strict() || responses.is_empty());
            }
        }
    }
}

/// Wide-mask lane pinning: with enough tasks that each bitset row
/// spans well past one SIMD step (600 tasks → ten 64-bit words, past
/// both the 8-word AVX-512 step and the 4-word AVX2 step, with a
/// ragged tail), the blocked gram built through the runtime-dispatched
/// `AndPopcount` kernel must equal per-pair `triple_common` queries
/// answered by the portable scalar path on the naive scan substrate.
/// Deterministic (seeded LCG) rather than a proptest case so the
/// wide matrices stay cheap in debug builds.
#[test]
fn wide_mask_gram_pins_simd_lanes_to_portable() {
    for seed in [3u64, 77, 991] {
        let (m, n) = (8usize, 600usize);
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut b = ResponseMatrixBuilder::new(m, n, 3);
        for w in 0..m as u32 {
            for t in 0..n as u32 {
                // ~70% fill keeps the AND'd masks dense enough that a
                // dropped SIMD step would change many entries.
                if next() % 10 < 7 {
                    b.push(WorkerId(w), TaskId(t), Label((next() % 3) as u16))
                        .expect("generated ids are valid");
                }
            }
        }
        let data = b.build().expect("generated cells are unique");
        let index = OverlapIndex::from_matrix(&data);
        let mut gram = PeerGram::default();
        let mut scratch = PeerGramScratch::default();
        for anchor in 0..m as u32 {
            let peers: Vec<WorkerId> = (0..m as u32)
                .filter(|&w| w != anchor)
                .map(WorkerId)
                .collect();
            index
                .anchored_for(WorkerId(anchor), &peers)
                .gram_into(&peers, &mut gram, &mut scratch);
            let slow = data.anchored(WorkerId(anchor));
            for &a in &peers {
                for &b in &peers {
                    assert_eq!(
                        gram.get(a, b),
                        slow.triple_common(a, b),
                        "seed {seed} anchor {anchor} pair ({a:?},{b:?})"
                    );
                }
            }
        }
    }
}
