//! Property tests for the checkpoint codec: random `StreamingIndex`
//! states round-trip byte-identically, and damaged bytes always
//! decode to typed errors — never panic.

use crowd_data::{
    CheckpointError, Label, OverlapSource, PairBackend, Response, StreamingIndex, TaskId, WorkerId,
};
use proptest::prelude::*;

/// A random streaming substrate: shape, backend, and a duplicate-free
/// response set applied in a data-dependent order.
fn streaming_state() -> impl Strategy<Value = StreamingIndex> {
    (2usize..=8, 2usize..=16, 2u16..=4, any::<bool>()).prop_flat_map(|(m, n, arity, sparse)| {
        proptest::collection::vec(proptest::option::weighted(0.4, 0..arity), m * n).prop_map(
            move |cells| {
                let backend = if sparse {
                    PairBackend::Sparse
                } else {
                    PairBackend::Dense
                };
                let mut s = StreamingIndex::new_with(m, n, arity, backend);
                for (i, cell) in cells.into_iter().enumerate() {
                    if let Some(label) = cell {
                        s.record_response(Response {
                            worker: WorkerId((i % m) as u32),
                            task: TaskId((i / m) as u32),
                            label: Label(label),
                        })
                        .expect("cells are duplicate-free by construction");
                    }
                }
                s
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// restore(checkpoint(s)) is bit-identical to s: equal index,
    /// equal epoch state, and a byte-identical re-encode.
    #[test]
    fn round_trip_is_byte_identical(original in streaming_state()) {
        let bytes = original.checkpoint();
        let restored = StreamingIndex::restore(&bytes).expect("own checkpoint must decode");
        prop_assert_eq!(restored.index(), original.index());
        prop_assert_eq!(restored.epoch(), original.epoch());
        for w in 0..original.index().n_workers() as u32 {
            prop_assert_eq!(
                restored.dirty_epoch(WorkerId(w)),
                original.dirty_epoch(WorkerId(w))
            );
        }
        prop_assert_eq!(restored.checkpoint(), bytes);
    }

    /// A restored substrate keeps serving identical overlap queries.
    #[test]
    fn restored_queries_match(original in streaming_state()) {
        let restored =
            StreamingIndex::restore(&original.checkpoint()).expect("own checkpoint must decode");
        let m = original.index().n_workers() as u32;
        for a in 0..m {
            for b in (a + 1)..m {
                prop_assert_eq!(
                    restored.pair(WorkerId(a), WorkerId(b)),
                    original.pair(WorkerId(a), WorkerId(b))
                );
            }
        }
    }

    /// Every strict prefix decodes to a typed error, never a panic —
    /// truncation hits either a length check or the checksum trailer.
    #[test]
    fn truncation_never_panics(original in streaming_state(), cut in 0.0f64..1.0) {
        let bytes = original.checkpoint();
        let len = ((bytes.len() as f64) * cut) as usize;
        let err = StreamingIndex::restore(&bytes[..len.min(bytes.len() - 1)])
            .expect_err("strict prefixes must fail");
        prop_assert!(matches!(
            err,
            CheckpointError::Truncated(_) | CheckpointError::ChecksumMismatch { .. }
        ));
    }

    /// Any single flipped bit in the body is caught by the checksum
    /// (or the magic check when it lands in the first eight bytes).
    #[test]
    fn corruption_never_panics(
        original in streaming_state(),
        at in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = original.checkpoint();
        let i = ((bytes.len() as f64) * at) as usize % bytes.len();
        bytes[i] ^= 1 << bit;
        match StreamingIndex::restore(&bytes) {
            // A flip in the checksum trailer itself, or in the body,
            // must surface as a typed refusal...
            Err(
                CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::BadMagic
                | CheckpointError::Truncated(_)
                | CheckpointError::Malformed(_)
                | CheckpointError::UnsupportedVersion(_)
                | CheckpointError::Invalid(_),
            ) => {}
            // ...and never as a silent success.
            Ok(_) => prop_assert!(false, "flipped bit {bit} at {i} decoded successfully"),
        }
    }

    /// Random garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(words in proptest::collection::vec(0u32..256, 0..512)) {
        let bytes: Vec<u8> = words.into_iter().map(|w| w as u8).collect();
        let _ = StreamingIndex::restore(&bytes);
    }
}
