//! Error type shared by all fallible linear-algebra routines.

use std::fmt;

/// Failure modes of the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes; carries `(rows_a, cols_a,
    /// rows_b, cols_b)` of the offending operands.
    ShapeMismatch {
        /// Rows of the left operand.
        rows_a: usize,
        /// Columns of the left operand.
        cols_a: usize,
        /// Rows of the right operand.
        rows_b: usize,
        /// Columns of the right operand.
        cols_b: usize,
    },
    /// A square-only operation (inverse, determinant, eigen) was invoked
    /// on a rectangular matrix.
    NotSquare {
        /// Rows of the operand.
        rows: usize,
        /// Columns of the operand.
        cols: usize,
    },
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot index where elimination broke down.
        pivot: usize,
    },
    /// Cholesky applied to a matrix that is not positive definite.
    NotPositiveDefinite {
        /// Index of the leading minor that failed.
        minor: usize,
    },
    /// The QR eigenvalue iteration failed to converge.
    NoConvergence {
        /// Number of sweeps/iterations attempted before giving up.
        iterations: usize,
    },
    /// The real-Schur iteration encountered a complex eigenvalue pair;
    /// the crowd-assessment moment matrices have real spectra so this
    /// indicates severely degenerate input.
    ComplexEigenvalues,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                rows_a,
                cols_a,
                rows_b,
                cols_b,
            } => write!(
                f,
                "shape mismatch: ({rows_a}x{cols_a}) is incompatible with ({rows_b}x{cols_b})"
            ),
            Self::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            Self::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            Self::NotPositiveDefinite { minor } => {
                write!(f, "matrix is not positive definite (leading minor {minor})")
            }
            Self::NoConvergence { iterations } => {
                write!(
                    f,
                    "eigen iteration failed to converge after {iterations} iterations"
                )
            }
            Self::ComplexEigenvalues => {
                write!(
                    f,
                    "matrix has complex eigenvalues; a real spectrum was required"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            rows_a: 2,
            cols_a: 3,
            rows_b: 4,
            cols_b: 5,
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
        let e = LinalgError::Singular { pivot: 1 };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::NotSquare { rows: 2, cols: 1 };
        assert!(e.to_string().contains("square"));
        let e = LinalgError::NotPositiveDefinite { minor: 3 };
        assert!(e.to_string().contains("positive definite"));
        let e = LinalgError::NoConvergence { iterations: 9 };
        assert!(e.to_string().contains("9"));
        assert!(
            LinalgError::ComplexEigenvalues
                .to_string()
                .contains("complex")
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::Singular { pivot: 0 },
            LinalgError::Singular { pivot: 0 }
        );
        assert_ne!(
            LinalgError::Singular { pivot: 0 },
            LinalgError::Singular { pivot: 1 }
        );
    }
}
