//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used to validate that assembled covariance matrices are PSD (after
//! ridge regularization) and to sample correlated Gaussian noise in
//! statistical tests of the delta method.

// Triangular solves read `x[j]` for j on one side of the pivot while
// writing `x[i]`; the index form mirrors the textbook algorithm and
// avoids split-borrow gymnastics.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; callers are expected to
    /// pass (numerically) symmetric input.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { minor: i });
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Consumes the decomposition and returns the factor.
    pub fn into_factor(self) -> Matrix {
        self.l
    }

    /// Solves `A·x = b` using the factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                rows_a: n,
                cols_a: n,
                rows_b: b.len(),
                cols_b: 1,
            });
        }
        // Forward solve L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l.get(i, j) * y[j];
            }
            y[i] = s / self.l.get(i, i);
        }
        // Back solve Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l.get(j, i) * x[j];
            }
            x[i] = s / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Log-determinant of `A` (numerically safer than the determinant
    /// itself for near-singular covariance matrices).
    pub fn log_determinant(&self) -> f64 {
        2.0 * self.l.diag().iter().map(|d| d.ln()).sum::<f64>()
    }
}

/// Convenience check: true when `a` admits a Cholesky factorization
/// after adding `ridge` to the diagonal.
pub fn is_positive_definite_with_ridge(a: &Matrix, ridge: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let mut b = a.clone();
    for i in 0..b.rows() {
        let v = b.get(i, i) + ridge;
        b.set(i, i, v);
    }
    Cholesky::decompose(&b).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd();
        let ch = Cholesky::decompose(&a).unwrap();
        let l = ch.factor();
        assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn factor_is_lower_triangular() {
        let ch = Cholesky::decompose(&spd()).unwrap();
        let l = ch.into_factor();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd();
        let b = [1.0, -2.0, 0.5];
        let x1 = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { minor: 1 })
        ));
    }

    #[test]
    fn log_determinant_matches_lu_determinant() {
        let a = spd();
        let ld = Cholesky::decompose(&a).unwrap().log_determinant();
        let det = a.determinant().unwrap();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn ridge_rescues_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(!is_positive_definite_with_ridge(&a, 0.0));
        assert!(is_positive_definite_with_ridge(&a, 1e-6));
        assert!(!is_positive_definite_with_ridge(&Matrix::zeros(2, 3), 1.0));
    }
}
