//! Dense linear algebra substrate for the `crowd-assess` workspace.
//!
//! The crowd-assessment algorithms of Joglekar et al. (ICDE 2015) need a
//! small but complete dense-matrix toolkit:
//!
//! * matrix inversion for the minimum-variance weight computation
//!   (Lemma 5: `A = C⁻¹𝟙 / ‖C⁻¹𝟙‖₁`),
//! * eigendecomposition of the near-symmetric moment products
//!   `R₁₂R₃₂⁻¹R₃₁` (Lemma 7) and of the conditional moment matrices
//!   (Algorithm A3, step 6.c),
//! * Cholesky factorization for covariance sanity checks and for
//!   sampling correlated noise in tests.
//!
//! The matrices involved are tiny (`k ≤ 8` for task arity, `l ≤ m/2`
//! triples), so the implementations favour robustness and clarity over
//! blocked performance: LU with partial pivoting, Gauss-Jordan (kept
//! because the paper cites it for the complexity bound), cyclic Jacobi
//! for symmetric eigenproblems and a Hessenberg + shifted-QR solver for
//! general real matrices.
//!
//! Everything is `f64`; no external dependencies.
//!
//! # Example
//!
//! ```
//! use crowd_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let inv = a.inverse().unwrap();
//! let id = a.matmul(&inv);
//! assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
//! assert!(id.get(0, 1).abs() < 1e-12);
//! ```

mod cholesky;
mod error;
mod gauss_jordan;
mod jacobi;
mod lu;
mod matrix;
mod qr_eigen;
mod vector;

pub use cholesky::{Cholesky, is_positive_definite_with_ridge};
pub use error::LinalgError;
pub use gauss_jordan::gauss_jordan_inverse;
pub use jacobi::{SymmetricEigen, symmetric_eigen};
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr_eigen::{Eigen, eigen_decompose};
pub use vector::{dot, l1_norm, l2_norm, linf_norm, normalize_l2};

/// Workspace-wide tolerance used when deciding whether a pivot or an
/// eigenvalue is numerically zero.
pub const EPS: f64 = 1e-12;

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
