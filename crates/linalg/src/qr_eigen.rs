//! Eigendecomposition of general real matrices with real spectra.
//!
//! Lemma 7 of the paper eigendecomposes `R₁₂R₃₂⁻¹R₃₁`, which in exact
//! arithmetic equals the Gram matrix `(S^{1/2}P₁)ᵀ(S^{1/2}P₁)` and is
//! therefore symmetric PSD — but the *sample* product is only nearly
//! symmetric. The production path symmetrizes and uses Jacobi
//! ([`crate::symmetric_eigen`]); this module provides an independent
//! general-matrix solver (Hessenberg reduction + shifted QR for
//! eigenvalues, inverse iteration for eigenvectors) used to cross-check
//! that the symmetrization does not distort the spectrum.

use crate::{EPS, LinalgError, Matrix, Result, normalize_l2};

/// Iteration budget for the shifted-QR eigenvalue sweep.
const MAX_QR_ITERS: usize = 500;
/// Iteration budget for inverse iteration per eigenvector.
const MAX_INV_ITERS: usize = 50;

/// Eigendecomposition `A = V·diag(λ)·V⁻¹` of a general real matrix with
/// a real spectrum.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors (unit L2 norm); column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

impl Eigen {
    /// Reconstructs `V·diag(λ)·V⁻¹`.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let vinv = self.vectors.inverse()?;
        Ok(self
            .vectors
            .matmul(&Matrix::diagonal(&self.values))
            .matmul(&vinv))
    }
}

/// Computes eigenvalues and eigenvectors of a general square real
/// matrix whose spectrum is real.
///
/// Returns [`LinalgError::ComplexEigenvalues`] if a genuinely complex
/// conjugate pair is detected.
pub fn eigen_decompose(a: &Matrix) -> Result<Eigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Eigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut values = qr_eigenvalues(a)?;
    values.sort_by(|x, y| y.partial_cmp(x).expect("NaN eigenvalue"));

    let mut vectors = Matrix::zeros(n, n);
    for (j, &lambda) in values.iter().enumerate() {
        let v = inverse_iteration(a, lambda, j)?;
        for (r, &x) in v.iter().enumerate() {
            vectors.set(r, j, x);
        }
    }
    Ok(Eigen { values, vectors })
}

/// Reduces `a` to upper Hessenberg form by Householder reflections.
fn hessenberg(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Build the Householder vector for column k below the subdiagonal.
        let mut x: Vec<f64> = (k + 1..n).map(|i| h.get(i, k)).collect();
        let alpha = -x[0].signum() * crate::l2_norm(&x);
        if alpha.abs() < EPS {
            continue;
        }
        x[0] -= alpha;
        let norm = crate::l2_norm(&x);
        if norm < EPS {
            continue;
        }
        for v in x.iter_mut() {
            *v /= norm;
        }
        // H = (I - 2vvᵀ); apply from the left: rows k+1..n.
        for col in 0..n {
            let mut dot = 0.0;
            for (idx, &vi) in x.iter().enumerate() {
                dot += vi * h.get(k + 1 + idx, col);
            }
            for (idx, &vi) in x.iter().enumerate() {
                let cur = h.get(k + 1 + idx, col);
                h.set(k + 1 + idx, col, cur - 2.0 * vi * dot);
            }
        }
        // Apply from the right: columns k+1..n.
        for row in 0..n {
            let mut dot = 0.0;
            for (idx, &vi) in x.iter().enumerate() {
                dot += vi * h.get(row, k + 1 + idx);
            }
            for (idx, &vi) in x.iter().enumerate() {
                let cur = h.get(row, k + 1 + idx);
                h.set(row, k + 1 + idx, cur - 2.0 * vi * dot);
            }
        }
    }
    h
}

/// Shifted-QR eigenvalue iteration on the Hessenberg form.
fn qr_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    let n = a.rows();
    let mut h = hessenberg(a);
    let mut values = Vec::with_capacity(n);
    let mut hi = n; // active block is rows/cols 0..hi
    let scale = a.max_abs().max(1.0);
    let tol = 1e-13 * scale;
    let mut iters = 0usize;

    while hi > 0 {
        if hi == 1 {
            values.push(h.get(0, 0));
            hi = 0;
            continue;
        }
        // Check for a negligible subdiagonal allowing deflation.
        let mut deflated = false;
        for i in (1..hi).rev() {
            if h.get(i, i - 1).abs() <= tol * (h.get(i, i).abs() + h.get(i - 1, i - 1).abs() + 1.0)
                && i == hi - 1
            {
                values.push(h.get(hi - 1, hi - 1));
                hi -= 1;
                deflated = true;
                break;
            }
        }
        if deflated {
            continue;
        }
        // 2x2 active block: solve its characteristic equation directly.
        if hi == 2 {
            let (a11, a12, a21, a22) = (h.get(0, 0), h.get(0, 1), h.get(1, 0), h.get(1, 1));
            let (l1, l2) = solve_2x2(a11, a12, a21, a22)?;
            values.push(l1);
            values.push(l2);
            hi = 0;
            continue;
        }

        iters += 1;
        if iters > MAX_QR_ITERS {
            return Err(LinalgError::NoConvergence {
                iterations: MAX_QR_ITERS,
            });
        }

        // Wilkinson shift from the trailing 2x2 block.
        let (a11, a12, a21, a22) = (
            h.get(hi - 2, hi - 2),
            h.get(hi - 2, hi - 1),
            h.get(hi - 1, hi - 2),
            h.get(hi - 1, hi - 1),
        );
        let d = (a11 - a22) / 2.0;
        let bc = a12 * a21;
        let shift = if d * d + bc >= 0.0 {
            let denom = d + d.signum() * (d * d + bc).sqrt();
            if denom.abs() < EPS {
                a22
            } else {
                a22 - bc / denom
            }
        } else {
            // Complex pair in the shift computation; use the exceptional
            // unshifted step and let deflation / solve_2x2 decide later.
            a22
        };

        // QR step via Givens rotations on (H - shift·I).
        for i in 0..hi {
            let v = h.get(i, i) - shift;
            h.set(i, i, v);
        }
        let mut rotations: Vec<(f64, f64)> = Vec::with_capacity(hi - 1);
        for i in 0..hi - 1 {
            let (c, s) = givens(h.get(i, i), h.get(i + 1, i));
            rotations.push((c, s));
            // Apply Gᵀ from the left to rows i, i+1.
            for col in i..hi {
                let x = h.get(i, col);
                let y = h.get(i + 1, col);
                h.set(i, col, c * x + s * y);
                h.set(i + 1, col, -s * x + c * y);
            }
        }
        // RQ: apply the rotations from the right.
        for (i, &(c, s)) in rotations.iter().enumerate() {
            for row in 0..(i + 2).min(hi) {
                let x = h.get(row, i);
                let y = h.get(row, i + 1);
                h.set(row, i, c * x + s * y);
                h.set(row, i + 1, -s * x + c * y);
            }
        }
        for i in 0..hi {
            let v = h.get(i, i) + shift;
            h.set(i, i, v);
        }
    }
    Ok(values)
}

/// Real eigenvalues of a 2x2 block; errors on a complex pair beyond
/// roundoff.
fn solve_2x2(a11: f64, a12: f64, a21: f64, a22: f64) -> Result<(f64, f64)> {
    let tr = a11 + a22;
    let det = a11 * a22 - a12 * a21;
    let disc = tr * tr / 4.0 - det;
    let scale = (a11.abs() + a12.abs() + a21.abs() + a22.abs()).max(1.0);
    if disc < -1e-9 * scale * scale {
        return Err(LinalgError::ComplexEigenvalues);
    }
    let root = disc.max(0.0).sqrt();
    Ok((tr / 2.0 + root, tr / 2.0 - root))
}

/// Givens rotation zeroing `b` against `a`: returns `(c, s)` with
/// `c·a + s·b = r`, `-s·a + c·b = 0`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else {
        let r = (a * a + b * b).sqrt();
        (a / r, b / r)
    }
}

/// Inverse iteration recovering the eigenvector for `lambda`.
///
/// `index` deterministically seeds the start vector so repeated
/// eigenvalues still explore different directions.
fn inverse_iteration(a: &Matrix, lambda: f64, index: usize) -> Result<Vec<f64>> {
    let n = a.rows();
    // Perturb the shift slightly so (A - λI) is invertible even when λ
    // is (numerically) exact.
    let scale = a.max_abs().max(1.0);
    let mut shift = lambda + 1e-10 * scale;
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            // Deterministic pseudo-random start, varied by eigen index.
            let x = ((i * 2654435761 + index * 40503 + 12345) & 0xffff) as f64;
            x / 65535.0 + 0.1
        })
        .collect();
    normalize_l2(&mut v);

    for attempt in 0..3 {
        let mut shifted = a.clone();
        for i in 0..n {
            let d = shifted.get(i, i) - shift;
            shifted.set(i, i, d);
        }
        let lu = match crate::Lu::decompose(&shifted) {
            Ok(lu) => lu,
            Err(_) => {
                shift += 1e-8 * scale * (attempt + 1) as f64;
                continue;
            }
        };
        for _ in 0..MAX_INV_ITERS {
            let mut next = lu.solve(&v)?;
            let norm = normalize_l2(&mut next);
            if norm.is_infinite() || norm.is_nan() {
                break;
            }
            // Convergence: the Rayleigh residual ‖Av − λv‖ is tiny.
            let av = a.matvec(&next);
            let residual: f64 = av
                .iter()
                .zip(&next)
                .map(|(x, y)| (x - lambda * y).powi(2))
                .sum::<f64>()
                .sqrt();
            v = next;
            if residual <= 1e-9 * scale {
                return Ok(v);
            }
        }
        // Loosen and retry with a nudged shift.
        shift += 1e-8 * scale * (attempt + 1) as f64;
    }
    // Accept the best effort: for clustered eigenvalues the residual
    // tolerance above can be unreachable; the caller's cross-checks
    // compare reconstructions, which remain accurate.
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetric_eigen;

    #[test]
    fn diagonal_spectrum() {
        let a = Matrix::diagonal(&[5.0, -1.0, 2.0]);
        let e = eigen_decompose(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-9);
        assert!((e.values[1] - 2.0).abs() < 1e-9);
        assert!((e.values[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn nonsymmetric_known_spectrum() {
        // [[2, 1], [0, 3]] upper triangular: eigenvalues 3, 2.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let e = eigen_decompose(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-9);
        assert!((e.values[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[2.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let e = eigen_decompose(&a).unwrap();
        for j in 0..3 {
            let v = e.vectors.col(j);
            let av = a.matvec(&v);
            for (x, y) in av.iter().zip(&v) {
                assert!(
                    (x - e.values[j] * y).abs() < 1e-6,
                    "Av != λv for eigenpair {j}: {x} vs {}",
                    e.values[j] * y
                );
            }
        }
    }

    #[test]
    fn agrees_with_jacobi_on_symmetric_input() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]]);
        let general = eigen_decompose(&a).unwrap();
        let sym = symmetric_eigen(&a).unwrap();
        for (x, y) in general.values.iter().zip(&sym.values) {
            assert!((x - y).abs() < 1e-8, "spectra disagree: {x} vs {y}");
        }
    }

    #[test]
    fn gram_product_matches_construction() {
        // Mimics Lemma 7: build V = S^{1/2}P and check that the
        // eigenvalues of VᵀV come back from the general solver.
        let v = Matrix::from_rows(&[&[0.6, 0.1, 0.05], &[0.1, 0.55, 0.1], &[0.02, 0.08, 0.5]]);
        let g = v.transpose().matmul(&v);
        let e = eigen_decompose(&g).unwrap();
        assert!(e.values.iter().all(|&l| l > 0.0));
        let sym = symmetric_eigen(&g).unwrap();
        for (x, y) in e.values.iter().zip(&sym.values) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn rotation_matrix_is_rejected_as_complex() {
        // 90° rotation has spectrum ±i.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        assert!(matches!(
            eigen_decompose(&a),
            Err(LinalgError::ComplexEigenvalues)
        ));
    }

    #[test]
    fn empty_and_single() {
        let e = eigen_decompose(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        let e = eigen_decompose(&Matrix::from_rows(&[&[7.0]])).unwrap();
        assert_eq!(e.values, vec![7.0]);
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.5, 1.5, 0.3], &[0.0, 0.2, 2.5]]);
        let e = eigen_decompose(&a).unwrap();
        assert!((e.values.iter().sum::<f64>() - a.trace()).abs() < 1e-8);
    }
}
