//! Gauss-Jordan elimination.
//!
//! The paper quotes the `O(m⁴)` complexity of Algorithm A2 assuming the
//! covariance matrix is inverted with Gauss-Jordan elimination (and
//! notes it could drop to `O(m^3.373)` with Williams' algorithm). We
//! keep a faithful Gauss-Jordan implementation both as a cross-check
//! against the LU path and so the complexity benches can measure the
//! variant the paper describes.

use crate::{EPS, LinalgError, Matrix, Result};

/// Inverts `a` by Gauss-Jordan elimination with partial pivoting.
pub fn gauss_jordan_inverse(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Augmented system [A | I], reduced in place to [I | A⁻¹].
    let mut aug = Matrix::zeros(n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            aug.set(i, j, a.get(i, j));
        }
        aug.set(i, n + i, 1.0);
    }

    for col in 0..n {
        let mut pivot_row = col;
        let mut pivot_val = aug.get(col, col).abs();
        for r in (col + 1)..n {
            let v = aug.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < EPS {
            return Err(LinalgError::Singular { pivot: col });
        }
        aug.swap_rows(pivot_row, col);

        let pivot = aug.get(col, col);
        for j in 0..2 * n {
            let v = aug.get(col, j) / pivot;
            aug.set(col, j, v);
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = aug.get(r, col);
            if factor == 0.0 {
                continue;
            }
            for j in 0..2 * n {
                let v = aug.get(r, j) - factor * aug.get(col, j);
                aug.set(r, j, v);
            }
        }
    }

    let mut inv = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            inv.set(i, j, aug.get(i, n + j));
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_lu_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]]);
        let gj = gauss_jordan_inverse(&a).unwrap();
        let lu = a.inverse().unwrap();
        assert!(gj.approx_eq(&lu, 1e-10));
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = Matrix::identity(5);
        assert!(gauss_jordan_inverse(&i).unwrap().approx_eq(&i, 1e-14));
    }

    #[test]
    fn needs_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 0.0]]);
        let inv = gauss_jordan_inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn singular_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(
            gauss_jordan_inverse(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rectangular_rejected() {
        assert!(matches!(
            gauss_jordan_inverse(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
