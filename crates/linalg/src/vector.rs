//! Small vector helpers used across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Maximum absolute value (L∞ norm).
#[inline]
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Normalizes `v` to unit L2 norm in place; leaves the zero vector
/// untouched and returns the original norm.
pub fn normalize_l2(v: &mut [f64]) -> f64 {
    let n = l2_norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(linf_norm(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = [3.0, 4.0];
        let n = normalize_l2(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = [0.0, 0.0];
        assert_eq!(normalize_l2(&mut v), 0.0);
        assert_eq!(v, [0.0, 0.0]);
    }
}
