//! LU decomposition with partial pivoting.
//!
//! Used for matrix inversion in the minimum-variance weight computation
//! (Lemma 5) and for the `R₃₂⁻¹` factor in the k-ary moment product
//! (Lemma 7). Partial pivoting keeps the factorization stable for the
//! mildly ill-conditioned covariance matrices that arise when triples
//! share many tasks.

// Triangular solves read `x[j]` for j on one side of the pivot while
// writing `x[i]`; the index form mirrors the textbook algorithm and
// avoids split-borrow gymnastics.
#![allow(clippy::needless_range_loop)]

use crate::{EPS, LinalgError, Matrix, Result};

/// A packed LU factorization `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implied), upper triangle holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (for the determinant sign).
    swaps: usize,
}

impl Lu {
    /// Factorizes `a`; fails if `a` is rectangular or singular.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < EPS {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                swaps += 1;
            }
            let pivot = lu.get(k, k);
            // Rank-1 update on row slices: the same `v = lu[r][c] −
            // factor·lu[k][c]` in the same column order as the
            // get/set form — bit-identical results — without an
            // assert and an index multiply around every flop.
            for r in (k + 1)..n {
                let (row_r, row_k) = lu.row_pair_mut(r, k);
                let factor = row_r[k] / pivot;
                row_r[k] = factor;
                for (dst, &src) in row_r[k + 1..n].iter_mut().zip(&row_k[k + 1..n]) {
                    *dst -= factor * src;
                }
            }
        }
        Ok(Self { lu, perm, swaps })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * self.lu.diag().iter().product::<f64>()
    }

    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                rows_a: n,
                cols_a: n,
                rows_b: b.len(),
                cols_b: 1,
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        // Row slices, same element order as the get-indexed form —
        // bit-identical, minus the per-element bounds assert.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = self.lu.row(i);
            let mut s = x[i];
            for (j, &l) in row[..i].iter().enumerate() {
                s -= l * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut s = x[i];
            for (u, xj) in row[i + 1..n].iter().zip(&x[i + 1..n]) {
                s -= u * xj;
            }
            x[i] = s / row[i];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                rows_a: n,
                cols_a: n,
                rows_b: b.rows(),
                cols_b: b.cols(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        Ok(out)
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]])
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = a.inverse().unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(3), 1e-10));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_2x2() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.determinant().unwrap() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_with_pivoting() {
        // Leading zero forces a row swap; determinant must keep its sign
        // bookkeeping straight.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.determinant().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = spd3();
        let lu = Lu::decompose(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[3.0, -1.0]]);
        let x = lu.solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-10));
    }

    #[test]
    fn solve_wrong_length_errors() {
        let lu = Lu::decompose(&spd3()).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn hilbert_4_inverse_is_accurate_enough() {
        // The 4x4 Hilbert matrix is classically ill-conditioned
        // (cond ≈ 1.5e4); partial pivoting should still give ~1e-9.
        let h = Matrix::from_fn(4, 4, |i, j| 1.0 / ((i + j + 1) as f64));
        let inv = h.inverse().unwrap();
        assert!(h.matmul(&inv).approx_eq(&Matrix::identity(4), 1e-8));
    }
}
