//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! The k-ary estimator (Algorithm A3) eigendecomposes
//! `R₁₂R₃₂⁻¹R₃₁ = (S^{1/2}P₁)ᵀ(S^{1/2}P₁)`, which is symmetric
//! positive semi-definite in expectation. After symmetrizing the sample
//! estimate, cyclic Jacobi is the most robust solver for the tiny
//! (k ≤ 8) matrices involved: it always converges for symmetric input
//! and produces an orthonormal eigenvector basis, which the algorithm
//! relies on to recover the unitary mixing matrix `U` (Lemma 7).

use crate::{LinalgError, Matrix, Result};

/// Maximum number of full Jacobi sweeps before conceding failure.
const MAX_SWEEPS: usize = 100;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Reconstructs `V·diag(λ)·Vᵀ` (used by tests and cross-checks).
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::diagonal(&self.values);
        self.vectors.matmul(&d).matmul(&self.vectors.transpose())
    }

    /// Returns `V·diag(f(λ))·Vᵀ`, e.g. the matrix square root with
    /// `f = sqrt` — exactly the `E·D^{1/2}·E⁻¹` of Algorithm A3 step 4.
    pub fn map_spectrum(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let d = Matrix::diagonal(&self.values.iter().map(|&v| f(v)).collect::<Vec<_>>());
        self.vectors.matmul(&d).matmul(&self.vectors.transpose())
    }
}

/// Computes the eigendecomposition of a symmetric matrix via the cyclic
/// Jacobi method.
///
/// Only the requirement that `a` is square is enforced; mild asymmetry
/// is tolerated by operating on the symmetrized part. Callers that care
/// should check [`Matrix::asymmetry`] first.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.symmetrize()?;
    let mut v = Matrix::identity(n);

    if n <= 1 {
        return Ok(SymmetricEigen {
            values: m.diag(),
            vectors: v,
        });
    }

    let tol = 1e-14 * m.frobenius_norm().max(1.0);
    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).powi(2);
            }
        }
        if off.sqrt() <= tol {
            let _ = sweep;
            return Ok(sorted(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Classic Jacobi rotation angle selection.
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the eigenvector rotation.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

/// Sorts eigenpairs by descending eigenvalue.
fn sorted(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag = m.diag();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, dst, v.get(r, src));
        }
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let a = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
        assert!(e.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn known_2x2_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[&[5.0, -1.0, 2.0], &[-1.0, 6.0, 0.0], &[2.0, 0.0, 7.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn map_spectrum_square_root() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let root = e.map_spectrum(f64::sqrt);
        assert!(root.matmul(&root).approx_eq(&a, 1e-10));
    }

    #[test]
    fn psd_gram_matrix_has_nonnegative_spectrum() {
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0]]);
        let g = b.transpose().matmul(&b); // 3x3 PSD of rank 2
        let e = symmetric_eigen(&g).unwrap();
        assert!(e.values.iter().all(|&v| v > -1e-10));
        assert!(
            e.values[2].abs() < 1e-10,
            "rank-2 Gram must have a zero eigenvalue"
        );
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values.iter().sum::<f64>() - a.trace()).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let e = symmetric_eigen(&Matrix::from_rows(&[&[42.0]])).unwrap();
        assert_eq!(e.values, vec![42.0]);
    }

    #[test]
    fn rectangular_rejected() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
