//! Row-major dense `f64` matrix.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// The crowd-assessment algorithms operate on small matrices (response
/// probability matrices of size `k ≤ 8`, triple covariance matrices of
/// size `l ≤ m/2`), so the representation is a flat `Vec<f64>` with no
/// stride tricks.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major flat vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Returns a borrowed view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `target` together with immutable row `other` — the
    /// split borrow a rank-1 row update needs (`row_target -= f ·
    /// row_other` is the LU elimination's inner kernel, and indexing
    /// through [`Matrix::get`]/[`Matrix::set`] there costs more than
    /// the arithmetic).
    ///
    /// # Panics
    /// Panics if either row is out of bounds or `target == other`.
    #[inline]
    pub fn row_pair_mut(&mut self, target: usize, other: usize) -> (&mut [f64], &[f64]) {
        assert!(
            target < self.rows && other < self.rows && target != other,
            "row pair ({target},{other}) out of bounds or aliased"
        );
        let cols = self.cols;
        if target > other {
            let (top, bottom) = self.data.split_at_mut(target * cols);
            (&mut bottom[..cols], &top[other * cols..(other + 1) * cols])
        } else {
            let (top, bottom) = self.data.split_at_mut(other * cols);
            (
                &mut top[target * cols..(target + 1) * cols],
                &bottom[..cols],
            )
        }
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The raw row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree; use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, rhs: &Self) -> Self {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible matrix product `self * rhs`.
    pub fn try_matmul(&self, rhs: &Self) -> Result<Self> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                rows_a: self.rows,
                cols_a: self.cols,
                rows_b: rhs.rows,
                cols_b: rhs.cols,
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop contiguous in both the
        // output row and the rhs row.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), v)).collect()
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|x| x * s)
    }

    /// Element-wise sum. Panics on shape mismatch.
    pub fn add_matrix(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Element-wise difference. Panics on shape mismatch.
    pub fn sub_matrix(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Symmetrizes the matrix: `(A + Aᵀ)/2`.
    ///
    /// The sample moment products of Algorithm A3 are symmetric in
    /// expectation but not in finite samples; the k-ary estimator
    /// symmetrizes before eigendecomposition.
    pub fn symmetrize(&self) -> Result<Self> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(self.add_matrix(&self.transpose()).scale(0.5))
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|`; zero for exactly
    /// symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in 0..i {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// True if every pairwise mirrored pair differs by at most `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.asymmetry() <= tol
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row swap out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(hi * self.cols);
        top[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    /// Swaps columns `a` and `b` in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "column swap out of bounds");
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    /// Returns a new matrix whose rows are permuted so that output row
    /// `i` equals input row `perm[i]`.
    pub fn permute_rows(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut out = Self::zeros(self.rows, self.cols);
        for (dst, &src) in perm.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Inverse via LU with partial pivoting. See [`crate::Lu`].
    pub fn inverse(&self) -> Result<Self> {
        crate::Lu::decompose(self)?.inverse()
    }

    /// Determinant via LU with partial pivoting.
    pub fn determinant(&self) -> Result<f64> {
        Ok(crate::Lu::decompose(self)?.determinant())
    }

    /// Solves `self * x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        crate::Lu::decompose(self)?.solve(b)
    }

    /// True if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, rhs: &Self, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.6}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert!(!m.is_square());
    }

    #[test]
    fn identity_and_diagonal() {
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_matches_manual() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = sample();
        let err = a.try_matmul(&sample()).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 9.0]]);
        assert!(a.matmul(&Matrix::identity(2)).approx_eq(&a, 0.0));
        assert!(Matrix::identity(2).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        assert!((&a + &b).approx_eq(&Matrix::filled(2, 2, 5.0), 0.0));
        assert!((&a - &a).approx_eq(&Matrix::zeros(2, 2), 0.0));
        assert!((&a * 2.0).approx_eq(&Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]), 0.0));
        assert!((-&a).approx_eq(&a.scale(-1.0), 0.0));
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!((a.asymmetry() - 2.0).abs() < 1e-15);
        let s = a.symmetrize().unwrap();
        assert!(s.is_symmetric(0.0));
        assert_eq!(s.get(0, 1), 1.0);
        assert!(sample().symmetrize().is_err());
    }

    #[test]
    fn swap_rows_and_cols() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        m.swap_cols(0, 2);
        assert_eq!(m.row(0), &[6.0, 5.0, 4.0]);
        // Swapping with self is a no-op.
        let before = m.clone();
        m.swap_rows(1, 1);
        m.swap_cols(0, 0);
        assert!(m.approx_eq(&before, 0.0));
    }

    #[test]
    fn permute_rows_reorders() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let p = m.permute_rows(&[2, 0, 1]);
        assert_eq!(p.col(0), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn finite_check() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.all_finite());
        m.set(0, 1, f64::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        sample().get(2, 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn debug_formatting_contains_dims() {
        let s = format!("{:?}", sample());
        assert!(s.contains("2x3"));
    }
}
