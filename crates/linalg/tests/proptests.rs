//! Property-based tests for the linear-algebra substrate.

use crowd_linalg::{Cholesky, Matrix, eigen_decompose, gauss_jordan_inverse, symmetric_eigen};
use proptest::prelude::*;

/// Strategy: a well-conditioned SPD matrix `BᵀB + I` of size 2..=5.
fn spd_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..=5).prop_flat_map(|n| {
        proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut g = b.transpose().matmul(&b);
            for i in 0..n {
                let v = g.get(i, i) + 1.0;
                g.set(i, i, v);
            }
            g
        })
    })
}

/// Strategy: an arbitrary square matrix of size 2..=4 with bounded entries.
fn square_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..=4).prop_flat_map(|n| {
        proptest::collection::vec(-3.0f64..3.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in square_matrix()) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_associates_with_identity(m in square_matrix()) {
        let id = Matrix::identity(m.rows());
        prop_assert!(m.matmul(&id).approx_eq(&m, 1e-12));
        prop_assert!(id.matmul(&m).approx_eq(&m, 1e-12));
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in square_matrix(), b in square_matrix()) {
        prop_assume!(a.rows() == b.rows());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-10));
    }

    #[test]
    fn lu_inverse_roundtrip(m in spd_matrix()) {
        let inv = m.inverse().unwrap();
        let id = Matrix::identity(m.rows());
        prop_assert!(m.matmul(&inv).approx_eq(&id, 1e-7));
    }

    #[test]
    fn gauss_jordan_agrees_with_lu(m in spd_matrix()) {
        let gj = gauss_jordan_inverse(&m).unwrap();
        let lu = m.inverse().unwrap();
        prop_assert!(gj.approx_eq(&lu, 1e-7));
    }

    #[test]
    fn lu_solve_solves(m in spd_matrix()) {
        let b: Vec<f64> = (0..m.rows()).map(|i| (i as f64) - 1.0).collect();
        let x = m.solve(&b).unwrap();
        let ax = m.matvec(&x);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(m in spd_matrix()) {
        let ch = Cholesky::decompose(&m).unwrap();
        let l = ch.factor();
        prop_assert!(l.matmul(&l.transpose()).approx_eq(&m, 1e-8));
    }

    #[test]
    fn jacobi_reconstructs_and_is_orthonormal(m in spd_matrix()) {
        let e = symmetric_eigen(&m).unwrap();
        prop_assert!(e.reconstruct().approx_eq(&m, 1e-8));
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        prop_assert!(vtv.approx_eq(&Matrix::identity(m.rows()), 1e-8));
        // SPD implies a strictly positive spectrum.
        prop_assert!(e.values.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn jacobi_spectrum_sums_to_trace(m in spd_matrix()) {
        let e = symmetric_eigen(&m).unwrap();
        prop_assert!((e.values.iter().sum::<f64>() - m.trace()).abs() < 1e-8);
    }

    #[test]
    fn general_eigen_agrees_with_jacobi_on_spd(m in spd_matrix()) {
        let sym = symmetric_eigen(&m).unwrap();
        let gen_e = eigen_decompose(&m).unwrap();
        for (x, y) in gen_e.values.iter().zip(&sym.values) {
            prop_assert!((x - y).abs() < 1e-6, "spectra diverge: {} vs {}", x, y);
        }
    }

    #[test]
    fn determinant_equals_eigenvalue_product(m in spd_matrix()) {
        let det = m.determinant().unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let prod: f64 = e.values.iter().product();
        // Compare in log space for stability.
        prop_assert!((det.ln() - prod.ln()).abs() < 1e-6);
    }

    #[test]
    fn row_permutation_preserves_multiset(m in square_matrix()) {
        let n = m.rows();
        let perm: Vec<usize> = (0..n).rev().collect();
        let p = m.permute_rows(&perm);
        for i in 0..n {
            prop_assert_eq!(p.row(i), m.row(n - 1 - i));
        }
    }
}
