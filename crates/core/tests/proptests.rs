//! Property-based tests for the estimators' internal invariants.

use crowd_core::agreement::{Triangle, agreement_from_errors};
use crowd_core::kary::{align_rows_greedy, fix_row_signs, population_counts, prob_estimate};
use crowd_core::{DegeneracyPolicy, EstimatorConfig, ThreeWorkerEstimator};
use crowd_data::{Label, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a random diagonally dominant row-stochastic k×k matrix.
fn confusion_matrix(k: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.05f64..1.0, k * k).prop_map(move |raw| {
        let mut m = Matrix::zeros(k, k);
        for r in 0..k {
            // Off-diagonal raw weights, diagonal forced dominant.
            let mut row: Vec<f64> = (0..k).map(|c| raw[r * k + c] * 0.5).collect();
            row[r] = 1.0 + raw[r * k + r];
            let sum: f64 = row.iter().sum();
            for (c, v) in row.iter().enumerate() {
                m.set(r, c, v / sum);
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ProbEstimate recovers arbitrary diagonally dominant worker
    /// matrices exactly from population counts (Lemmas 6–8 end to end).
    #[test]
    fn prob_estimate_recovers_random_truth(
        p1 in confusion_matrix(3),
        p2 in confusion_matrix(3),
        p3 in confusion_matrix(3),
        s0 in 0.2f64..0.5,
        s1 in 0.2f64..0.4,
    ) {
        let s = [s0, s1, 1.0 - s0 - s1];
        prop_assume!(s[2] > 0.15);
        let p = [p1, p2, p3];
        let counts = population_counts(&p, &s, 50_000.0);
        let Ok(est) = prob_estimate(&counts) else {
            // Random matrices can be near-degenerate (tied conditional
            // spectra); a typed failure is acceptable, silence is not.
            return Ok(());
        };
        for i in 0..3 {
            let probs = est.response_probabilities(i);
            for r in 0..3 {
                for c in 0..3 {
                    prop_assert!(
                        (probs.get(r, c) - p[i].get(r, c)).abs() < 1e-3,
                        "worker {} entry ({},{}) off: {} vs {}",
                        i, r, c, probs.get(r, c), p[i].get(r, c)
                    );
                }
            }
        }
    }

    /// Row alignment undoes any permutation + sign flips of a
    /// diagonally dominant matrix.
    #[test]
    fn alignment_undoes_permutation_and_signs(
        m in confusion_matrix(4),
        perm_seed in 0u64..24,
        flips in proptest::collection::vec(any::<bool>(), 4),
    ) {
        // Scale rows like sqrt(S)·P to match the real use.
        let scaled = Matrix::from_fn(4, 4, |r, c| 0.5 * m.get(r, c));
        let perms: Vec<Vec<usize>> = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| {
                let mut p: Vec<usize> = (0..4).collect();
                p.swap(a, b);
                p
            })
            .collect();
        let perm = &perms[(perm_seed as usize) % perms.len()];
        let mut scrambled = scaled.permute_rows(perm);
        for (r, &flip) in flips.iter().enumerate() {
            if flip {
                for v in scrambled.row_mut(r) {
                    *v = -*v;
                }
            }
        }
        fix_row_signs(&mut scrambled);
        let aligned = align_rows_greedy(&scrambled);
        prop_assert!(
            aligned.approx_eq(&scaled, 1e-12),
            "alignment failed:\n{aligned:?}\nvs\n{scaled:?}"
        );
    }

    /// The A1 interval width shrinks monotonically in the overlap
    /// count for fixed agreement fractions.
    #[test]
    fn deviation_shrinks_with_overlap(scale in 1usize..8) {
        let base = 40 * scale;
        let make = |n: usize| {
            let mut b = ResponseMatrixBuilder::new(3, n, 2);
            for t in 0..n as u32 {
                b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
                b.push(WorkerId(1), TaskId(t), Label(u16::from(t % 10 == 0))).unwrap();
                b.push(WorkerId(2), TaskId(t), Label(u16::from(t % 8 == 0))).unwrap();
            }
            b.build().unwrap()
        };
        let est = ThreeWorkerEstimator::new(EstimatorConfig::default());
        let small = est
            .triple_estimate(&make(base), WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        let large = est
            .triple_estimate(&make(base * 4), WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        prop_assert!(large.deviation < small.deviation);
    }

    /// The regularized triangle inversion is total on arbitrary inputs
    /// under the clamp policy, and stays within sane bounds.
    #[test]
    fn clamped_inversion_is_total(
        q_ij in 0.0f64..1.0,
        q_ik in 0.0f64..1.0,
        q_jk in 0.0f64..1.0,
    ) {
        let t = Triangle { q_ij, q_ik, q_jk }
            .regularized(DegeneracyPolicy::Clamp { epsilon: 1e-3 })
            .unwrap();
        let p = t.error_rate();
        prop_assert!(p.is_finite());
        // 2q−1 factors are at most 1 and at least 2ε: the estimate
        // cannot run off to ±∞ but may leave [0, 1/2] on noisy input.
        prop_assert!(p <= 0.5);
        let g = t.gradient();
        prop_assert!(g.iter().all(|d| d.is_finite()));
    }

    /// The forward agreement map stays in [1/2, 1] for admissible
    /// error rates and the inversion recovers it (round trip).
    #[test]
    fn forward_map_range_and_roundtrip(
        p1 in 0.0f64..0.49,
        p2 in 0.0f64..0.49,
        p3 in 0.0f64..0.49,
    ) {
        let q12 = agreement_from_errors(p1, p2);
        prop_assert!((0.5..=1.0).contains(&q12));
        let t = Triangle {
            q_ij: q12,
            q_ik: agreement_from_errors(p1, p3),
            q_jk: agreement_from_errors(p2, p3),
        };
        prop_assert!((t.error_rate() - p1).abs() < 1e-9);
    }
}
