//! Property-based tests for the estimators' internal invariants.

use crowd_core::agreement::{Triangle, agreement_from_errors};
use crowd_core::kary::{align_rows_greedy, fix_row_signs, population_counts, prob_estimate};
use crowd_core::{
    DegeneracyPolicy, EstimatorConfig, KaryMWorkerEstimator, MWorkerEstimator,
    ThreeWorkerEstimator, WorkerReport,
};
use crowd_data::{Label, OverlapIndex, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: an arbitrary sparse binary response matrix with enough
/// workers and density for Algorithm A2 to usually succeed.
fn assessable_matrix() -> impl Strategy<Value = ResponseMatrix> {
    (4usize..8, 20usize..60).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::option::weighted(0.75, 0u16..2), m * n).prop_map(
            move |cells| {
                let mut b = ResponseMatrixBuilder::new(m, n, 2);
                for (i, cell) in cells.iter().enumerate() {
                    if let Some(label) = cell {
                        b.push(
                            WorkerId((i / n) as u32),
                            TaskId((i % n) as u32),
                            Label(*label),
                        )
                        .expect("generated ids are valid");
                    }
                }
                b.build().expect("generated cells are unique")
            },
        )
    })
}

/// Bit-exact equality of two assessment reports (identical workers,
/// intervals down to the f64 bit pattern, and failure sets).
fn assert_reports_bit_identical(a: &WorkerReport, b: &WorkerReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.assessments.len(), b.assessments.len());
    prop_assert_eq!(a.failures.len(), b.failures.len());
    for (x, y) in a.assessments.iter().zip(&b.assessments) {
        prop_assert_eq!(x.worker, y.worker);
        prop_assert_eq!(x.triples_used, y.triples_used);
        prop_assert_eq!(x.weights_fell_back, y.weights_fell_back);
        prop_assert_eq!(
            x.interval.center.to_bits(),
            y.interval.center.to_bits(),
            "center diverged for {:?}: {} vs {}",
            x.worker,
            x.interval.center,
            y.interval.center
        );
        prop_assert_eq!(
            x.interval.half_width.to_bits(),
            y.interval.half_width.to_bits(),
            "half width diverged for {:?}: {} vs {}",
            x.worker,
            x.interval.half_width,
            y.interval.half_width
        );
    }
    for (x, y) in a.failures.iter().zip(&b.failures) {
        prop_assert_eq!(x.0, y.0);
    }
    Ok(())
}

/// Strategy: a random diagonally dominant row-stochastic k×k matrix.
fn confusion_matrix(k: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.05f64..1.0, k * k).prop_map(move |raw| {
        let mut m = Matrix::zeros(k, k);
        for r in 0..k {
            // Off-diagonal raw weights, diagonal forced dominant.
            let mut row: Vec<f64> = (0..k).map(|c| raw[r * k + c] * 0.5).collect();
            row[r] = 1.0 + raw[r * k + r];
            let sum: f64 = row.iter().sum();
            for (c, v) in row.iter().enumerate() {
                m.set(r, c, v / sum);
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ProbEstimate recovers arbitrary diagonally dominant worker
    /// matrices exactly from population counts (Lemmas 6–8 end to end).
    #[test]
    fn prob_estimate_recovers_random_truth(
        p1 in confusion_matrix(3),
        p2 in confusion_matrix(3),
        p3 in confusion_matrix(3),
        s0 in 0.2f64..0.5,
        s1 in 0.2f64..0.4,
    ) {
        let s = [s0, s1, 1.0 - s0 - s1];
        prop_assume!(s[2] > 0.15);
        let p = [p1, p2, p3];
        let counts = population_counts(&p, &s, 50_000.0);
        let Ok(est) = prob_estimate(&counts) else {
            // Random matrices can be near-degenerate (tied conditional
            // spectra); a typed failure is acceptable, silence is not.
            return Ok(());
        };
        for i in 0..3 {
            let probs = est.response_probabilities(i);
            for r in 0..3 {
                for c in 0..3 {
                    prop_assert!(
                        (probs.get(r, c) - p[i].get(r, c)).abs() < 1e-3,
                        "worker {} entry ({},{}) off: {} vs {}",
                        i, r, c, probs.get(r, c), p[i].get(r, c)
                    );
                }
            }
        }
    }

    /// Row alignment undoes any permutation + sign flips of a
    /// diagonally dominant matrix.
    #[test]
    fn alignment_undoes_permutation_and_signs(
        m in confusion_matrix(4),
        perm_seed in 0u64..24,
        flips in proptest::collection::vec(any::<bool>(), 4),
    ) {
        // Scale rows like sqrt(S)·P to match the real use.
        let scaled = Matrix::from_fn(4, 4, |r, c| 0.5 * m.get(r, c));
        let perms: Vec<Vec<usize>> = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| {
                let mut p: Vec<usize> = (0..4).collect();
                p.swap(a, b);
                p
            })
            .collect();
        let perm = &perms[(perm_seed as usize) % perms.len()];
        let mut scrambled = scaled.permute_rows(perm);
        for (r, &flip) in flips.iter().enumerate() {
            if flip {
                for v in scrambled.row_mut(r) {
                    *v = -*v;
                }
            }
        }
        fix_row_signs(&mut scrambled);
        let aligned = align_rows_greedy(&scrambled);
        prop_assert!(
            aligned.approx_eq(&scaled, 1e-12),
            "alignment failed:\n{aligned:?}\nvs\n{scaled:?}"
        );
    }

    /// The A1 interval width shrinks monotonically in the overlap
    /// count for fixed agreement fractions.
    #[test]
    fn deviation_shrinks_with_overlap(scale in 1usize..8) {
        let base = 40 * scale;
        let make = |n: usize| {
            let mut b = ResponseMatrixBuilder::new(3, n, 2);
            for t in 0..n as u32 {
                b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
                b.push(WorkerId(1), TaskId(t), Label(u16::from(t % 10 == 0))).unwrap();
                b.push(WorkerId(2), TaskId(t), Label(u16::from(t % 8 == 0))).unwrap();
            }
            b.build().unwrap()
        };
        let est = ThreeWorkerEstimator::new(EstimatorConfig::default());
        let small = est
            .triple_estimate(&make(base), WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        let large = est
            .triple_estimate(&make(base * 4), WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        prop_assert!(large.deviation < small.deviation);
    }

    /// The regularized triangle inversion is total on arbitrary inputs
    /// under the clamp policy, and stays within sane bounds.
    #[test]
    fn clamped_inversion_is_total(
        q_ij in 0.0f64..1.0,
        q_ik in 0.0f64..1.0,
        q_jk in 0.0f64..1.0,
    ) {
        let t = Triangle { q_ij, q_ik, q_jk }
            .regularized(DegeneracyPolicy::Clamp { epsilon: 1e-3 })
            .unwrap();
        let p = t.error_rate();
        prop_assert!(p.is_finite());
        // 2q−1 factors are at most 1 and at least 2ε: the estimate
        // cannot run off to ±∞ but may leave [0, 1/2] on noisy input.
        prop_assert!(p <= 0.5);
        let g = t.gradient();
        prop_assert!(g.iter().all(|d| d.is_finite()));
    }

    /// The indexed `evaluate_all` (the production path, one
    /// [`crowd_data::OverlapIndex`] shared by every worker) is
    /// bit-identical to the naive per-worker merge-scan reference on
    /// arbitrary sparse matrices.
    #[test]
    fn indexed_evaluate_all_equals_naive(data in assessable_matrix()) {
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let naive = est.evaluate_all_naive(&data, 0.9).expect("enough workers");
        let indexed = est.evaluate_all(&data, 0.9).expect("enough workers");
        assert_reports_bit_identical(&naive, &indexed)?;
    }

    /// Parallel `evaluate_all` output is byte-identical to sequential,
    /// for every thread count, on arbitrary sparse matrices.
    #[test]
    fn parallel_evaluate_all_is_deterministic(
        data in assessable_matrix(),
        threads in 2usize..9,
    ) {
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let serial = est.evaluate_all(&data, 0.9).expect("enough workers");
        let parallel =
            est.evaluate_all_parallel(&data, 0.9, threads).expect("enough workers");
        assert_reports_bit_identical(&serial, &parallel)?;
    }

    /// The k-ary m-worker estimator's indexed path is equivalent to
    /// the matrix-scan path per worker: the same workers succeed, and
    /// successful assessments agree bit for bit.
    #[test]
    fn kary_indexed_evaluate_equals_matrix_path(data in assessable_matrix()) {
        let est = KaryMWorkerEstimator::new(EstimatorConfig::clamping());
        let index = OverlapIndex::from_matrix(&data);
        for worker in data.workers() {
            let direct = est.evaluate_worker(&data, worker, 0.9);
            let indexed = est.evaluate_worker_indexed(&index, worker, 0.9);
            match (direct, indexed) {
                (Ok(d), Ok(i)) => {
                    prop_assert_eq!(d.triples_used, i.triples_used);
                    prop_assert_eq!(d.weights_fell_back, i.weights_fell_back);
                    for (a, b) in d.intervals.iter().zip(&i.intervals) {
                        prop_assert_eq!(a.center.to_bits(), b.center.to_bits());
                        prop_assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
                    }
                    let k = d.v.rows();
                    for r in 0..k {
                        for c in 0..k {
                            prop_assert_eq!(
                                d.v.get(r, c).to_bits(),
                                i.v.get(r, c).to_bits()
                            );
                        }
                    }
                }
                (Err(_), Err(_)) => {}
                (d, i) => {
                    return Err(TestCaseError::fail(format!(
                        "paths disagree for {worker:?}: direct {:?} vs indexed {:?}",
                        d.map(|a| a.triples_used),
                        i.map(|a| a.triples_used)
                    )));
                }
            }
        }
    }

    /// The forward agreement map stays in [1/2, 1] for admissible
    /// error rates and the inversion recovers it (round trip).
    #[test]
    fn forward_map_range_and_roundtrip(
        p1 in 0.0f64..0.49,
        p2 in 0.0f64..0.49,
        p3 in 0.0f64..0.49,
    ) {
        let q12 = agreement_from_errors(p1, p2);
        prop_assert!((0.5..=1.0).contains(&q12));
        let t = Triangle {
            q_ij: q12,
            q_ik: agreement_from_errors(p1, p3),
            q_jk: agreement_from_errors(p2, p3),
        };
        prop_assert!((t.error_rate() - p1).abs() < 1e-9);
    }
}
