//! Lemma 9: covariances of the counts-tensor entries.
//!
//! Tasks split into groups by *attempt pattern* (which of the three
//! workers responded). Counts within one group are multinomial over the
//! group's task total `n_g`, so
//!
//! ```text
//! Var(N_x)      =  N_x·(n_g − N_x) / n_g
//! Cov(N_x, N_y) = −N_x·N_y / n_g          (x ≠ y, same group)
//! Cov           =  0                      (different groups)
//! ```
//!
//! (The paper's printed lemma drops the minus sign of the cross term;
//! the multinomial covariance is negative — see DESIGN.md §5.)

use crowd_data::{AttemptPattern, CountsTensor};
use crowd_linalg::Matrix;

/// Builds the covariance matrix of the counts entries listed in
/// `entries` (tensor indices `(a, b, c)`).
pub fn counts_covariance(counts: &CountsTensor, entries: &[(usize, usize, usize)]) -> Matrix {
    let patterns: Vec<AttemptPattern> = entries
        .iter()
        .map(|&(a, b, c)| AttemptPattern::of(a, b, c))
        .collect();
    let group_totals: Vec<f64> = patterns.iter().map(|&p| counts.group_total(p)).collect();
    let values: Vec<f64> = entries
        .iter()
        .map(|&(a, b, c)| counts.get(a, b, c))
        .collect();

    let n = entries.len();
    let mut cov = Matrix::zeros(n, n);
    for i in 0..n {
        let ng = group_totals[i];
        if ng <= 0.0 {
            continue;
        }
        cov.set(i, i, values[i] * (ng - values[i]) / ng);
        for j in (i + 1)..n {
            if patterns[i] != patterns[j] {
                continue;
            }
            let c = -values[i] * values[j] / ng;
            cov.set(i, j, c);
            cov.set(j, i, c);
        }
    }
    cov
}

/// The entry list Algorithm A3 perturbs: the all-three-attempted block
/// `(1..=k)³`, optionally extended with the two-worker blocks.
pub fn perturbation_entries(arity: usize, include_partial: bool) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for a in 1..=arity {
        for b in 1..=arity {
            for c in 1..=arity {
                out.push((a, b, c));
            }
        }
    }
    if include_partial {
        for a in 1..=arity {
            for b in 1..=arity {
                out.push((a, b, 0));
                out.push((a, 0, b));
                out.push((0, a, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_with(entries: &[((usize, usize, usize), f64)]) -> CountsTensor {
        let mut t = CountsTensor::zeros(2);
        for &((a, b, c), v) in entries {
            t.set(a, b, c, v);
        }
        t
    }

    #[test]
    fn within_group_multinomial_covariance() {
        // One group (all-three), total 100, two cells 30 and 70.
        let t = tensor_with(&[((1, 1, 1), 30.0), ((2, 2, 2), 70.0)]);
        let cov = counts_covariance(&t, &[(1, 1, 1), (2, 2, 2)]);
        assert!((cov.get(0, 0) - 30.0 * 70.0 / 100.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 70.0 * 30.0 / 100.0).abs() < 1e-12);
        assert!(
            (cov.get(0, 1) + 30.0 * 70.0 / 100.0).abs() < 1e-12,
            "cross term negative"
        );
        // Rank-deficient by construction: row sums are zero.
        assert!((cov.get(0, 0) + cov.get(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn across_group_covariance_is_zero() {
        // (1,1,1) is all-three; (1,1,0) is the {w1,w2} pair group.
        let t = tensor_with(&[((1, 1, 1), 40.0), ((1, 1, 0), 10.0), ((2, 2, 0), 10.0)]);
        let cov = counts_covariance(&t, &[(1, 1, 1), (1, 1, 0), (2, 2, 0)]);
        assert_eq!(cov.get(0, 1), 0.0);
        assert_eq!(cov.get(0, 2), 0.0);
        // Within the pair group the multinomial structure holds.
        assert!((cov.get(1, 2) + 10.0 * 10.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_group_is_all_zero() {
        let t = CountsTensor::zeros(2);
        let cov = counts_covariance(&t, &[(1, 1, 1), (1, 2, 1)]);
        assert_eq!(cov.max_abs(), 0.0);
    }

    #[test]
    fn variance_matches_binomial_special_case() {
        // A cell holding the whole group has zero variance (the total
        // is fixed by conditioning on the group size).
        let t = tensor_with(&[((1, 2, 1), 25.0)]);
        let cov = counts_covariance(&t, &[(1, 2, 1)]);
        assert!(cov.get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn entry_lists() {
        assert_eq!(perturbation_entries(2, false).len(), 8);
        assert_eq!(perturbation_entries(3, false).len(), 27);
        assert_eq!(perturbation_entries(2, true).len(), 8 + 12);
        // The paper set contains no zero index.
        assert!(
            perturbation_entries(4, false)
                .iter()
                .all(|&(a, b, c)| a > 0 && b > 0 && c > 0)
        );
    }

    #[test]
    fn covariance_is_psd_on_simulated_counts() {
        use crowd_data::{CountsTensor as CT, WorkerId};
        use crowd_sim::{KaryScenario, rng};
        let inst = KaryScenario::paper_default(2, 300, 0.9).generate(&mut rng(151));
        let counts = CT::from_matrix(inst.responses(), WorkerId(0), WorkerId(1), WorkerId(2));
        let entries = perturbation_entries(2, true);
        let cov = counts_covariance(&counts, &entries);
        let eig = crowd_linalg::symmetric_eigen(&cov).unwrap();
        assert!(
            eig.values.iter().all(|&l| l > -1e-8),
            "multinomial covariance must be PSD: {:?}",
            eig.values
        );
    }
}
