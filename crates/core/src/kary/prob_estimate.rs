//! The `ProbEstimate` procedure of Algorithm A3: point estimates of
//! `V_i = S_D^{1/2}·P_i` from a counts tensor.

use crate::kary::align::{align_rows_greedy, fix_row_signs};
use crate::{EstimateError, Result};
use crowd_data::{AttemptPattern, CountsTensor};
use crowd_linalg::{Lu, Matrix, symmetric_eigen};

/// Eigenvalues of the moment product below this (relative) floor mean
/// the second-moment matrix is numerically rank-deficient — the
/// situation the paper hits on WSD with arity 3 ("one of the matrix
/// rows has only zeros, making it non-invertible").
const EIGENVALUE_FLOOR: f64 = 1e-10;

/// Point estimates of `V_i = S_D^{1/2}·P_i` for the three workers.
#[derive(Debug, Clone)]
pub struct ProbEstimate {
    /// `V₁, V₂, V₃` (k×k each).
    pub v: [Matrix; 3],
}

impl ProbEstimate {
    /// Row-normalizes `V_i` into the response-probability matrix
    /// `P̂_i` (each row of `V_i` is `sqrt(S_r)·P_i[r,·]`, so dividing by
    /// the row sum recovers the probabilities).
    pub fn response_probabilities(&self, worker_slot: usize) -> Matrix {
        let v = &self.v[worker_slot];
        let k = v.rows();
        Matrix::from_fn(k, k, |r, c| {
            let sum: f64 = v.row(r).iter().sum();
            if sum.abs() < 1e-12 {
                if r == c { 1.0 } else { 0.0 }
            } else {
                v.get(r, c) / sum
            }
        })
    }

    /// Estimated selectivity: row sums of the `V_i` estimate
    /// `sqrt(S_r)`; the three workers' estimates are averaged, squared
    /// and normalized.
    pub fn selectivity(&self) -> Vec<f64> {
        let k = self.v[0].rows();
        let mut s: Vec<f64> = (0..k)
            .map(|r| {
                let mean_root: f64 = self
                    .v
                    .iter()
                    .map(|v| v.row(r).iter().sum::<f64>())
                    .sum::<f64>()
                    / 3.0;
                (mean_root.max(0.0)).powi(2)
            })
            .collect();
        let total: f64 = s.iter().sum();
        if total > 0.0 {
            for x in s.iter_mut() {
                *x /= total;
            }
        } else {
            s = vec![1.0 / k as f64; k];
        }
        s
    }
}

/// Runs `ProbEstimate` on a counts tensor.
pub fn prob_estimate(counts: &CountsTensor) -> Result<ProbEstimate> {
    let k = counts.arity();

    // Step 1: attempt-group sizes.
    let n123 = counts.n_all_three();
    if n123 < 1.0 {
        return Err(EstimateError::Degenerate {
            what: "no task was attempted by all three workers".into(),
        });
    }
    let d12 = n123 + counts.n_exactly_pair(AttemptPattern(0b011));
    let d23 = n123 + counts.n_exactly_pair(AttemptPattern(0b110));
    let d31 = n123 + counts.n_exactly_pair(AttemptPattern(0b101));

    // Step 2: response frequency matrices R_{i1,i2}[a,b] = P̂(w_i1 = a,
    // w_i2 = b), estimated over tasks both attempted.
    let r12 = Matrix::from_fn(k, k, |a, b| {
        (0..=k).map(|c| counts.get(a + 1, b + 1, c)).sum::<f64>() / d12
    });
    let r23 = Matrix::from_fn(k, k, |a, b| {
        (0..=k).map(|j| counts.get(j, a + 1, b + 1)).sum::<f64>() / d23
    });
    let r31 = Matrix::from_fn(k, k, |a, b| {
        (0..=k).map(|j| counts.get(b + 1, j, a + 1)).sum::<f64>() / d31
    });
    let r32 = r23.transpose();
    let r13 = r31.transpose();

    // Step 3: eigendecomposition of R₁₂·R₃₂⁻¹·R₃₁ = V₁ᵀV₁ (Lemma 7).
    let r32_inv = Lu::decompose(&r32)
        .map_err(|e| EstimateError::Numerical(format!("R32 inversion failed: {e}")))?
        .inverse()?;
    let m = r12.matmul(&r32_inv).matmul(&r31);
    let eig = symmetric_eigen(&m.symmetrize()?)?;
    let lam_max = eig.values.first().copied().unwrap_or(0.0).max(1e-300);
    for &lam in &eig.values {
        if lam < EIGENVALUE_FLOOR * lam_max {
            return Err(EstimateError::Degenerate {
                what: format!("moment product is numerically singular (eigenvalue {lam})"),
            });
        }
    }

    // Step 4: U₁ = E·D^{1/2}·E⁻¹ (symmetric square root), U₂, U₃.
    let u1 = eig.map_spectrum(|lam| lam.max(0.0).sqrt());
    let u1_lu = Lu::decompose(&u1)
        .map_err(|e| EstimateError::Numerical(format!("U1 inversion failed: {e}")))?;
    let u1_inv = u1_lu.inverse()?;
    let u2 = u1_inv.matmul(&r12);
    let u2_inv = Lu::decompose(&u2)
        .map_err(|e| EstimateError::Numerical(format!("U2 inversion failed: {e}")))?
        .inverse()?;

    // Steps 5–6: recover the orthogonal factor U from each conditional
    // moment matrix and average the resulting V₁ estimates.
    //
    // A conditional matrix only identifies U when its eigenvalues
    // (the entries of column j₃ of P₃, Lemma 8) are distinct: exact
    // ties make the eigenvectors arbitrary within the tied subspace.
    // Exact ties occur for the paper's own arity-4 matrices, so a
    // first pass skips j₃ whose spectrum is (numerically) degenerate;
    // if every j₃ is degenerate we fall back to using them all, which
    // is the paper's literal behaviour.
    let run = |require_gap: bool| -> crate::Result<(Matrix, usize)> {
        let mut v1_acc = Matrix::zeros(k, k);
        let mut used = 0usize;
        for j3 in 1..=k {
            let n_j3: f64 = (1..=k)
                .flat_map(|a| (1..=k).map(move |b| (a, b)))
                .map(|(a, b)| counts.get(a, b, j3))
                .sum();
            if n_j3 < 1.0 {
                continue;
            }
            let rc = Matrix::from_fn(k, k, |a, b| counts.get(a + 1, b + 1, j3) / n_j3);
            // M' = U₁⁻ᵀ·R_c·U₂⁻¹ = Uᵀ·W·U / p(j₃): symmetric with
            // eigenvector basis Uᵀ (U₁ is symmetric, so U₁⁻ᵀ = U₁⁻¹).
            let m_cond = u1_inv.matmul(&rc).matmul(&u2_inv);
            let Ok(eig_cond) = symmetric_eigen(&m_cond.symmetrize()?) else {
                continue;
            };
            if require_gap {
                let spread = eig_cond.values.first().unwrap_or(&0.0)
                    - eig_cond.values.last().unwrap_or(&0.0);
                let min_gap = eig_cond
                    .values
                    .windows(2)
                    .map(|w| w[0] - w[1])
                    .fold(f64::INFINITY, f64::min);
                if spread.is_nan() || spread <= 0.0 || min_gap < 1e-8 * spread.max(1e-12) {
                    continue;
                }
            }
            let u_est = eig_cond.vectors.transpose();
            let mut v1_j3 = u_est.matmul(&u1);
            fix_row_signs(&mut v1_j3);
            let aligned = align_rows_greedy(&v1_j3);
            v1_acc = v1_acc.add_matrix(&aligned);
            used += 1;
        }
        Ok((v1_acc, used))
    };
    let (v1_acc, used) = {
        let (acc, used) = run(true)?;
        if used > 0 { (acc, used) } else { run(false)? }
    };
    if used == 0 {
        return Err(EstimateError::Degenerate {
            what: "no conditional moment matrix was usable (worker 3 responses too sparse)".into(),
        });
    }
    let v1 = v1_acc.scale(1.0 / used as f64);

    // Step 7: V₂ = V₁⁻ᵀ·R₁₂, V₃ = V₁⁻ᵀ·R₁₃.
    let v1t_inv = Lu::decompose(&v1.transpose())
        .map_err(|e| EstimateError::Numerical(format!("V1 inversion failed: {e}")))?
        .inverse()?;
    let v2 = v1t_inv.matmul(&r12);
    let v3 = v1t_inv.matmul(&r13);

    for (i, v) in [&v1, &v2, &v3].into_iter().enumerate() {
        if !v.all_finite() {
            return Err(EstimateError::Numerical(format!(
                "V{} contains non-finite entries",
                i + 1
            )));
        }
    }
    Ok(ProbEstimate { v: [v1, v2, v3] })
}

/// Builds the *population* counts tensor (expected counts for `n`
/// tasks, all attempted by all three workers) from true parameters.
/// Useful for exact-recovery tests and documentation examples.
///
/// # Example
///
/// `ProbEstimate` recovers the true response-probability matrices
/// exactly from population moments:
///
/// ```
/// use crowd_core::kary::{population_counts, prob_estimate};
///
/// let p = [
///     crowd_sim::paper_matrices(2)[0].clone(),
///     crowd_sim::paper_matrices(2)[1].clone(),
///     crowd_sim::paper_matrices(2)[2].clone(),
/// ];
/// let counts = population_counts(&p, &[0.5, 0.5], 10_000.0);
/// let est = prob_estimate(&counts)?;
/// assert!(est.response_probabilities(0).approx_eq(&p[0], 1e-5));
/// # Ok::<(), crowd_core::EstimateError>(())
/// ```
pub fn population_counts(p: &[Matrix; 3], selectivity: &[f64], n: f64) -> CountsTensor {
    let k = selectivity.len();
    let mut counts = CountsTensor::zeros(k);
    for a in 1..=k {
        for b in 1..=k {
            for c in 1..=k {
                let mut prob = 0.0;
                for (t, &s) in selectivity.iter().enumerate() {
                    prob += s * p[0].get(t, a - 1) * p[1].get(t, b - 1) * p[2].get(t, c - 1);
                }
                counts.set(a, b, c, n * prob);
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expected_v(p: &Matrix, selectivity: &[f64]) -> Matrix {
        Matrix::from_fn(p.rows(), p.cols(), |r, c| {
            selectivity[r].sqrt() * p.get(r, c)
        })
    }

    #[test]
    fn recovers_truth_from_population_counts_arity2() {
        let p = [
            Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]),
            Matrix::from_rows(&[&[0.8, 0.2], &[0.1, 0.9]]),
            Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]),
        ];
        let s = [0.5, 0.5];
        let counts = population_counts(&p, &s, 10_000.0);
        let est = prob_estimate(&counts).unwrap();
        for i in 0..3 {
            let want = expected_v(&p[i], &s);
            assert!(
                est.v[i].approx_eq(&want, 1e-6),
                "V{} mismatch:\ngot {:?}\nwant {want:?}",
                i + 1,
                est.v[i]
            );
        }
    }

    #[test]
    fn recovers_truth_from_population_counts_arity3_skewed_selectivity() {
        let p = [
            Matrix::from_rows(&[&[0.6, 0.3, 0.1], &[0.1, 0.6, 0.3], &[0.3, 0.1, 0.6]]),
            Matrix::from_rows(&[&[0.8, 0.1, 0.1], &[0.2, 0.8, 0.0], &[0.0, 0.2, 0.8]]),
            Matrix::from_rows(&[&[0.9, 0.0, 0.1], &[0.1, 0.9, 0.0], &[0.0, 0.2, 0.8]]),
        ];
        let s = [0.5, 0.3, 0.2];
        let counts = population_counts(&p, &s, 10_000.0);
        let est = prob_estimate(&counts).unwrap();
        for i in 0..3 {
            let want = expected_v(&p[i], &s);
            assert!(
                est.v[i].approx_eq(&want, 1e-5),
                "V{} mismatch:\ngot {:?}\nwant {want:?}",
                i + 1,
                est.v[i]
            );
        }
        // Derived quantities.
        let sel = est.selectivity();
        for (got, want) in sel.iter().zip(&s) {
            assert!((got - want).abs() < 1e-5, "selectivity {sel:?}");
        }
        for i in 0..3 {
            let probs = est.response_probabilities(i);
            assert!(
                probs.approx_eq(&p[i], 1e-5),
                "P{} mismatch: {probs:?}",
                i + 1
            );
        }
    }

    #[test]
    fn recovers_truth_arity4() {
        let pool = crowd_sim::paper_matrices(4);
        let p = [pool[0].clone(), pool[1].clone(), pool[2].clone()];
        let s = [0.25, 0.25, 0.25, 0.25];
        let counts = population_counts(&p, &s, 100_000.0);
        let est = prob_estimate(&counts).unwrap();
        for i in 0..3 {
            let want = expected_v(&p[i], &s);
            assert!(
                est.v[i].approx_eq(&want, 1e-5),
                "V{} mismatch:\ngot {:?}\nwant {want:?}",
                i + 1,
                est.v[i]
            );
        }
    }

    #[test]
    fn empty_counts_rejected() {
        let counts = CountsTensor::zeros(2);
        assert!(matches!(
            prob_estimate(&counts),
            Err(EstimateError::Degenerate { .. })
        ));
    }

    #[test]
    fn rank_deficient_moments_rejected() {
        // All three workers always answer r0 regardless of truth:
        // the frequency matrices are rank 1 → singular.
        let mut counts = CountsTensor::zeros(2);
        counts.set(1, 1, 1, 50.0);
        let err = prob_estimate(&counts).unwrap_err();
        assert!(
            matches!(
                err,
                EstimateError::Degenerate { .. } | EstimateError::Numerical(_)
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn sampled_counts_approach_population_estimates() {
        use crowd_data::WorkerId;
        use crowd_sim::{KaryScenario, rng};
        let scenario = KaryScenario::paper_default(3, 4000, 1.0);
        let mut r = rng(149);
        let inst = scenario.generate(&mut r);
        let counts =
            CountsTensor::from_matrix(inst.responses(), WorkerId(0), WorkerId(1), WorkerId(2));
        let est = prob_estimate(&counts).unwrap();
        for i in 0..3u32 {
            let probs = est.response_probabilities(i as usize);
            let truth = inst.true_confusion(WorkerId(i));
            for r_ in 0..3 {
                for c in 0..3 {
                    assert!(
                        (probs.get(r_, c) - truth.get(r_, c)).abs() < 0.08,
                        "worker {i} P[{r_},{c}]: {} vs {}",
                        probs.get(r_, c),
                        truth.get(r_, c)
                    );
                }
            }
        }
    }
}
