//! Row permutation and sign disambiguation (Algorithm A3, step 6.d).
//!
//! The eigenvector basis recovered from the conditional moment matrix
//! determines `V₁ = S^{1/2}P₁` only up to row permutation and row
//! signs. Two facts break the ambiguity:
//!
//! * rows of `V₁` are nonnegative (probabilities scaled by a positive
//!   square root), so a row with negative sum has flipped sign;
//! * `P₁` is diagonally dominant per the model assumption
//!   `P[j,j] > P[j,j']`, so row `j`'s largest entry sits in column `j`.

use crowd_linalg::Matrix;

/// Flips the sign of every row whose sum is negative, in place.
pub fn fix_row_signs(m: &mut Matrix) {
    for r in 0..m.rows() {
        let sum: f64 = m.row(r).iter().sum();
        if sum < 0.0 {
            for v in m.row_mut(r) {
                *v = -*v;
            }
        }
    }
}

/// The paper's literal step 6.d: for each row `j` in order, find the
/// column of its largest element and swap row `j` with that row index.
pub fn align_rows_paper(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let k = out.rows();
    for j in 0..k {
        let row = out.row(j);
        let jstar = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite entries"))
            .map(|(c, _)| c)
            .expect("non-empty row");
        out.swap_rows(j, jstar);
    }
    out
}

/// Greedy global assignment: repeatedly take the largest entry of the
/// matrix whose row and target position are both unassigned, and send
/// that row to that column's position. More robust than the in-order
/// swap when two rows share a dominant column; used as the default.
pub fn align_rows_greedy(m: &Matrix) -> Matrix {
    let k = m.rows();
    let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(k * k);
    for r in 0..k {
        for c in 0..m.cols().min(k) {
            entries.push((r, c, m.get(r, c)));
        }
    }
    entries.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite entries"));
    let mut row_for_pos: Vec<Option<usize>> = vec![None; k];
    let mut row_used = vec![false; k];
    for (r, c, _) in entries {
        if !row_used[r] && row_for_pos[c].is_none() {
            row_for_pos[c] = Some(r);
            row_used[r] = true;
        }
    }
    // Any leftovers (ties/degenerate) fill the remaining positions in
    // order.
    let mut spare: Vec<usize> = (0..k).filter(|&r| !row_used[r]).collect();
    let perm: Vec<usize> = row_for_pos
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| spare.remove(0)))
        .collect();
    m.permute_rows(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_fix_flips_negative_rows() {
        let mut m = Matrix::from_rows(&[&[-0.6, -0.4], &[0.3, 0.7]]);
        fix_row_signs(&mut m);
        assert!(m.get(0, 0) > 0.0);
        assert!((m.get(0, 1) - 0.4).abs() < 1e-15);
        assert!((m.get(1, 1) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn greedy_alignment_restores_scrambled_identityish() {
        // A diagonally-dominant matrix with rows shuffled.
        let target = Matrix::from_rows(&[&[0.8, 0.1, 0.1], &[0.2, 0.7, 0.1], &[0.05, 0.15, 0.8]]);
        let scrambled = target.permute_rows(&[2, 0, 1]);
        let aligned = align_rows_greedy(&scrambled);
        assert!(
            aligned.approx_eq(&target, 1e-12),
            "greedy failed: {aligned:?}"
        );
    }

    #[test]
    fn paper_alignment_restores_simple_shuffles() {
        let target = Matrix::from_rows(&[&[0.9, 0.1], &[0.25, 0.75]]);
        let scrambled = target.permute_rows(&[1, 0]);
        let aligned = align_rows_paper(&scrambled);
        assert!(aligned.approx_eq(&target, 1e-12));
    }

    #[test]
    fn greedy_handles_contested_columns() {
        // Both rows peak in column 0, but row 0 peaks harder; greedy
        // gives column 0 to row 0 and places row 1 at position 1.
        let m = Matrix::from_rows(&[&[0.9, 0.1], &[0.6, 0.4]]);
        let aligned = align_rows_greedy(&m);
        assert_eq!(aligned.row(0), &[0.9, 0.1]);
        assert_eq!(aligned.row(1), &[0.6, 0.4]);
        // ... even when presented in the conflicting order.
        let m = Matrix::from_rows(&[&[0.6, 0.4], &[0.9, 0.1]]);
        let aligned = align_rows_greedy(&m);
        assert_eq!(aligned.row(0), &[0.9, 0.1]);
        assert_eq!(aligned.row(1), &[0.6, 0.4]);
    }

    #[test]
    fn alignment_is_identity_on_aligned_input() {
        let m = Matrix::from_rows(&[&[0.7, 0.3], &[0.2, 0.8]]);
        assert!(align_rows_greedy(&m).approx_eq(&m, 0.0));
        assert!(align_rows_paper(&m).approx_eq(&m, 0.0));
    }
}
