//! The k-ary estimator — Algorithm A3 (§IV-A).
//!
//! Workers have k×k response-probability matrices `P_i` and tasks a
//! selectivity prior `S`. From the counts tensor of a worker triple the
//! method recovers `V_i = S_D^{1/2}·P_i` by pure moment algebra:
//!
//! * second-order moments give `R_{i₁,i₂} = P_{i₁}ᵀ S_D P_{i₂}`
//!   (Lemma 6), so `R₁₂R₃₂⁻¹R₃₁ = V₁ᵀV₁` (Lemma 7) and a symmetric
//!   eigendecomposition yields `V₁` up to an orthogonal factor `U`;
//! * third-order moments conditioned on `w₃`'s response (Lemma 8)
//!   expose `U` as the eigenvector basis of `U₁⁻ᵀ R_{1,2|3=j₃} U₂⁻¹`,
//!   with the row permutation/sign ambiguity resolved by the
//!   diagonal-dominance assumption `P[j,j] > P[j,j']`;
//! * confidence intervals come from Theorem 1 with multinomial
//!   covariances of the counts (Lemma 9) and numerically-differentiated
//!   sensitivities of the whole `ProbEstimate` pipeline.

mod align;
mod covariance;
mod estimator;
mod m_worker;
mod prob_estimate;

pub use align::{align_rows_greedy, align_rows_paper, fix_row_signs};
pub use covariance::counts_covariance;
pub use estimator::{KaryAssessment, KaryEstimator};
pub use m_worker::{KaryEvalScratch, KaryMWorkerEstimator, KaryWorkerAssessment, KaryWorkerReport};
pub use prob_estimate::{ProbEstimate, population_counts, prob_estimate};
