//! m-worker k-ary estimation — the natural composition of Algorithms
//! A2 and A3, provided as an **extension beyond the paper**.
//!
//! The paper's k-ary method (Algorithm A3, §IV) evaluates exactly three
//! workers; its real-data protocol (§IV-C) side-steps larger crowds by
//! sampling random triples. This module evaluates *every* worker of an
//! m-worker k-ary dataset the way Algorithm A2 does for binary data:
//!
//! 1. split the peers of the evaluated worker `w` into disjoint pairs,
//!    greedily by task overlap ([`crate::pairing`]);
//! 2. run the full A3 pipeline on each triple `(w, a, b)` with `w` in
//!    slot 1, keeping the point estimates `V₁ = S^{1/2}P_w`, the numeric
//!    gradients and the Lemma 9 counts covariance
//!    ([`super::estimator::triple_detail`]);
//! 3. for each response-probability entry, combine the per-triple
//!    estimates with the Lemma 5 minimum-variance weights against a
//!    cross-triple covariance matrix (see below);
//! 4. apply Theorem 1 once more per entry, and row-normalize exactly as
//!    A3 does.
//!
//! # Cross-triple covariance
//!
//! Estimates from triples `(w, a₁, b₁)` and `(w, a₂, b₂)` correlate
//! because both observe worker `w`'s responses (and the true labels) on
//! the tasks all five workers share. For counts entries
//! `e₁ = (x₁, y₁, z₁)` and `e₂ = (x₂, y₂, z₂)` of the two tensors'
//! all-three blocks, each of the `n₅` shared tasks contributes
//!
//! ```text
//! Cov(C₁[e₁], C₂[e₂]) = n₅·( 1(x₁ = x₂)·J − π₁·π₂ )
//! π₁ = Σ_t S_t·P_w[t,x₁]·P_{a₁}[t,y₁]·P_{b₁}[t,z₁]
//! π₂ = Σ_t S_t·P_w[t,x₂]·P_{a₂}[t,y₂]·P_{b₂}[t,z₂]
//! J  = Σ_t S_t·P_w[t,x₁]·P_{a₁}[t,y₁]·P_{b₁}[t,z₁]·P_{a₂}[t,y₂]·P_{b₂}[t,z₂]
//! ```
//!
//! (tasks observed by only one triple are independent across triples
//! and contribute nothing). The model quantities are plugged in from
//! the per-triple estimates, mirroring how Lemma 4 plugs `p̂ᵢ` and
//! `q̂ₐᵦ` into the binary cross-triple covariance. Pushing these counts
//! covariances through the per-triple gradients gives the entry-level
//! covariance used by the Lemma 5 weights.
//!
//! When [`EstimatorConfig::perturb_partial_counts`] is enabled, the
//! two-worker blocks participate in each triple's *own* variance but
//! are treated as independent across triples: a task in tensor 1's
//! `(w, a₁)` block can reach tensor 2's all-three block, but the
//! resulting terms are higher-order in sparsity and omitted. The
//! Cauchy-Schwarz clip below keeps the assembled matrices valid
//! regardless.
//!
//! # How much does aggregation help?
//!
//! Far less than in the binary case, and measurably so: Monte-Carlo
//! runs (see `EXPERIMENTS.md`) put the correlation between two
//! disjoint triples' estimates of the same `V₁` entry at ρ ≈ 0.9 —
//! the k-ary pipeline's sampling noise is dominated by the evaluated
//! worker's *own* multinomial responses and the shared truth
//! realization, which every triple observes identically. The
//! minimum-variance combination therefore shrinks intervals by a few
//! percent rather than by `√l`. The real value of the extension is
//! (a) evaluating *every* worker of a large k-ary crowd instead of
//! hand-picked triples, and (b) robustness: a degenerate triple
//! (singular moment matrix, spectrum ties) no longer fails the
//! worker, because the surviving triples carry the estimate.

use crate::kary::estimator::{TripleDetail, triple_detail};
use crate::pairing::form_pairs_limited;
use crate::{CoverageStats, EstimateError, EstimatorConfig, Result};
use crowd_data::{
    AnchoredOverlap, AnchoredScratch, CountsTensor, OverlapIndex, OverlapSource, PeerGramScratch,
    ResponseMatrix, StreamingIndex, TriplePairGram, WorkerId,
};
use crowd_linalg::Matrix;
use crowd_stats::{ConfidenceInterval, delta_variance, min_variance_weights};

/// Reusable per-thread scratch for the k-ary indexed evaluate-all hot
/// path — the k-ary counterpart of [`crate::EvalScratch`]: the peer-id
/// buffer, the anchored view's mask words and the per-triple counts
/// tensor all survive from one evaluated worker to the next, so a
/// thread's whole chunk re-fills the same allocations instead of
/// building a fresh `(k+1)³` tensor per triple and fresh mask words
/// per worker. Scratch state never influences outputs — results stay
/// bit-identical to the scratch-free path.
#[derive(Debug, Default)]
pub struct KaryEvalScratch {
    peers: Vec<WorkerId>,
    anchored: AnchoredScratch,
    /// Lazily sized on first use (the scratch does not know the arity
    /// until it meets its first index).
    tensor: Option<CountsTensor>,
    /// The cross-triple `n₅` table and the combined-mask scratch of
    /// its blocked kernel (see [`crowd_data::gram`]).
    n5: TriplePairGram,
    gram_scratch: PeerGramScratch,
}

/// The m-worker k-ary estimator (extension; composes Algorithms A2 and
/// A3).
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, KaryMWorkerEstimator};
/// use crowd_sim::KaryScenario;
///
/// // 5 workers, 400 ternary tasks, 90% attempt density.
/// let instance = KaryScenario::paper_default(3, 400, 0.9)
///     .with_workers(5)
///     .generate(&mut crowd_sim::rng(7));
///
/// let estimator = KaryMWorkerEstimator::new(EstimatorConfig::default());
/// let report = estimator.evaluate_all(instance.responses(), 0.9)?;
/// for a in &report.assessments {
///     // k×k response-probability intervals per worker.
///     assert_eq!(a.intervals.len(), 9);
/// }
/// # Ok::<(), crowd_core::EstimateError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct KaryMWorkerEstimator {
    config: EstimatorConfig,
}

/// Confidence intervals for one worker's k×k response-probability
/// matrix, aggregated over every usable triple.
#[derive(Debug, Clone)]
pub struct KaryWorkerAssessment {
    /// The evaluated worker.
    pub worker: WorkerId,
    /// Combined point estimate of `V = S^{1/2}·P_w`.
    pub v: Matrix,
    /// Row-normalized response-probability estimate `P̂_w`.
    pub response_prob: Matrix,
    /// Selectivity prior implied by the combined row masses.
    pub selectivity: Vec<f64>,
    /// k×k confidence intervals on `P_w`, row-major: entry `r·k + c`
    /// bounds `P_w[r, c]`.
    pub intervals: Vec<ConfidenceInterval>,
    /// Number of triples that contributed.
    pub triples_used: usize,
    /// True when any entry's weight solve fell back (singular
    /// covariance → ridge → uniform).
    pub weights_fell_back: bool,
}

impl KaryWorkerAssessment {
    /// The interval for `P(worker responds r_col | truth r_row)`.
    pub fn interval(&self, row: usize, col: usize) -> &ConfidenceInterval {
        &self.intervals[row * self.v.rows() + col]
    }

    /// Mean interval size across all k² response probabilities.
    pub fn mean_interval_size(&self) -> f64 {
        let total: f64 = self.intervals.iter().map(|ci| ci.size()).sum();
        total / self.intervals.len() as f64
    }

    /// Scores coverage of the worker's true response-probability
    /// matrix.
    pub fn coverage(&self, truth: &Matrix) -> CoverageStats {
        let k = self.v.rows();
        let mut stats = CoverageStats::default();
        for r in 0..k {
            for c in 0..k {
                stats.record(self.interval(r, c).contains(truth.get(r, c)));
            }
        }
        stats
    }
}

/// Per-worker outcomes of an [`KaryMWorkerEstimator::evaluate_all`]
/// run; sparse data routinely leaves a few workers unevaluable.
#[derive(Debug, Clone, Default)]
pub struct KaryWorkerReport {
    /// Workers successfully evaluated.
    pub assessments: Vec<KaryWorkerAssessment>,
    /// Workers that could not be evaluated, with the reason.
    pub failures: Vec<(WorkerId, EstimateError)>,
}

impl KaryWorkerReport {
    /// Mean interval size over every assessed entry.
    pub fn mean_interval_size(&self) -> f64 {
        let total: f64 = self
            .assessments
            .iter()
            .map(|a| a.mean_interval_size())
            .sum();
        total / self.assessments.len().max(1) as f64
    }

    /// Coverage of true response-probability matrices, with `truth`
    /// supplying each worker's matrix (return `None` to skip).
    pub fn coverage(&self, truth: impl Fn(WorkerId) -> Option<Matrix>) -> CoverageStats {
        let mut stats = CoverageStats::default();
        for a in &self.assessments {
            if let Some(t) = truth(a.worker) {
                stats.merge(a.coverage(&t));
            }
        }
        stats
    }

    /// Recombines disjoint partial reports into one fleet report in
    /// canonical worker order — the k-ary twin of
    /// [`crate::WorkerReport::merge`]: rows are kept verbatim and only
    /// reordered (stable sort), so merged shard output is bit-identical
    /// to a single-process `evaluate_all`.
    pub fn merge(parts: impl IntoIterator<Item = KaryWorkerReport>) -> KaryWorkerReport {
        let mut merged = KaryWorkerReport::default();
        for part in parts {
            merged.assessments.extend(part.assessments);
            merged.failures.extend(part.failures);
        }
        merged.assessments.sort_by_key(|a| a.worker);
        merged.failures.sort_by_key(|f| f.0);
        merged
    }
}

/// One evaluated triple: the A3 detail plus the plug-in model
/// estimates the cross-covariance needs.
struct TripleCtx {
    peers: (WorkerId, WorkerId),
    detail: TripleDetail,
    /// Row-normalized `P̂` for slots (target, peer a, peer b).
    p_hat: [Matrix; 3],
    /// Delta-method variance of each `V₁` entry (k², row-major).
    var: Vec<f64>,
}

impl KaryMWorkerEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Evaluates a single worker, aggregating every usable triple.
    pub fn evaluate_worker(
        &self,
        data: &ResponseMatrix,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment> {
        self.evaluate_worker_with(data, worker, confidence, |a, b| {
            CountsTensor::from_matrix(data, worker, a, b)
        })
    }

    /// [`KaryMWorkerEstimator::evaluate_worker`] against an
    /// [`OverlapIndex`]: pairing reads the O(1) pair table, counts
    /// tensors are harvested by CSR union merges, and the `n₅`
    /// cross-triple counts become bitset popcounts on the anchored
    /// view. Identical output to the matrix path.
    pub fn evaluate_worker_indexed(
        &self,
        index: &OverlapIndex,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment> {
        self.evaluate_worker_with(index, worker, confidence, |a, b| {
            CountsTensor::from_index(index, worker, a, b)
        })
    }

    /// [`KaryMWorkerEstimator::evaluate_worker_indexed`] with
    /// caller-held [`KaryEvalScratch`]: counts tensors are re-filled
    /// in place and the anchored view is built into the scratch's
    /// reusable mask words, so an evaluate-all loop allocates nothing
    /// per worker once the buffers reach their high-water marks.
    /// Outputs are bit-identical to the scratch-free path.
    pub fn evaluate_worker_indexed_scratch(
        &self,
        index: &OverlapIndex,
        worker: WorkerId,
        confidence: f64,
        scratch: &mut KaryEvalScratch,
    ) -> Result<KaryWorkerAssessment> {
        let KaryEvalScratch {
            peers,
            anchored,
            tensor,
            n5,
            gram_scratch,
        } = scratch;
        self.evaluate_worker_via(
            index,
            worker,
            confidence,
            peers,
            tensor,
            n5,
            gram_scratch,
            |buf, a, b| {
                // First use sizes the tensor; fill_from_index re-shapes
                // on arity change, so cross-index scratch reuse is safe.
                buf.get_or_insert_with(|| CountsTensor::zeros(index.arity() as usize))
                    .fill_from_index(index, worker, a, b);
            },
            |ps| index.anchored_for_in(worker, ps, anchored),
        )
    }

    /// The substrate-generic worker evaluation behind the matrix,
    /// indexed and streaming entry points: overlap statistics come
    /// from `src`, counts tensors from the `tensor` closure.
    pub(crate) fn evaluate_worker_with<S: OverlapSource>(
        &self,
        src: &S,
        worker: WorkerId,
        confidence: f64,
        tensor: impl Fn(WorkerId, WorkerId) -> CountsTensor,
    ) -> Result<KaryWorkerAssessment> {
        self.evaluate_worker_via(
            src,
            worker,
            confidence,
            &mut Vec::new(),
            &mut None,
            &mut TriplePairGram::default(),
            &mut PeerGramScratch::default(),
            |buf, a, b| *buf = Some(tensor(a, b)),
            |peers| src.anchored_for(worker, peers),
        )
    }

    /// Evaluates one worker against a maintained [`StreamingIndex`]:
    /// overlap statistics come from the stream's peer-scoped anchored
    /// views, counts tensors from union merges of the accumulated
    /// index's adjacency rows. Bit-identical to the batch
    /// [`KaryMWorkerEstimator::evaluate_all`] row on the accumulated
    /// data — the public entry point behind
    /// [`crate::KaryIncrementalEvaluator`] and the shard-resident
    /// assessment runtime.
    pub fn evaluate_worker_streaming(
        &self,
        stream: &StreamingIndex,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment> {
        self.evaluate_worker_with(stream, worker, confidence, |a, b| {
            CountsTensor::from_index(stream.index(), worker, a, b)
        })
    }

    /// [`KaryMWorkerEstimator::evaluate_worker_streaming`] for a set
    /// of workers, collecting per-worker outcomes into one
    /// [`KaryWorkerReport`] (assessments and failures in `workers`
    /// order); per-shard reports recombined with
    /// [`KaryWorkerReport::merge`] equal a serial full-fleet pass.
    pub fn evaluate_workers_streaming(
        &self,
        stream: &StreamingIndex,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<KaryWorkerReport> {
        let m = OverlapSource::n_workers(stream);
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let mut report = KaryWorkerReport::default();
        for &worker in workers {
            match self.evaluate_worker_streaming(stream, worker, confidence) {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            }
        }
        Ok(report)
    }

    /// The evaluation body behind every entry point: pairing, the
    /// per-triple A3 pipelines (each counts tensor produced by `fill`
    /// into the reusable `tensor_buf`), and — when more than one
    /// triple survives — the peer-scoped anchored view built by `view`
    /// from the selected peer set, whose one-pass
    /// [`AnchoredOverlap::pair_gram_into`] kernel batches every `n₅`
    /// cross-triple count.
    // The scratch buffers arrive as separate parameters (not one
    // struct) because `fill` and `view` must borrow disjoint fields of
    // the caller's scratch at the same time.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_worker_via<S: OverlapSource, A: AnchoredOverlap>(
        &self,
        src: &S,
        worker: WorkerId,
        confidence: f64,
        peers_buf: &mut Vec<WorkerId>,
        tensor_buf: &mut Option<CountsTensor>,
        n5: &mut TriplePairGram,
        gram_scratch: &mut PeerGramScratch,
        mut fill: impl FnMut(&mut Option<CountsTensor>, WorkerId, WorkerId),
        view: impl FnOnce(&[WorkerId]) -> A,
    ) -> Result<KaryWorkerAssessment> {
        if src.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: src.n_workers(),
                need: 3,
            });
        }
        let k = src.arity() as usize;
        let pairs = form_pairs_limited(
            src,
            worker,
            self.config.pairing,
            self.config.min_pair_overlap,
            self.config.max_triples,
        );

        let mut ctxs: Vec<TripleCtx> = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            fill(tensor_buf, a, b);
            let counts = tensor_buf
                .as_ref()
                .expect("fill populated the tensor buffer");
            match triple_detail(counts, &self.config) {
                Ok(detail) => {
                    let p_hat = [
                        detail.base.response_probabilities(0),
                        detail.base.response_probabilities(1),
                        detail.base.response_probabilities(2),
                    ];
                    let var = entry_variances(&detail, k)?;
                    ctxs.push(TripleCtx {
                        peers: (a, b),
                        detail,
                        p_hat,
                        var,
                    });
                }
                // Degenerate decompositions and numerically singular
                // moment matrices are data problems of that one triple;
                // drop it and let the rest carry the estimate, exactly
                // as A2 drops uninvertible binary triples.
                Err(
                    EstimateError::Degenerate { .. }
                    | EstimateError::InsufficientOverlap { .. }
                    | EstimateError::Numerical(_),
                ) => {}
                Err(other) => return Err(other),
            }
        }
        if ctxs.is_empty() {
            return Err(EstimateError::NoUsableTriples { worker });
        }

        // Plug-in model quantities for the cross-triple covariance:
        // the mean of the per-triple estimates of P_w and S.
        let p_w = mean_matrix(ctxs.iter().map(|c| &c.p_hat[0]), k);
        let s_hat = mean_selectivity(&ctxs, k);

        let l = ctxs.len();
        let cells = k * k;
        let mut combined_v = Matrix::zeros(k, k);
        let mut combined_dev = vec![0.0; cells];
        let mut fell_back = false;

        // `n₅` per triple pair, hoisted out of the per-entry loops (it
        // is entry-independent) and batched through the blocked
        // [`AnchoredOverlap::pair_gram_into`] kernel: each triple's
        // two peer masks are AND-combined once and the T×T table is
        // one blocked Gram pass instead of O(T²) 4-way intersections.
        // The view is scoped to the surviving triples' peers (distinct
        // count ≤ 2l mask rows, never n_workers). With a single triple
        // there are no cross terms, so skip the view build entirely
        // (the common m = 3..4 case).
        if l >= 2 {
            // Sorted and deduplicated, so the view's mask is sized by
            // the distinct-peer count, not 2·pairs.
            peers_buf.clear();
            peers_buf.extend(ctxs.iter().flat_map(|c| [c.peers.0, c.peers.1]));
            peers_buf.sort_unstable();
            peers_buf.dedup();
            let anchored = view(peers_buf);
            let pair_list: Vec<(WorkerId, WorkerId)> = ctxs.iter().map(|c| c.peers).collect();
            anchored.pair_gram_into(&pair_list, n5, gram_scratch);
        }

        // Per-entry J-term tables, shared across entries of one triple
        // pair only through the gradients, so built per entry below.
        for r in 0..k {
            for c in 0..k {
                let idx = r * k + c;
                let mut cov = Matrix::zeros(l, l);
                for (t, ctx) in ctxs.iter().enumerate() {
                    cov.set(t, t, ctx.var[idx]);
                }
                // A-tables: A[t1][truth][x] = Σ_{y,z} g[(x,y,z)]·
                // P̂_a[truth,y]·P̂_b[truth,z].
                let tables: Vec<Matrix> = ctxs.iter().map(|ctx| j_table(ctx, idx, k)).collect();
                for t1 in 0..l {
                    for t2 in (t1 + 1)..l {
                        let n5 = n5.get(t1, t2);
                        if n5 == 0 {
                            continue;
                        }
                        let raw = cross_entry_covariance(
                            n5 as f64,
                            &p_w,
                            &s_hat,
                            &tables[t1],
                            &tables[t2],
                        );
                        // Cauchy-Schwarz clip, as in the binary Lemma 4
                        // assembly: plug-in cross terms must not exceed
                        // what the diagonal admits.
                        let bound = 0.99 * (cov.get(t1, t1) * cov.get(t2, t2)).sqrt();
                        let clipped = raw.clamp(-bound, bound);
                        cov.set(t1, t2, clipped);
                        cov.set(t2, t1, clipped);
                    }
                }
                let weights = min_variance_weights(&cov, self.config.weight_policy)?;
                fell_back |= weights.fell_back;
                let estimate: f64 = weights
                    .weights
                    .iter()
                    .zip(&ctxs)
                    .map(|(w, ctx)| w * ctx.detail.base.v[0].get(r, c))
                    .sum();
                combined_v.set(r, c, estimate);
                combined_dev[idx] = weights.variance.sqrt();
            }
        }

        // Row-normalize to response probabilities, scaling the
        // intervals by the row mass exactly as A3's final step does.
        let mut intervals = Vec::with_capacity(cells);
        let mut response_prob = Matrix::zeros(k, k);
        let mut selectivity = vec![0.0; k];
        for r in 0..k {
            let mass: f64 = combined_v.row(r).iter().sum();
            if mass <= 0.0 {
                return Err(EstimateError::Degenerate {
                    what: format!("combined V row {r} has non-positive mass"),
                });
            }
            selectivity[r] = mass * mass;
            for c in 0..k {
                let idx = r * k + c;
                response_prob.set(r, c, combined_v.get(r, c) / mass);
                let ci = ConfidenceInterval::from_deviation(
                    combined_v.get(r, c),
                    combined_dev[idx],
                    confidence,
                )?
                .scaled(1.0 / mass);
                if !ci.half_width.is_finite() {
                    return Err(EstimateError::Degenerate {
                        what: format!("non-finite interval for P[{r},{c}]"),
                    });
                }
                intervals.push(ci);
            }
        }
        let total: f64 = selectivity.iter().sum();
        for s in selectivity.iter_mut() {
            *s /= total;
        }

        Ok(KaryWorkerAssessment {
            worker,
            v: combined_v,
            response_prob,
            selectivity,
            intervals,
            triples_used: l,
            weights_fell_back: fell_back,
        })
    }

    /// Evaluates every worker, collecting per-worker failures instead
    /// of aborting. Builds one [`OverlapIndex`] and runs every worker
    /// against it, exactly like the binary
    /// [`crate::MWorkerEstimator::evaluate_all`].
    pub fn evaluate_all(&self, data: &ResponseMatrix, confidence: f64) -> Result<KaryWorkerReport> {
        if data.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: data.n_workers(),
                need: 3,
            });
        }
        let index = OverlapIndex::from_matrix(data);
        self.evaluate_all_indexed(&index, confidence)
    }

    /// [`KaryMWorkerEstimator::evaluate_all`] against a caller-built
    /// index. One [`KaryEvalScratch`] (peer buffer + mask words +
    /// counts tensor) is reused across the whole worker loop,
    /// mirroring the binary path.
    pub fn evaluate_all_indexed(
        &self,
        index: &OverlapIndex,
        confidence: f64,
    ) -> Result<KaryWorkerReport> {
        if index.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: index.n_workers(),
                need: 3,
            });
        }
        let mut scratch = KaryEvalScratch::default();
        let mut report = KaryWorkerReport::default();
        for worker in index.workers() {
            match self.evaluate_worker_indexed_scratch(index, worker, confidence, &mut scratch) {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            }
        }
        Ok(report)
    }

    /// [`KaryMWorkerEstimator::evaluate_all`] across `threads` scoped
    /// worker threads sharing one [`OverlapIndex`], with the same
    /// deterministic contiguous chunking as the binary estimator —
    /// output is identical to the serial path for every thread count.
    pub fn evaluate_all_parallel(
        &self,
        data: &ResponseMatrix,
        confidence: f64,
        threads: usize,
    ) -> Result<KaryWorkerReport> {
        let m = data.n_workers();
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let index = OverlapIndex::from_matrix(data);
        self.evaluate_all_indexed_parallel(&index, confidence, threads)
    }

    /// Parallel [`KaryMWorkerEstimator::evaluate_all_indexed`]: each
    /// thread holds one [`KaryEvalScratch`] reused across its whole
    /// contiguous chunk, and scratch state never influences outputs,
    /// so the report stays bit-identical to the serial path for every
    /// thread count.
    pub fn evaluate_all_indexed_parallel(
        &self,
        index: &OverlapIndex,
        confidence: f64,
        threads: usize,
    ) -> Result<KaryWorkerReport> {
        let m = index.n_workers();
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let threads = threads.max(1).min(m);
        if threads == 1 {
            return self.evaluate_all_indexed(index, confidence);
        }
        let outcomes = crate::parallel::parallel_index_map_with(
            m,
            threads,
            KaryEvalScratch::default,
            |scratch, i| {
                self.evaluate_worker_indexed_scratch(index, WorkerId(i as u32), confidence, scratch)
            },
        );
        let mut report = KaryWorkerReport::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((WorkerId(i as u32), e)),
            }
        }
        Ok(report)
    }

    /// Evaluates only the given workers — the k-ary shard entry point,
    /// mirroring
    /// [`crate::MWorkerEstimator::evaluate_workers_indexed_parallel`]:
    /// per-thread [`KaryEvalScratch`] reuse, outcomes in `workers`
    /// order, each row bit-identical to the corresponding row of a
    /// full-fleet run.
    pub fn evaluate_workers_indexed_parallel(
        &self,
        index: &OverlapIndex,
        workers: &[WorkerId],
        confidence: f64,
        threads: usize,
    ) -> Result<KaryWorkerReport> {
        if index.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: index.n_workers(),
                need: 3,
            });
        }
        let outcomes = crate::parallel::parallel_index_map_with(
            workers.len(),
            threads.max(1),
            KaryEvalScratch::default,
            |scratch, i| {
                self.evaluate_worker_indexed_scratch(index, workers[i], confidence, scratch)
            },
        );
        let mut report = KaryWorkerReport::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((workers[i], e)),
            }
        }
        Ok(report)
    }
}

/// Delta-method variance of every `V₁` entry of one triple.
fn entry_variances(detail: &TripleDetail, k: usize) -> Result<Vec<f64>> {
    let mut var = Vec::with_capacity(k * k);
    for idx in 0..k * k {
        var.push(delta_variance(&detail.gradients[0][idx], &detail.cov)?);
    }
    Ok(var)
}

/// Mean of per-triple k×k matrices.
fn mean_matrix<'a>(mats: impl Iterator<Item = &'a Matrix>, k: usize) -> Matrix {
    let mut sum = Matrix::zeros(k, k);
    let mut n = 0usize;
    for m in mats {
        for r in 0..k {
            for c in 0..k {
                sum.set(r, c, sum.get(r, c) + m.get(r, c));
            }
        }
        n += 1;
    }
    let scale = 1.0 / n.max(1) as f64;
    Matrix::from_fn(k, k, |r, c| sum.get(r, c) * scale)
}

/// Mean of per-triple selectivity estimates.
fn mean_selectivity(ctxs: &[TripleCtx], k: usize) -> Vec<f64> {
    let mut s = vec![0.0; k];
    for ctx in ctxs {
        for (acc, v) in s.iter_mut().zip(ctx.detail.base.selectivity()) {
            *acc += v;
        }
    }
    let total: f64 = s.iter().sum();
    if total > 0.0 {
        for v in s.iter_mut() {
            *v /= total;
        }
    } else {
        s = vec![1.0 / k as f64; k];
    }
    s
}

/// The per-triple J-table for one `V₁` entry:
/// `table[truth][x] = Σ_{y,z} g[(x,y,z)]·P̂_a[truth,y]·P̂_b[truth,z]`,
/// restricted to the all-three counts block (see the module docs).
fn j_table(ctx: &TripleCtx, entry_idx: usize, k: usize) -> Matrix {
    let g = &ctx.detail.gradients[0][entry_idx];
    let pa = &ctx.p_hat[1];
    let pb = &ctx.p_hat[2];
    let mut table = Matrix::zeros(k, k);
    for (e, &(x, y, z)) in ctx.detail.entries.iter().enumerate() {
        if x == 0 || y == 0 || z == 0 {
            continue; // partial blocks excluded from cross terms
        }
        let ge = g[e];
        if ge == 0.0 {
            continue;
        }
        for truth in 0..k {
            let w = pa.get(truth, y - 1) * pb.get(truth, z - 1);
            table.set(truth, x - 1, table.get(truth, x - 1) + ge * w);
        }
    }
    table
}

/// Cross-triple covariance of one `V₁` entry given the two triples'
/// J-tables (see the module docs for the formula).
fn cross_entry_covariance(n5: f64, p_w: &Matrix, s_hat: &[f64], a1: &Matrix, a2: &Matrix) -> f64 {
    let k = p_w.rows();
    let mut joint = 0.0;
    let mut m1 = 0.0;
    let mut m2 = 0.0;
    for truth in 0..k {
        let s = s_hat[truth];
        if s == 0.0 {
            continue;
        }
        for x in 0..k {
            let pw = p_w.get(truth, x);
            joint += s * pw * a1.get(truth, x) * a2.get(truth, x);
            m1 += s * pw * a1.get(truth, x);
            m2 += s * pw * a2.get(truth, x);
        }
    }
    n5 * (joint - m1 * m2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kary::KaryEstimator;
    use crate::pairing::form_pairs;
    use crowd_data::TaskId;
    use crowd_sim::{KaryScenario, rng};
    use crowd_stats::WeightPolicy;

    fn estimator() -> KaryMWorkerEstimator {
        KaryMWorkerEstimator::new(EstimatorConfig::default())
    }

    #[test]
    fn evaluates_every_worker_on_dense_data() {
        let inst = KaryScenario::paper_default(2, 300, 1.0)
            .with_workers(5)
            .generate(&mut rng(71));
        let report = estimator().evaluate_all(inst.responses(), 0.9).unwrap();
        assert_eq!(report.assessments.len() + report.failures.len(), 5);
        assert!(
            report.assessments.len() >= 4,
            "failures: {:?}",
            report.failures
        );
        for a in &report.assessments {
            assert_eq!(a.intervals.len(), 4);
            assert_eq!(a.triples_used, 2);
            assert!(a.mean_interval_size() > 0.0);
            assert!(a.mean_interval_size().is_finite());
        }
    }

    #[test]
    fn three_workers_match_single_triple_a3() {
        // With m = 3 there is exactly one triple, so the m-worker path
        // must reproduce A3's slot-0 answer.
        let inst = KaryScenario::paper_default(2, 400, 1.0).generate(&mut rng(73));
        let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
        let triple = KaryEstimator::default()
            .evaluate(inst.responses(), workers, 0.8)
            .unwrap();
        let combined = estimator()
            .evaluate_worker(inst.responses(), WorkerId(0), 0.8)
            .unwrap();
        assert_eq!(combined.triples_used, 1);
        for r in 0..2 {
            for c in 0..2 {
                let a3 = triple.interval(0, r, c);
                let ext = combined.interval(r, c);
                assert!(
                    (a3.center - ext.center).abs() < 1e-9,
                    "centers differ at ({r},{c}): {} vs {}",
                    a3.center,
                    ext.center
                );
                assert!(
                    (a3.half_width - ext.half_width).abs() < 1e-9,
                    "widths differ at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn more_workers_tighten_intervals_modestly() {
        // Unlike the binary case, k-ary triple aggregation buys little:
        // Monte-Carlo runs show the per-triple estimates of a V₁ entry
        // correlate at ρ ≈ 0.9 across disjoint peer pairs (the noise is
        // dominated by worker w's own responses and the shared truth
        // realization), so the minimum-variance combination of three
        // triples shrinks intervals by percent, not by √3. The honest
        // assertion is "never wider, usually a bit tighter".
        let mut r = rng(79);
        let est = estimator();
        let mut size3 = 0.0;
        let mut size7 = 0.0;
        let mut n = 0;
        for _ in 0..8 {
            let i3 = KaryScenario::paper_default(2, 300, 1.0).generate(&mut r);
            let i7 = KaryScenario::paper_default(2, 300, 1.0)
                .with_workers(7)
                .generate(&mut r);
            let (Ok(a3), Ok(a7)) = (
                est.evaluate_worker(i3.responses(), WorkerId(0), 0.8),
                est.evaluate_worker(i7.responses(), WorkerId(0), 0.8),
            ) else {
                continue;
            };
            size3 += a3.mean_interval_size();
            size7 += a7.mean_interval_size();
            n += 1;
        }
        assert!(n >= 5, "too many degenerate repetitions");
        assert!(
            size7 < size3,
            "7-worker k-ary intervals should not be wider: {size7} vs {size3}"
        );
    }

    #[test]
    fn coverage_tracks_confidence_level() {
        let scenario = KaryScenario::paper_default(2, 300, 0.9).with_workers(5);
        let est = estimator();
        let mut r = rng(83);
        let mut stats = CoverageStats::default();
        for _ in 0..25 {
            let inst = scenario.generate(&mut r);
            let Ok(report) = est.evaluate_all(inst.responses(), 0.9) else {
                continue;
            };
            stats.merge(report.coverage(|w| Some(inst.true_confusion(w))));
        }
        let acc = stats.accuracy().expect("some successes");
        assert!(
            acc > 0.84,
            "m-worker k-ary coverage {acc} at c=0.9 over {} intervals",
            stats.total
        );
    }

    #[test]
    fn point_estimates_are_consistent() {
        let inst = KaryScenario::paper_default(3, 3000, 1.0)
            .with_workers(5)
            .generate(&mut rng(83));
        let a = estimator()
            .evaluate_worker(inst.responses(), WorkerId(1), 0.9)
            .unwrap();
        let truth = inst.true_confusion(WorkerId(1));
        for r in 0..3 {
            for c in 0..3 {
                assert!(
                    (a.response_prob.get(r, c) - truth.get(r, c)).abs() < 0.07,
                    "P[{r},{c}] = {} vs truth {}",
                    a.response_prob.get(r, c),
                    truth.get(r, c)
                );
            }
        }
    }

    #[test]
    fn response_prob_rows_are_distributions() {
        let inst = KaryScenario::paper_default(3, 500, 0.9)
            .with_workers(7)
            .generate(&mut rng(97));
        let a = estimator()
            .evaluate_worker(inst.responses(), WorkerId(0), 0.8)
            .unwrap();
        for r in 0..3 {
            let sum: f64 = a.response_prob.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {r} sums to {sum}");
        }
        let s: f64 = a.selectivity.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_weight_policy_is_supported() {
        let inst = KaryScenario::paper_default(2, 300, 1.0)
            .with_workers(7)
            .generate(&mut rng(101));
        let est = KaryMWorkerEstimator::new(EstimatorConfig {
            weight_policy: WeightPolicy::Uniform,
            ..EstimatorConfig::default()
        });
        let opt = estimator();
        let a_uni = est
            .evaluate_worker(inst.responses(), WorkerId(0), 0.8)
            .unwrap();
        let a_opt = opt
            .evaluate_worker(inst.responses(), WorkerId(0), 0.8)
            .unwrap();
        assert!(
            a_opt.mean_interval_size() <= a_uni.mean_interval_size() + 1e-12,
            "optimal weights must not widen intervals: {} vs {}",
            a_opt.mean_interval_size(),
            a_uni.mean_interval_size()
        );
    }

    #[test]
    fn too_few_workers_rejected() {
        let inst = KaryScenario::paper_default(2, 50, 1.0).generate(&mut rng(103));
        let (two, _) = inst.responses().retain_workers(|w| w.0 < 2);
        assert!(matches!(
            estimator().evaluate_all(&two, 0.9),
            Err(EstimateError::NotEnoughWorkers { .. })
        ));
    }

    #[test]
    fn isolated_worker_fails_gracefully() {
        use crowd_data::{Label, ResponseMatrixBuilder};
        let mut b = ResponseMatrixBuilder::new(4, 61, 2);
        let inst = KaryScenario::paper_default(2, 60, 1.0).generate(&mut rng(107));
        for resp in inst.responses().iter() {
            b.push(resp.worker, resp.task, resp.label).unwrap();
        }
        // Worker 3 answers only a task nobody else attempts.
        b.push(WorkerId(3), TaskId(60), Label(0)).unwrap();
        let data = b.build().unwrap();
        let report = estimator().evaluate_all(&data, 0.9).unwrap();
        let failed: Vec<WorkerId> = report.failures.iter().map(|f| f.0).collect();
        assert!(
            failed.contains(&WorkerId(3)),
            "failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_tensors_per_worker() {
        // Drive the scratch entry point directly over every worker:
        // reused counts tensors and mask words must never leak state
        // between evaluations (the k-ary twin of the binary
        // scratch_reuse test).
        let inst = KaryScenario::paper_default(3, 250, 0.8)
            .with_workers(7)
            .generate(&mut rng(113));
        let index = OverlapIndex::from_matrix(inst.responses());
        let est = estimator();
        let mut scratch = KaryEvalScratch::default();
        for worker in index.workers() {
            let fresh = est.evaluate_worker_indexed(&index, worker, 0.9);
            let reused = est.evaluate_worker_indexed_scratch(&index, worker, 0.9, &mut scratch);
            match (fresh, reused) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.triples_used, b.triples_used, "worker {worker:?}");
                    for (x, y) in a.intervals.iter().zip(&b.intervals) {
                        assert_eq!(x.center.to_bits(), y.center.to_bits(), "worker {worker:?}");
                        assert_eq!(x.half_width.to_bits(), y.half_width.to_bits());
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("outcome mismatch for {worker:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn scratch_survives_arity_changes() {
        // One scratch driven across indices of different arity must
        // re-shape its tensor, not panic or corrupt counts.
        let est = estimator();
        let mut scratch = KaryEvalScratch::default();
        for (arity, seed) in [(2u16, 137u64), (3, 139), (2, 149)] {
            let inst = KaryScenario::paper_default(arity, 200, 1.0)
                .with_workers(5)
                .generate(&mut rng(seed));
            let index = OverlapIndex::from_matrix(inst.responses());
            let fresh = est.evaluate_worker_indexed(&index, WorkerId(0), 0.9);
            let reused =
                est.evaluate_worker_indexed_scratch(&index, WorkerId(0), 0.9, &mut scratch);
            match (fresh, reused) {
                (Ok(a), Ok(b)) => {
                    for (x, y) in a.intervals.iter().zip(&b.intervals) {
                        assert_eq!(x.center.to_bits(), y.center.to_bits(), "arity {arity}");
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("outcome mismatch at arity {arity}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_exactly() {
        let inst = KaryScenario::paper_default(2, 200, 0.9)
            .with_workers(9)
            .generate(&mut rng(127));
        let est = estimator();
        let serial = est.evaluate_all(inst.responses(), 0.9).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let parallel = est
                .evaluate_all_parallel(inst.responses(), 0.9, threads)
                .unwrap();
            assert_eq!(serial.assessments.len(), parallel.assessments.len());
            for (s, p) in serial.assessments.iter().zip(&parallel.assessments) {
                assert_eq!(s.worker, p.worker);
                assert_eq!(s.triples_used, p.triples_used);
                for (x, y) in s.intervals.iter().zip(&p.intervals) {
                    assert_eq!(x.center.to_bits(), y.center.to_bits(), "threads {threads}");
                    assert_eq!(x.half_width.to_bits(), y.half_width.to_bits());
                }
            }
            assert_eq!(serial.failures.len(), parallel.failures.len());
        }
    }

    #[test]
    fn subset_evaluation_matches_full_fleet_rows() {
        let inst = KaryScenario::paper_default(2, 150, 0.9)
            .with_workers(6)
            .generate(&mut rng(131));
        let index = OverlapIndex::from_matrix(inst.responses());
        let est = estimator();
        let full = est.evaluate_all_indexed(&index, 0.9).unwrap();
        let subset = [WorkerId(4), WorkerId(1)];
        let partial = est
            .evaluate_workers_indexed_parallel(&index, &subset, 0.9, 2)
            .unwrap();
        for w in subset {
            let (a, b) = (
                full.assessments.iter().find(|a| a.worker == w),
                partial.assessments.iter().find(|a| a.worker == w),
            );
            match (a, b) {
                (Some(a), Some(b)) => {
                    for (x, y) in a.intervals.iter().zip(&b.intervals) {
                        assert_eq!(x.center.to_bits(), y.center.to_bits(), "worker {w:?}");
                    }
                }
                (None, None) => {}
                _ => panic!("subset coverage mismatch for {w:?}"),
            }
        }
    }

    #[test]
    fn cross_covariance_is_symmetric_in_the_triples() {
        // The raw cross formula must not depend on argument order.
        let inst = KaryScenario::paper_default(2, 300, 1.0)
            .with_workers(5)
            .generate(&mut rng(109));
        let cfg = EstimatorConfig::default();
        let pairs = form_pairs(inst.responses(), WorkerId(0), cfg.pairing, 1);
        assert_eq!(pairs.len(), 2);
        let mut ctxs = Vec::new();
        for (a, b) in pairs {
            let counts = CountsTensor::from_matrix(inst.responses(), WorkerId(0), a, b);
            let detail = triple_detail(&counts, &cfg).unwrap();
            let p_hat = [
                detail.base.response_probabilities(0),
                detail.base.response_probabilities(1),
                detail.base.response_probabilities(2),
            ];
            let var = entry_variances(&detail, 2).unwrap();
            ctxs.push(TripleCtx {
                peers: (a, b),
                detail,
                p_hat,
                var,
            });
        }
        let p_w = mean_matrix(ctxs.iter().map(|c| &c.p_hat[0]), 2);
        let s_hat = mean_selectivity(&ctxs, 2);
        for idx in 0..4 {
            let t1 = j_table(&ctxs[0], idx, 2);
            let t2 = j_table(&ctxs[1], idx, 2);
            let ab = cross_entry_covariance(100.0, &p_w, &s_hat, &t1, &t2);
            let ba = cross_entry_covariance(100.0, &p_w, &s_hat, &t2, &t1);
            assert!(
                (ab - ba).abs() < 1e-12,
                "asymmetric cross covariance: {ab} vs {ba}"
            );
        }
    }
}
