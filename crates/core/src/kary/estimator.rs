//! Algorithm A3 end-to-end: counts tensor → response-probability
//! confidence intervals.

use crate::kary::covariance::{counts_covariance, perturbation_entries};
use crate::kary::prob_estimate::{ProbEstimate, prob_estimate};
use crate::{EstimateError, EstimatorConfig, Result};
use crowd_data::{CountsTensor, OverlapIndex, ResponseMatrix, WorkerId};
use crowd_linalg::Matrix;
use crowd_stats::{ConfidenceInterval, DeltaMethod};

/// The k-ary estimator (Algorithm A3).
#[derive(Debug, Clone, Default)]
pub struct KaryEstimator {
    config: EstimatorConfig,
}

/// Confidence intervals for every response probability of a worker
/// triple.
#[derive(Debug, Clone)]
pub struct KaryAssessment {
    /// The three workers, in slot order.
    pub workers: [WorkerId; 3],
    /// Point estimates `V_i = S^{1/2}P_i`.
    pub v: [Matrix; 3],
    /// Row-normalized response-probability estimates `P̂_i`.
    pub response_prob: [Matrix; 3],
    /// Estimated selectivity prior.
    pub selectivity: Vec<f64>,
    /// `intervals[i]` holds the k×k confidence intervals for worker
    /// slot `i`'s response probabilities, row-major: entry `r·k + c`
    /// bounds `P_i[r, c]`.
    pub intervals: [Vec<ConfidenceInterval>; 3],
    /// Per-slot interval on the worker's *overall* error rate
    /// `1 − Σ_r S_r·P_i[r,r]` — the scalar the binary algorithms
    /// estimate, so k-ary workers plug into the same
    /// [`crate::RetentionPolicy`] machinery. Derived with Theorem 1
    /// from the same counts covariance as the per-entry intervals, so
    /// the cross-entry correlations are accounted for (summing
    /// per-entry deviations would be far too conservative).
    pub error_rate: [ConfidenceInterval; 3],
}

impl KaryAssessment {
    /// The interval for `P(worker responds r_col | truth r_row)`.
    pub fn interval(&self, worker_slot: usize, row: usize, col: usize) -> &ConfidenceInterval {
        let k = self.v[0].rows();
        &self.intervals[worker_slot][row * k + col]
    }

    /// Mean interval size across all `3k²` response probabilities (the
    /// y-axis of Figure 5b).
    pub fn mean_interval_size(&self) -> f64 {
        let total: f64 = self
            .intervals
            .iter()
            .flat_map(|v| v.iter())
            .map(|ci| ci.size())
            .sum();
        let count = self.intervals.iter().map(|v| v.len()).sum::<usize>();
        total / count as f64
    }

    /// Scores coverage of true response-probability matrices.
    pub fn coverage(&self, truth: &[Matrix; 3]) -> crate::CoverageStats {
        let k = self.v[0].rows();
        let mut stats = crate::CoverageStats::default();
        for i in 0..3 {
            for r in 0..k {
                for c in 0..k {
                    stats.record(self.interval(i, r, c).contains(truth[i].get(r, c)));
                }
            }
        }
        stats
    }
}

/// Everything Algorithm A3 derives from one counts tensor *before*
/// Theorem 1 is applied: the point estimates, the numeric gradients of
/// every `V_i` entry, and the Lemma 9 covariance of the perturbed
/// counts entries. [`KaryEstimator::evaluate_counts`] consumes it
/// directly; the m-worker extension
/// ([`crate::kary::KaryMWorkerEstimator`]) reuses it per triple and
/// adds cross-triple covariances on top.
#[derive(Debug, Clone)]
pub(crate) struct TripleDetail {
    /// Point estimates `V₁, V₂, V₃`.
    pub base: ProbEstimate,
    /// The perturbed counts entries, in gradient-index order.
    pub entries: Vec<(usize, usize, usize)>,
    /// `gradients[i][r·k + c][e] = ∂V_i[r,c] / ∂counts[entries[e]]`.
    pub gradients: [Vec<Vec<f64>>; 3],
    /// Lemma 9 covariance matrix of the perturbed counts entries.
    pub cov: Matrix,
}

/// Runs `ProbEstimate`, validates the decomposition, numerically
/// differentiates the pipeline and assembles the counts covariance
/// (Algorithm A3 steps 1–6).
pub(crate) fn triple_detail(
    counts: &CountsTensor,
    config: &EstimatorConfig,
) -> Result<TripleDetail> {
    let k = counts.arity();
    let base = prob_estimate(counts)?;

    // Guard against decompositions that contradict the model —
    // the regime in which the paper reports the method "doesn't
    // work" (WSD at arity 3). Such runs are declared degenerate
    // (and dropped by the experiment harness) rather than emitted
    // as meaningless, enormous intervals.
    validate_decomposition(&base, k)?;

    // Numeric differentiation of ProbEstimate w.r.t. each counts
    // entry (Algorithm A3 step 6).
    let entries = perturbation_entries(k, config.perturb_partial_counts);
    let eps = config.derivative_epsilon;
    debug_assert!(eps > 0.0, "derivative epsilon must be positive");
    // gradients[i][r*k + c][e] = ∂V_i[r,c] / ∂counts[entry e].
    let cells = k * k;
    let mut gradients: [Vec<Vec<f64>>; 3] = [
        vec![vec![0.0; entries.len()]; cells],
        vec![vec![0.0; entries.len()]; cells],
        vec![vec![0.0; entries.len()]; cells],
    ];
    // Theorem 1 needs ProbEstimate to be locally linear. The
    // pipeline contains hard switches (row alignment, sign fixes,
    // per-j₃ selection); if one flips between the +ε and −ε
    // evaluations, the central difference is O(1/ε) garbage. The
    // forward and backward differences then disagree violently —
    // a cheap, reliable discontinuity detector since legitimate
    // curvature over a ±0.01-count step is microscopic.
    const DERIVATIVE_JUMP_TOL: f64 = 1.0;
    let mut work = counts.clone();
    for (e, &(a, b, c)) in entries.iter().enumerate() {
        work.add(a, b, c, eps);
        let plus = prob_estimate(&work).map_err(|err| perturb_err(err, (a, b, c), eps))?;
        work.add(a, b, c, -2.0 * eps);
        let minus = prob_estimate(&work).map_err(|err| perturb_err(err, (a, b, c), eps))?;
        work.add(a, b, c, eps);
        for i in 0..3 {
            for r in 0..k {
                for col in 0..k {
                    let fwd = (plus.v[i].get(r, col) - base.v[i].get(r, col)) / eps;
                    let bwd = (base.v[i].get(r, col) - minus.v[i].get(r, col)) / eps;
                    if (fwd - bwd).abs() > DERIVATIVE_JUMP_TOL {
                        return Err(EstimateError::Degenerate {
                            what: format!(
                                "ProbEstimate is discontinuous at counts[{a}][{b}][{c}] \
                                 (forward/backward derivatives {fwd:.2} vs {bwd:.2})"
                            ),
                        });
                    }
                    gradients[i][r * k + col][e] = (fwd + bwd) / 2.0;
                }
            }
        }
    }

    // Lemma 9 covariances.
    let cov = counts_covariance(counts, &entries);
    Ok(TripleDetail {
        base,
        entries,
        gradients,
        cov,
    })
}

impl KaryEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Point estimation only (no intervals): the raw `ProbEstimate`.
    pub fn point_estimate(&self, counts: &CountsTensor) -> Result<ProbEstimate> {
        prob_estimate(counts)
    }

    /// Full Algorithm A3 for the worker triple `(w₁, w₂, w₃)`.
    pub fn evaluate(
        &self,
        data: &ResponseMatrix,
        workers: [WorkerId; 3],
        confidence: f64,
    ) -> Result<KaryAssessment> {
        let counts = CountsTensor::from_matrix(data, workers[0], workers[1], workers[2]);
        self.evaluate_counts(&counts, workers, confidence)
    }

    /// Full Algorithm A3 against an [`OverlapIndex`]: the counts tensor
    /// is harvested by a union merge of the triple's CSR rows instead
    /// of a per-(task, worker) binary-search scan. Identical output to
    /// [`KaryEstimator::evaluate`] on the indexed matrix.
    pub fn evaluate_indexed(
        &self,
        index: &OverlapIndex,
        workers: [WorkerId; 3],
        confidence: f64,
    ) -> Result<KaryAssessment> {
        let counts = CountsTensor::from_index(index, workers[0], workers[1], workers[2]);
        self.evaluate_counts(&counts, workers, confidence)
    }

    /// Full Algorithm A3 on a pre-built counts tensor.
    pub fn evaluate_counts(
        &self,
        counts: &CountsTensor,
        workers: [WorkerId; 3],
        confidence: f64,
    ) -> Result<KaryAssessment> {
        let k = counts.arity();
        let TripleDetail {
            base,
            entries: _,
            gradients,
            cov,
        } = triple_detail(counts, &self.config)?;

        // Theorem 1 on each response-probability entry.
        let cells = k * k;
        let dm = DeltaMethod::new(cov);
        let mut intervals: [Vec<ConfidenceInterval>; 3] = [
            Vec::with_capacity(cells),
            Vec::with_capacity(cells),
            Vec::with_capacity(cells),
        ];
        let row_sums: [Vec<f64>; 3] = [0, 1, 2].map(|i| {
            (0..k)
                .map(|r| base.v[i].row(r).iter().sum::<f64>())
                .collect::<Vec<f64>>()
        });
        for i in 0..3 {
            for r in 0..k {
                let scale = row_sums[i][r];
                if scale <= 0.0 {
                    return Err(EstimateError::Degenerate {
                        what: format!("V{} row {r} has non-positive mass", i + 1),
                    });
                }
                for c in 0..k {
                    // Interval on V_i[r,c], then normalized to P_i[r,c]
                    // by the row mass (A3's final normalization step).
                    let ci = dm
                        .interval(base.v[i].get(r, c), &gradients[i][r * k + c], confidence)?
                        .scaled(1.0 / scale);
                    if !ci.half_width.is_finite() {
                        return Err(EstimateError::Degenerate {
                            what: format!("non-finite interval for P{}[{r},{c}]", i + 1),
                        });
                    }
                    intervals[i].push(ci);
                }
            }
        }

        // The overall error rate, as one more Theorem 1 functional of
        // the same counts: with rowmass_r = Σ_c V[r,c],
        // T = Σ_r rowmass_r², N = Σ_r rowmass_r·V[r,r],
        //
        //   err = 1 − N/T
        //   ∂err/∂V[a,b] = −(V[a,a] + rowmass_a·1(a=b))/T
        //                  + 2·N·rowmass_a/T²
        //
        // (S_r = rowmass_r²/T and P[r,r] = V[r,r]/rowmass_r, so
        // N/T = Σ_r S_r·P[r,r] is the expected correctness). Chaining
        // through the V-entry gradients keeps every cross-entry
        // correlation of the counts covariance.
        let mut error_rate: [ConfidenceInterval; 3] =
            [ConfidenceInterval::from_bounds(0.0, 0.0, confidence); 3];
        let n_entries = dm.dim();
        for i in 0..3 {
            let masses = &row_sums[i];
            let t: f64 = masses.iter().map(|m| m * m).sum();
            let n: f64 = (0..k).map(|r| masses[r] * base.v[i].get(r, r)).sum();
            let err = 1.0 - n / t;
            let mut g_err = vec![0.0; n_entries];
            for a in 0..k {
                for b in 0..k {
                    let d_v = -(base.v[i].get(a, a) + if a == b { masses[a] } else { 0.0 }) / t
                        + 2.0 * n * masses[a] / (t * t);
                    let g_entry = &gradients[i][a * k + b];
                    for (acc, g) in g_err.iter_mut().zip(g_entry) {
                        *acc += d_v * g;
                    }
                }
            }
            error_rate[i] = dm.interval(err, &g_err, confidence)?;
            if !error_rate[i].half_width.is_finite() {
                return Err(EstimateError::Degenerate {
                    what: format!("non-finite error-rate interval for worker slot {i}"),
                });
            }
        }

        let response_prob = [
            base.response_probabilities(0),
            base.response_probabilities(1),
            base.response_probabilities(2),
        ];
        let selectivity = base.selectivity();
        Ok(KaryAssessment {
            workers,
            v: base.v,
            response_prob,
            selectivity,
            intervals,
            error_rate,
        })
    }
}

/// Model-consistency checks on a `ProbEstimate` (see DESIGN.md §5):
///
/// 1. **Row mass**: each row of `V_i` sums to `sqrt(S_r) > 0`; a mass
///    near zero means the spectral step collapsed.
/// 2. **Cross-worker consistency**: all three workers' row masses
///    estimate the *same* `sqrt(S_r)`; wildly disagreeing masses mean
///    the mixing matrix `U` was mis-recovered.
/// 3. **Diagonal dominance**: the paper assumes
///    `P[j,j] > P[j,j′]` (§IV-A); estimates violating it grossly are
///    mixed-eigenvector failures.
fn validate_decomposition(base: &ProbEstimate, k: usize) -> Result<()> {
    /// Minimum admissible `sqrt(S_r)` estimate.
    const MIN_ROW_MASS: f64 = 0.05;
    /// Maximum admissible ratio between workers' `sqrt(S_r)` estimates.
    const MAX_MASS_RATIO: f64 = 3.0;
    /// Slack allowed before a diagonal-dominance violation is fatal.
    const DOMINANCE_SLACK: f64 = 0.05;

    for r in 0..k {
        let masses: Vec<f64> = base
            .v
            .iter()
            .map(|v| v.row(r).iter().sum::<f64>())
            .collect();
        for (i, &mass) in masses.iter().enumerate() {
            if mass.is_nan() || mass < MIN_ROW_MASS {
                return Err(EstimateError::Degenerate {
                    what: format!("V{} row {r} mass {mass:.4} below {MIN_ROW_MASS}", i + 1),
                });
            }
        }
        let max = masses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = masses.iter().cloned().fold(f64::INFINITY, f64::min);
        if max / min > MAX_MASS_RATIO {
            return Err(EstimateError::Degenerate {
                what: format!(
                    "row {r} masses disagree across workers ({min:.3} .. {max:.3}); \
                     mixing matrix mis-recovered"
                ),
            });
        }
    }
    for (i, _) in base.v.iter().enumerate() {
        let p = base.response_probabilities(i);
        for r in 0..k {
            let diag = p.get(r, r);
            for c in 0..k {
                if c != r && p.get(r, c) > diag + DOMINANCE_SLACK {
                    return Err(EstimateError::Degenerate {
                        what: format!(
                            "P{}[{r},{c}] = {:.3} exceeds diagonal {:.3}; violates the \
                             model's diagonal-dominance assumption",
                            i + 1,
                            p.get(r, c),
                            diag
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

fn perturb_err(err: EstimateError, entry: (usize, usize, usize), eps: f64) -> EstimateError {
    EstimateError::Numerical(format!(
        "ProbEstimate failed while perturbing counts{entry:?} by ±{eps}: {err}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{KaryScenario, rng};

    fn workers() -> [WorkerId; 3] {
        [WorkerId(0), WorkerId(1), WorkerId(2)]
    }

    #[test]
    fn intervals_cover_population_truth_trivially() {
        // On (near-)population counts the estimates are nearly exact
        // and the intervals tiny but centered on the truth.
        let pool = crowd_sim::paper_matrices(2);
        let p = [pool[0].clone(), pool[1].clone(), pool[2].clone()];
        let counts = crate::kary::prob_estimate::population_counts(&p, &[0.5, 0.5], 5000.0);
        let est = KaryEstimator::default();
        let a = est.evaluate_counts(&counts, workers(), 0.9).unwrap();
        let stats = a.coverage(&p);
        assert_eq!(
            stats.covered, stats.total,
            "population-count intervals must all cover: {stats:?}"
        );
        // Centers match truth closely.
        for i in 0..3 {
            assert!(a.response_prob[i].approx_eq(&p[i], 1e-4));
        }
    }

    #[test]
    fn simulated_coverage_tracks_confidence() {
        let scenario = KaryScenario::paper_default(2, 300, 1.0);
        let est = KaryEstimator::default();
        let mut r = rng(157);
        let mut stats = crate::CoverageStats::default();
        for _ in 0..40 {
            let inst = scenario.generate(&mut r);
            let Ok(a) = est.evaluate(inst.responses(), workers(), 0.9) else {
                continue;
            };
            let truth = [
                inst.true_confusion(WorkerId(0)),
                inst.true_confusion(WorkerId(1)),
                inst.true_confusion(WorkerId(2)),
            ];
            stats.merge(a.coverage(&truth));
        }
        let acc = stats.accuracy().expect("some runs succeed");
        assert!(
            acc > 0.82 && acc <= 1.0,
            "arity-2 coverage {acc} at c=0.9 over {} intervals",
            stats.total
        );
    }

    #[test]
    fn interval_size_grows_with_arity() {
        // Fig 5(b): more parameters per datum → wider intervals.
        let est = KaryEstimator::default();
        let mut r = rng(163);
        let mut sizes = Vec::new();
        for arity in [2u16, 3] {
            let scenario = KaryScenario::paper_default(arity, 500, 1.0);
            let mut total = 0.0;
            let mut n = 0;
            for _ in 0..10 {
                let inst = scenario.generate(&mut r);
                if let Ok(a) = est.evaluate(inst.responses(), workers(), 0.8) {
                    total += a.mean_interval_size();
                    n += 1;
                }
            }
            assert!(n > 0, "no successful runs at arity {arity}");
            sizes.push(total / n as f64);
        }
        assert!(
            sizes[1] > sizes[0],
            "arity-3 intervals should be wider: {sizes:?}"
        );
    }

    #[test]
    fn interval_size_shrinks_with_more_tasks() {
        let est = KaryEstimator::default();
        let mut r = rng(167);
        let small = KaryScenario::paper_default(2, 100, 1.0).generate(&mut r);
        let large = KaryScenario::paper_default(2, 2000, 1.0).generate(&mut r);
        let a_small = est.evaluate(small.responses(), workers(), 0.8).unwrap();
        let a_large = est.evaluate(large.responses(), workers(), 0.8).unwrap();
        assert!(
            a_large.mean_interval_size() < a_small.mean_interval_size(),
            "{} vs {}",
            a_large.mean_interval_size(),
            a_small.mean_interval_size()
        );
    }

    #[test]
    fn error_rate_interval_is_exact_on_population_counts() {
        let pool = crowd_sim::paper_matrices(3);
        let p = [pool[0].clone(), pool[1].clone(), pool[2].clone()];
        let s = [0.5, 0.3, 0.2];
        let counts = crate::kary::prob_estimate::population_counts(&p, &s, 8000.0);
        let a = KaryEstimator::default()
            .evaluate_counts(&counts, workers(), 0.9)
            .unwrap();
        for i in 0..3 {
            let truth: f64 = 1.0 - (0..3).map(|r| s[r] * p[i].get(r, r)).sum::<f64>();
            assert!(
                (a.error_rate[i].center - truth).abs() < 1e-3,
                "slot {i}: error rate {} vs truth {truth}",
                a.error_rate[i].center
            );
            assert!(a.error_rate[i].contains(truth));
        }
    }

    #[test]
    fn error_rate_interval_covers_at_nominal_rate() {
        let scenario = KaryScenario::paper_default(3, 400, 1.0);
        let est = KaryEstimator::default();
        let mut r = rng(193);
        let mut stats = crate::CoverageStats::default();
        for _ in 0..40 {
            let inst = scenario.generate(&mut r);
            let Ok(a) = est.evaluate(inst.responses(), workers(), 0.9) else {
                continue;
            };
            for (slot, &w) in workers().iter().enumerate() {
                stats.record(a.error_rate[slot].contains(inst.true_error_rate(w)));
            }
        }
        let acc = stats.accuracy().expect("some successes");
        assert!(
            acc > 0.82,
            "error-rate interval coverage {acc} at c=0.9 over {} intervals",
            stats.total
        );
    }

    #[test]
    fn error_rate_interval_is_tighter_than_entry_sum() {
        // The whole point of the Theorem 1 functional: naive interval
        // arithmetic over the k² entries would be far wider.
        let inst = KaryScenario::paper_default(3, 500, 1.0).generate(&mut rng(197));
        let a = KaryEstimator::default()
            .evaluate(inst.responses(), workers(), 0.9)
            .unwrap();
        let k = 3;
        for slot in 0..3 {
            let naive: f64 = (0..k)
                .map(|r| a.selectivity[r] * a.interval(slot, r, r).half_width)
                .sum();
            assert!(
                a.error_rate[slot].half_width < naive,
                "slot {slot}: functional interval {} vs naive diagonal sum {naive}",
                a.error_rate[slot].half_width
            );
        }
    }

    #[test]
    fn selectivity_estimate_is_sane() {
        let mut scenario = KaryScenario::paper_default(3, 3000, 1.0);
        scenario.selectivity = vec![0.5, 0.3, 0.2];
        let inst = scenario.generate(&mut rng(173));
        let a = KaryEstimator::default()
            .evaluate(inst.responses(), workers(), 0.8)
            .unwrap();
        for (got, want) in a.selectivity.iter().zip(&[0.5, 0.3, 0.2]) {
            assert!((got - want).abs() < 0.08, "selectivity {:?}", a.selectivity);
        }
    }

    #[test]
    fn nonregular_kary_data_works() {
        let scenario = KaryScenario::paper_default(2, 600, 0.7);
        let inst = scenario.generate(&mut rng(179));
        let a = KaryEstimator::default()
            .evaluate(inst.responses(), workers(), 0.8)
            .unwrap();
        assert!(a.mean_interval_size() > 0.0);
        assert!(a.mean_interval_size().is_finite());
    }

    #[test]
    fn partial_count_perturbation_is_available() {
        let scenario = KaryScenario::paper_default(2, 400, 0.7);
        let inst = scenario.generate(&mut rng(181));
        let cfg = EstimatorConfig {
            perturb_partial_counts: true,
            ..EstimatorConfig::default()
        };
        let a = KaryEstimator::new(cfg)
            .evaluate(inst.responses(), workers(), 0.8)
            .unwrap();
        assert!(a.mean_interval_size().is_finite());
    }

    #[test]
    fn accessors() {
        let scenario = KaryScenario::paper_default(2, 400, 1.0);
        let inst = scenario.generate(&mut rng(191));
        let a = KaryEstimator::default()
            .evaluate(inst.responses(), workers(), 0.8)
            .unwrap();
        let ci = a.interval(1, 0, 1);
        assert!(ci.size() >= 0.0);
        assert_eq!(a.workers, workers());
    }
}
