//! Epoch-versioned per-anchor report caching over the streaming
//! substrate — re-evaluate only what an ingest actually touched.
//!
//! The estimators are per-worker: a drain-point report is a list of
//! independent rows, one per anchor, and a new response from worker
//! `w` can only move the rows of `{w} ∪ cooccur(w)` (see the dirty
//! tracking in [`crowd_data::streaming`]). [`ReportCache`] /
//! [`KaryReportCache`] exploit that by remembering, per anchor, the
//! last evaluation outcome **and the ingest epoch it was computed
//! at**. A refresh re-evaluates an anchor only when
//! [`StreamingIndex::dirty_epoch`] has advanced past its row's epoch;
//! clean rows are cloned from the cache. Steady-state drain cost
//! drops from `O(m·T)` (T = per-anchor triple/covariance work) to
//! `O(|dirty|·T)` — the dominant win under realistic skewed arrival
//! streams where most anchors are quiet between drains.
//!
//! # Exactness
//!
//! The caches are **bit-identical** to full recomputation, not
//! approximately fresh: a clean row would re-derive the same bits
//! because every statistic its evaluation reads is unchanged, and
//! failures ([`EstimateError`] rows) are cached and re-validated the
//! same way as successes. Anything that changes the evaluation
//! question rather than the data — a different confidence level —
//! invalidates wholesale. The service-level property tests
//! (`crowd_service/tests/incremental_equivalence.rs`) pin cached
//! reports against full recomputation at every drain point across
//! random interleavings.
//!
//! A cache is keyed to **one** [`StreamingIndex`]: epochs are
//! stream-local, so feeding a cache from two different substrates
//! makes its version stamps meaningless. (The shard runtime owns one
//! cache per shard stream, which is the intended shape.)

use crate::kary::KaryMWorkerEstimator;
use crate::{
    EstimateError, KaryWorkerAssessment, KaryWorkerReport, MWorkerEstimator, Result,
    WorkerAssessment, WorkerReport,
};
use crowd_data::{StreamingIndex, WorkerId};

/// Running counters of a report cache (cumulative since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rows served from the cache without re-evaluation.
    pub hits: u64,
    /// Rows (re-)evaluated because they were absent or dirty.
    pub misses: u64,
    /// Wholesale invalidations (the confidence level changed).
    pub full_refreshes: u64,
    /// Rows re-evaluated by the most recent [`ReportCache::refresh`]
    /// call — the dirty-set size the drain actually paid for.
    pub last_dirty: usize,
}

/// The shared epoch-versioned row store behind both caches: one
/// optional `(epoch, outcome)` slot per worker id plus the confidence
/// level the rows answer.
#[derive(Debug, Clone)]
struct RowCache<T> {
    rows: Vec<Option<(u64, Result<T>)>>,
    /// Bit pattern of the confidence level the cached rows were
    /// computed at; `None` until first use. Compared exactly — a
    /// different confidence is a different question, so the rows are
    /// dropped wholesale rather than risking a stale answer.
    confidence_bits: Option<u64>,
    stats: CacheStats,
}

impl<T: Clone> RowCache<T> {
    fn new() -> Self {
        Self {
            rows: Vec::new(),
            confidence_bits: None,
            stats: CacheStats::default(),
        }
    }

    /// Drops every row if `confidence` differs from the cached level
    /// (exact bit comparison), counting a full refresh when live rows
    /// were actually discarded.
    fn ensure_confidence(&mut self, confidence: f64) {
        let bits = confidence.to_bits();
        if self.confidence_bits != Some(bits) {
            if self.rows.iter().any(Option::is_some) {
                self.stats.full_refreshes += 1;
            }
            self.rows.clear();
            self.confidence_bits = Some(bits);
        }
    }

    /// The cached outcome for `worker` if it is still exact — present
    /// and computed at an epoch not older than the worker's last
    /// dirtying ingest.
    fn clean_row(&self, stream: &StreamingIndex, worker: WorkerId) -> Option<&Result<T>> {
        match self.rows.get(worker.index())? {
            Some((epoch, outcome)) if *epoch >= stream.dirty_epoch(worker) => Some(outcome),
            _ => None,
        }
    }

    fn store(&mut self, worker: WorkerId, epoch: u64, outcome: Result<T>) {
        if self.rows.len() <= worker.index() {
            self.rows.resize(worker.index() + 1, None);
        }
        self.rows[worker.index()] = Some((epoch, outcome));
    }

    /// One cache-consulting evaluation: serve the clean row or compute
    /// via `eval` and version the result at the stream's current
    /// epoch.
    fn assess(
        &mut self,
        stream: &StreamingIndex,
        worker: WorkerId,
        confidence: f64,
        eval: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        self.ensure_confidence(confidence);
        if let Some(outcome) = self.clean_row(stream, worker).cloned() {
            self.stats.hits += 1;
            return outcome;
        }
        self.stats.misses += 1;
        let outcome = eval();
        self.store(worker, stream.epoch(), outcome.clone());
        outcome
    }

    /// The refresh body shared by both report shapes: walk `anchors`
    /// in order, re-evaluating dirty rows and cloning clean ones, and
    /// hand each outcome to `emit` (which builds the report in
    /// `anchors` order — exactly what the uncached subset entry points
    /// produce).
    fn refresh(
        &mut self,
        stream: &StreamingIndex,
        anchors: &[WorkerId],
        confidence: f64,
        mut eval: impl FnMut(WorkerId) -> Result<T>,
        mut emit: impl FnMut(WorkerId, Result<T>),
    ) {
        self.ensure_confidence(confidence);
        let epoch = stream.epoch();
        let mut dirty = 0usize;
        for &worker in anchors {
            if let Some(outcome) = self.clean_row(stream, worker).cloned() {
                self.stats.hits += 1;
                emit(worker, outcome);
                continue;
            }
            dirty += 1;
            self.stats.misses += 1;
            let outcome = eval(worker);
            self.store(worker, epoch, outcome.clone());
            emit(worker, outcome);
        }
        self.stats.last_dirty = dirty;
    }
}

/// Epoch-versioned cache of binary (Algorithm A2) per-worker
/// assessments; see the [module docs](self).
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, MWorkerEstimator, ReportCache};
/// use crowd_data::{StreamingIndex, WorkerId};
/// use crowd_sim::BinaryScenario;
///
/// let data = BinaryScenario::paper_default(5, 60, 0.9)
///     .generate(&mut crowd_sim::rng(5));
/// let stream = StreamingIndex::from_matrix(data.responses());
/// let est = MWorkerEstimator::new(EstimatorConfig::default());
/// let anchors: Vec<WorkerId> = stream.index().workers().collect();
///
/// let mut cache = ReportCache::new();
/// let first = cache.refresh(&est, &stream, &anchors, 0.9)?;
/// // No ingest since: the second drain is served entirely from cache.
/// let second = cache.refresh(&est, &stream, &anchors, 0.9)?;
/// assert_eq!(first.assessments, second.assessments);
/// assert_eq!(cache.stats().last_dirty, 0);
/// # Ok::<(), crowd_core::EstimateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReportCache {
    inner: RowCache<WorkerAssessment>,
}

impl ReportCache {
    /// An empty cache (first refresh evaluates every anchor).
    pub fn new() -> Self {
        Self {
            inner: RowCache::new(),
        }
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats
    }

    /// Cache-consulting counterpart of
    /// [`MWorkerEstimator::evaluate_worker_on`]: serves the cached
    /// outcome when `worker` is clean, re-evaluates (and re-versions)
    /// it otherwise. Bit-identical to the uncached call either way.
    pub fn assess(
        &mut self,
        estimator: &MWorkerEstimator,
        stream: &StreamingIndex,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment> {
        self.inner.assess(stream, worker, confidence, || {
            estimator.evaluate_worker_on(stream, worker, confidence)
        })
    }

    /// Cache-consulting counterpart of
    /// [`MWorkerEstimator::evaluate_workers_on`]: re-evaluates only
    /// the anchors dirtied since their cached rows, cloning the rest.
    /// The report (assessments and failures in `anchors` order) is
    /// bit-identical to the uncached subset evaluation.
    pub fn refresh(
        &mut self,
        estimator: &MWorkerEstimator,
        stream: &StreamingIndex,
        anchors: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport> {
        // Mirror the uncached entry point's population guard exactly —
        // the caches must be invisible in the error taxonomy too.
        let m = crowd_data::OverlapSource::n_workers(stream);
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let mut report = WorkerReport::default();
        self.inner.refresh(
            stream,
            anchors,
            confidence,
            |worker| estimator.evaluate_worker_on(stream, worker, confidence),
            |worker, outcome| match outcome {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            },
        );
        Ok(report)
    }
}

impl Default for ReportCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Epoch-versioned cache of k-ary (m-worker A3) per-worker
/// assessments; the k-ary twin of [`ReportCache`].
#[derive(Debug, Clone)]
pub struct KaryReportCache {
    inner: RowCache<KaryWorkerAssessment>,
}

impl KaryReportCache {
    /// An empty cache (first refresh evaluates every anchor).
    pub fn new() -> Self {
        Self {
            inner: RowCache::new(),
        }
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats
    }

    /// Cache-consulting counterpart of
    /// [`KaryMWorkerEstimator::evaluate_worker_streaming`].
    pub fn assess(
        &mut self,
        estimator: &KaryMWorkerEstimator,
        stream: &StreamingIndex,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment> {
        self.inner.assess(stream, worker, confidence, || {
            estimator.evaluate_worker_streaming(stream, worker, confidence)
        })
    }

    /// Cache-consulting counterpart of
    /// [`KaryMWorkerEstimator::evaluate_workers_streaming`];
    /// bit-identical report, `O(|dirty|)` evaluations.
    pub fn refresh(
        &mut self,
        estimator: &KaryMWorkerEstimator,
        stream: &StreamingIndex,
        anchors: &[WorkerId],
        confidence: f64,
    ) -> Result<KaryWorkerReport> {
        let m = crowd_data::OverlapSource::n_workers(stream);
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let mut report = KaryWorkerReport::default();
        self.inner.refresh(
            stream,
            anchors,
            confidence,
            |worker| estimator.evaluate_worker_streaming(stream, worker, confidence),
            |worker, outcome| match outcome {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            },
        );
        Ok(report)
    }
}

impl Default for KaryReportCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EstimatorConfig;
    use crowd_data::{OverlapSource, PairBackend, Response};
    use crowd_sim::{BinaryScenario, rng};

    fn assessments_equal(a: &WorkerReport, b: &WorkerReport) -> bool {
        a.assessments == b.assessments && a.failures == b.failures
    }

    /// Cached refresh equals the uncached subset evaluation bit for
    /// bit at every prefix of a stream, with ingests interleaved
    /// between drains.
    #[test]
    fn cached_refresh_matches_full_recompute_at_every_drain() {
        let inst = BinaryScenario::paper_default(8, 90, 0.8).generate(&mut rng(811));
        let data = inst.responses();
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let mut stream =
            StreamingIndex::new_with(data.n_workers(), data.n_tasks(), 2, PairBackend::Sparse);
        let anchors: Vec<WorkerId> = (0..data.n_workers() as u32).map(WorkerId).collect();
        let mut cache = ReportCache::new();
        for (i, r) in data.iter().enumerate() {
            stream.record_response(r).unwrap();
            if i % 37 == 0 || i + 1 == data.n_responses() {
                let cached = cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
                let full = est.evaluate_workers_on(&stream, &anchors, 0.9).unwrap();
                assert!(
                    assessments_equal(&cached, &full),
                    "cached report diverged at response {i}"
                );
            }
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "steady drains must produce cache hits");
        assert!(stats.misses > 0);
        assert_eq!(stats.full_refreshes, 0);
    }

    /// A quiet stretch makes the next drain free: zero dirty rows,
    /// all hits.
    #[test]
    fn quiet_drains_are_all_hits() {
        let inst = BinaryScenario::paper_default(6, 60, 0.9).generate(&mut rng(821));
        let stream = StreamingIndex::from_matrix(inst.responses());
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let anchors: Vec<WorkerId> = stream.index().workers().collect();
        let mut cache = ReportCache::new();
        cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        assert_eq!(cache.stats().last_dirty, anchors.len());
        cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.last_dirty, 0);
        assert_eq!(stats.hits, anchors.len() as u64);
    }

    /// A sparse ingest burst dirties only the responder's
    /// co-occurrence neighbourhood — the next refresh re-evaluates
    /// exactly that set and the result still matches full recompute.
    #[test]
    fn sparse_burst_reevaluates_only_the_dirty_set() {
        // Two disjoint communities of 4 workers over disjoint tasks.
        let mut stream = StreamingIndex::new_with(8, 40, 2, PairBackend::Sparse);
        let ingest = |s: &mut StreamingIndex, w: u32, t: u32, l: u16| {
            s.record_response(Response {
                worker: WorkerId(w),
                task: crowd_data::TaskId(t),
                label: crowd_data::Label(l),
            })
            .unwrap();
        };
        for t in 0..20u32 {
            for w in 0..4u32 {
                ingest(&mut stream, w, t, ((w + t) % 2) as u16);
            }
        }
        for t in 20..40u32 {
            for w in 4..8u32 {
                if (w, t) == (6, 25) {
                    continue; // left for the post-drain burst below
                }
                ingest(&mut stream, w, t, ((w * t) % 2) as u16);
            }
        }
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let anchors: Vec<WorkerId> = (0..8u32).map(WorkerId).collect();
        let mut cache = ReportCache::new();
        cache.refresh(&est, &stream, &anchors, 0.9).unwrap();

        // One response from worker 6 dirties only community B.
        ingest(&mut stream, 6, 25, 1);
        let cached = cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        assert_eq!(
            cache.stats().last_dirty,
            4,
            "only the responder's community is dirty"
        );
        let full = est.evaluate_workers_on(&stream, &anchors, 0.9).unwrap();
        assert!(assessments_equal(&cached, &full));
    }

    /// Changing the confidence level invalidates wholesale — cached
    /// rows answer a different question and must not be served.
    #[test]
    fn confidence_change_forces_full_refresh() {
        let inst = BinaryScenario::paper_default(5, 50, 0.9).generate(&mut rng(831));
        let stream = StreamingIndex::from_matrix(inst.responses());
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let anchors: Vec<WorkerId> = stream.index().workers().collect();
        let mut cache = ReportCache::new();
        cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        let at95 = cache.refresh(&est, &stream, &anchors, 0.95).unwrap();
        assert_eq!(cache.stats().full_refreshes, 1);
        assert_eq!(cache.stats().last_dirty, anchors.len());
        let full = est.evaluate_workers_on(&stream, &anchors, 0.95).unwrap();
        assert!(assessments_equal(&at95, &full));
    }

    /// Failure rows (e.g. NoUsableTriples) are cached and re-served
    /// like successes, and the population guard mirrors the uncached
    /// entry point.
    #[test]
    fn failures_cache_and_guards_mirror_uncached_path() {
        let mut stream = StreamingIndex::new_with(4, 8, 2, PairBackend::Sparse);
        for t in 0..8u32 {
            stream
                .record_response(Response {
                    worker: WorkerId(t % 4),
                    task: crowd_data::TaskId(t),
                    label: crowd_data::Label((t % 2) as u16),
                })
                .unwrap();
        }
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let anchors: Vec<WorkerId> = (0..4u32).map(WorkerId).collect();
        let mut cache = ReportCache::new();
        let first = cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        assert_eq!(first.failures.len(), 4);
        let second = cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        assert_eq!(cache.stats().last_dirty, 0, "failures must cache too");
        assert!(assessments_equal(&first, &second));

        let tiny = StreamingIndex::new_with(2, 4, 2, PairBackend::Sparse);
        assert_eq!(OverlapSource::n_workers(&tiny), 2);
        assert!(matches!(
            ReportCache::new().refresh(&est, &tiny, &[WorkerId(0)], 0.9),
            Err(EstimateError::NotEnoughWorkers { got: 2, need: 3 })
        ));
    }

    /// Single-worker assess shares the same row store as refresh: an
    /// assess after a refresh hits, and a refresh after a dirtying
    /// ingest + assess does not re-evaluate the already-refreshed row.
    #[test]
    fn assess_and_refresh_share_rows() {
        let inst = BinaryScenario::paper_default(5, 60, 0.9).generate(&mut rng(841));
        let stream = StreamingIndex::from_matrix(inst.responses());
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let anchors: Vec<WorkerId> = stream.index().workers().collect();
        let mut cache = ReportCache::new();
        cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
        let misses_before = cache.stats().misses;
        let a = cache.assess(&est, &stream, WorkerId(2), 0.9).unwrap();
        assert_eq!(cache.stats().misses, misses_before, "assess must hit");
        let direct = est.evaluate_worker_on(&stream, WorkerId(2), 0.9).unwrap();
        assert_eq!(a, direct);
    }

    /// The k-ary cache obeys the same contract.
    #[test]
    fn kary_cache_matches_full_recompute() {
        use crowd_sim::KaryScenario;
        let inst = KaryScenario::paper_default(3, 80, 0.9)
            .with_workers(6)
            .generate(&mut rng(851));
        let data = inst.responses();
        let est = KaryMWorkerEstimator::new(EstimatorConfig::default());
        let mut stream =
            StreamingIndex::new_with(data.n_workers(), data.n_tasks(), 3, PairBackend::Sparse);
        let anchors: Vec<WorkerId> = (0..data.n_workers() as u32).map(WorkerId).collect();
        let mut cache = KaryReportCache::new();
        for (i, r) in data.iter().enumerate() {
            stream.record_response(r).unwrap();
            if i % 53 == 0 || i + 1 == data.n_responses() {
                let cached = cache.refresh(&est, &stream, &anchors, 0.9).unwrap();
                let full = est
                    .evaluate_workers_streaming(&stream, &anchors, 0.9)
                    .unwrap();
                assert_eq!(cached.assessments.len(), full.assessments.len());
                assert_eq!(cached.failures.len(), full.failures.len());
                for (c, f) in cached.assessments.iter().zip(&full.assessments) {
                    assert_eq!(c.worker, f.worker);
                    assert_eq!(c.triples_used, f.triples_used);
                    for (x, y) in c.intervals.iter().zip(&f.intervals) {
                        assert_eq!(x.center.to_bits(), y.center.to_bits(), "at response {i}");
                        assert_eq!(x.half_width.to_bits(), y.half_width.to_bits());
                    }
                }
            }
        }
        assert!(cache.stats().hits > 0);
    }
}
