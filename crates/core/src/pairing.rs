//! Greedy triple formation for Algorithm A2 (§III-C1, "Selecting
//! triples").
//!
//! To evaluate worker `w`, the remaining workers are split into
//! disjoint pairs; each pair plus `w` forms a triple. The paper's
//! greedy heuristic: sort candidates by their task overlap with `w`
//! (descending), repeatedly take the head of the list and pair it with
//! the first remaining candidate that shares at least one task with
//! both `w` and the head. Unpairable candidates are dropped.

use crowd_data::{CachedOverlap, OverlapSource, ResponseMatrix, WorkerId, triple_overlap};

/// A candidate pair forming a triple with the evaluated worker.
pub type PeerPair = (WorkerId, WorkerId);

/// Strategy for splitting peers into pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairingStrategy {
    /// The paper's overlap-greedy heuristic (default).
    #[default]
    GreedyByOverlap,
    /// Adjacent pairing in worker-id order — the unoptimized baseline
    /// used by the ablation benches.
    Sequential,
}

/// Splits all workers other than `target` into disjoint pairs for
/// triple formation.
///
/// Every returned pair `(a, b)` satisfies: `a` and `b` each share at
/// least `min_overlap` tasks with `target`, with each other, and the
/// triple `(target, a, b)` has at least one task in common with some
/// pair — degenerate candidates are silently dropped, mirroring the
/// paper ("until the list has no more pairs of workers who have a
/// common task with wi and with each other").
pub fn form_pairs(
    data: &ResponseMatrix,
    target: WorkerId,
    strategy: PairingStrategy,
    min_overlap: usize,
) -> Vec<PeerPair> {
    form_pairs_on(data, target, strategy, min_overlap)
}

/// [`form_pairs`] with an optional precomputed [`crowd_data::PairCache`].
pub fn form_pairs_cached(
    data: &ResponseMatrix,
    cache: Option<&crowd_data::PairCache>,
    target: WorkerId,
    strategy: PairingStrategy,
    min_overlap: usize,
) -> Vec<PeerPair> {
    match cache {
        Some(cache) => form_pairs_on(
            &CachedOverlap { data, cache },
            target,
            strategy,
            min_overlap,
        ),
        None => form_pairs_on(data, target, strategy, min_overlap),
    }
}

/// [`form_pairs`] over any overlap substrate — the pairwise queries hit
/// whatever the source provides (merge scans, a streaming cache, or
/// the O(1) [`crowd_data::OverlapIndex`] pair table). The produced
/// pairs are identical across substrates.
pub fn form_pairs_on<S: OverlapSource>(
    src: &S,
    target: WorkerId,
    strategy: PairingStrategy,
    min_overlap: usize,
) -> Vec<PeerPair> {
    form_pairs_limited(src, target, strategy, min_overlap, None)
}

/// [`form_pairs_on`] with an optional cap on the number of pairs
/// formed ([`crate::EstimatorConfig::max_triples`]). The greedy loop
/// stops as soon as the cap is reached, so with
/// [`PairingStrategy::GreedyByOverlap`] the kept pairs are exactly the
/// best-overlapped prefix of the uncapped pairing — the evaluated
/// worker's peer scope shrinks to `≤ 2·cap` workers without changing
/// which triples an uncapped run would have ranked first. `None`
/// reproduces [`form_pairs_on`] bit for bit.
pub fn form_pairs_limited<S: OverlapSource>(
    src: &S,
    target: WorkerId,
    strategy: PairingStrategy,
    min_overlap: usize,
    max_pairs: Option<usize>,
) -> Vec<PeerPair> {
    let min_overlap = min_overlap.max(1);
    let max_pairs = max_pairs.unwrap_or(usize::MAX);
    if max_pairs == 0 {
        return Vec::new();
    }
    let overlap = |a: WorkerId, b: WorkerId| -> usize { src.pair(a, b).common_tasks };
    // Candidates: everyone sharing enough tasks with the target.
    // Substrates that track co-occurrence (the sparse pair table) hand
    // over the peer list directly — `O(d_target)` instead of an `O(m)`
    // population sweep, with the same candidates in the same (id)
    // order since absent pairs have zero overlap.
    fn screen<S: OverlapSource>(
        src: &S,
        target: WorkerId,
        min_overlap: usize,
        ids: impl Iterator<Item = WorkerId>,
    ) -> Vec<(WorkerId, usize)> {
        ids.filter(|&w| w != target)
            .map(|w| (w, src.pair(target, w).common_tasks))
            .filter(|&(_, c)| c >= min_overlap)
            .collect()
    }
    let mut co = Vec::new();
    let mut candidates = if src.co_occurring_into(target, &mut co) {
        screen(src, target, min_overlap, co.into_iter())
    } else {
        screen(
            src,
            target,
            min_overlap,
            (0..src.n_workers() as u32).map(WorkerId),
        )
    };

    match strategy {
        PairingStrategy::GreedyByOverlap => {
            // Descending by overlap with the target; ties by id for
            // determinism.
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        PairingStrategy::Sequential => {
            candidates.sort_by_key(|&(w, _)| w);
        }
    }

    let mut pairs = Vec::new();
    let mut remaining: Vec<WorkerId> = candidates.into_iter().map(|(w, _)| w).collect();
    while remaining.len() >= 2 && pairs.len() < max_pairs {
        let head = remaining.remove(0);
        // First partner sharing enough tasks with the head (its overlap
        // with the target was already checked on entry to the list).
        let partner_pos = remaining
            .iter()
            .position(|&w| overlap(head, w) >= min_overlap);
        match partner_pos {
            Some(pos) => {
                let partner = remaining.remove(pos);
                pairs.push((head, partner));
            }
            None => {
                // Head is unpairable; drop it and continue.
            }
        }
    }
    pairs
}

/// Every peer any `form_pairs*` call could possibly involve when
/// evaluating `target`: the workers sharing at least one task with it,
/// ascending by id. The pairing's candidate filter, greedy partner
/// scan and covariance assembly never look beyond this set (pairs
/// with zero overlap are rejected on entry), so a substrate holding
/// full rows for `target` ∪ `reachable_peers(target)` reproduces the
/// full-fleet pairing **bit for bit** — the closed peer set the
/// sharding planner (`crowd_shard::ShardPlan`) builds per shard.
pub fn reachable_peers<S: OverlapSource>(src: &S, target: WorkerId) -> Vec<WorkerId> {
    let mut co = Vec::new();
    if src.co_occurring_into(target, &mut co) {
        co.retain(|&w| w != target);
        return co;
    }
    (0..src.n_workers() as u32)
        .map(WorkerId)
        .filter(|&w| w != target && src.pair(target, w).common_tasks > 0)
        .collect()
}

/// The distinct peers a pairing selected, sorted by id — the peer
/// scope the estimators hand to
/// [`crowd_data::OverlapSource::anchored_for`] so anchored views
/// allocate a mask row per *selected peer* instead of per population
/// member.
pub fn pairing_peers(pairs: &[PeerPair]) -> Vec<WorkerId> {
    let mut peers: Vec<WorkerId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    peers.sort_unstable();
    peers.dedup();
    peers
}

/// Diagnostic: total triple overlap mass of a pairing (the sum over
/// pairs of `c_{target,a,b}`). Used by tests and the pairing ablation
/// bench to verify the greedy strategy picks well-covered triples.
pub fn pairing_quality(data: &ResponseMatrix, target: WorkerId, pairs: &[PeerPair]) -> usize {
    pairs
        .iter()
        .map(|&(a, b)| triple_overlap(data, target, a, b).common_tasks)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};

    /// 5 workers. Worker 0 is the target, attempting tasks 0..40.
    /// Worker 1 overlaps on 40 tasks, worker 2 on 30, worker 3 on 20,
    /// worker 4 on 0 (disjoint).
    fn staggered() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(5, 60, 2);
        let spans: [(u32, u32); 5] = [(0, 40), (0, 40), (10, 40), (20, 40), (40, 60)];
        for (w, &(lo, hi)) in spans.iter().enumerate() {
            for t in lo..hi {
                b.push(WorkerId(w as u32), TaskId(t), Label(0)).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn greedy_pairs_best_overlaps_first() {
        let data = staggered();
        let pairs = form_pairs(&data, WorkerId(0), PairingStrategy::GreedyByOverlap, 1);
        // Worker 4 shares nothing with worker 0 and is excluded;
        // the three remaining candidates form one pair (1,2) and drop 3.
        assert_eq!(pairs, vec![(WorkerId(1), WorkerId(2))]);
    }

    #[test]
    fn sequential_pairs_in_id_order() {
        let data = staggered();
        let pairs = form_pairs(&data, WorkerId(0), PairingStrategy::Sequential, 1);
        assert_eq!(pairs, vec![(WorkerId(1), WorkerId(2))]);
    }

    #[test]
    fn pairs_are_disjoint() {
        // Regular data: all 6 peers pair into 3 disjoint pairs.
        let mut b = ResponseMatrixBuilder::new(7, 10, 2);
        for w in 0..7u32 {
            for t in 0..10u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        let data = b.build().unwrap();
        let pairs = form_pairs(&data, WorkerId(3), PairingStrategy::GreedyByOverlap, 1);
        assert_eq!(pairs.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(seen.insert(a), "worker {a:?} used twice");
            assert!(seen.insert(b), "worker {b:?} used twice");
            assert_ne!(a, WorkerId(3));
            assert_ne!(b, WorkerId(3));
        }
    }

    #[test]
    fn even_worker_count_leaves_one_over() {
        let mut b = ResponseMatrixBuilder::new(6, 10, 2);
        for w in 0..6u32 {
            for t in 0..10u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        let data = b.build().unwrap();
        let pairs = form_pairs(&data, WorkerId(0), PairingStrategy::GreedyByOverlap, 1);
        assert_eq!(pairs.len(), 2, "5 peers → 2 pairs + 1 leftover");
    }

    #[test]
    fn min_overlap_filters_pairs() {
        let data = staggered();
        // Requiring 35 common tasks leaves only worker 1 — no pair.
        let pairs = form_pairs(&data, WorkerId(0), PairingStrategy::GreedyByOverlap, 35);
        assert!(pairs.is_empty());
    }

    #[test]
    fn quality_metric_counts_triple_overlap() {
        let data = staggered();
        let q = pairing_quality(&data, WorkerId(0), &[(WorkerId(1), WorkerId(2))]);
        assert_eq!(q, 30); // tasks 10..40 shared by 0, 1 and 2
    }

    #[test]
    fn capped_pairing_is_a_prefix_of_the_uncapped_one() {
        let mut b = ResponseMatrixBuilder::new(9, 12, 2);
        for w in 0..9u32 {
            for t in 0..12u32 {
                if (w + t) % 3 != 0 {
                    b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
                }
            }
        }
        let data = b.build().unwrap();
        let full = form_pairs(&data, WorkerId(0), PairingStrategy::GreedyByOverlap, 1);
        assert!(full.len() >= 3);
        for cap in 0..=full.len() + 1 {
            let capped = form_pairs_limited(
                &data,
                WorkerId(0),
                PairingStrategy::GreedyByOverlap,
                1,
                Some(cap),
            );
            assert_eq!(capped, full[..cap.min(full.len())].to_vec(), "cap {cap}");
        }
        assert_eq!(
            form_pairs_limited(
                &data,
                WorkerId(0),
                PairingStrategy::GreedyByOverlap,
                1,
                None
            ),
            full
        );
    }

    #[test]
    fn pairing_peers_flattens_sorted_and_deduplicated() {
        let pairs = [
            (WorkerId(5), WorkerId(2)),
            (WorkerId(7), WorkerId(1)),
            (WorkerId(3), WorkerId(6)),
        ];
        assert_eq!(
            pairing_peers(&pairs),
            [1, 2, 3, 5, 6, 7].map(WorkerId).to_vec()
        );
        assert!(pairing_peers(&[]).is_empty());
    }

    #[test]
    fn no_candidates_yields_empty() {
        let mut b = ResponseMatrixBuilder::new(3, 3, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(0)).unwrap();
        b.push(WorkerId(2), TaskId(2), Label(0)).unwrap();
        let data = b.build().unwrap();
        assert!(form_pairs(&data, WorkerId(0), PairingStrategy::GreedyByOverlap, 1).is_empty());
    }
}
