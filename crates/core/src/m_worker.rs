//! The m-worker estimator — Algorithm A2 (§III-C).
//!
//! To evaluate worker `i` among `m` workers on non-regular data:
//!
//! 1. split the other workers into disjoint pairs, greedily by task
//!    overlap with `i` ([`crate::pairing`]);
//! 2. run the 3-worker method on every triple `(i, j₁, j₂)`, keeping
//!    the per-triple estimate `p_{k,i}`, its deviation and the Lemma 2
//!    derivatives ([`crate::three_worker`]);
//! 3. assemble the cross-triple covariance matrix with **Lemma 4** —
//!    triples correlate because they all contain worker `i`'s
//!    responses — and combine the estimates with the **Lemma 5**
//!    minimum-variance weights;
//! 4. apply Theorem 1 once more for the final interval.
//!
//! # Sparse-data caveat
//!
//! Triples whose agreement rate falls at or below 1/2 cannot be
//! inverted and are dropped (the paper's failure mode). When pair
//! overlaps are tiny (a handful of common tasks), that drop becomes a
//! strong *selection* effect: the surviving triples saw unusually high
//! agreement, so the combined estimate is biased toward zero error.
//! On very sparse datasets raise
//! [`EstimatorConfig::min_pair_overlap`](crate::EstimatorConfig) (the
//! experiment harness uses 10 for the real-data figures, mirroring the
//! paper's §IV-C overlap threshold `t`); workers without enough
//! well-overlapped peers are then reported as failures instead of
//! being silently mis-estimated.

use crate::three_worker::{ThreeWorkerEstimator, TripleEstimate};
use crate::{EstimateError, EstimatorConfig, Result, WorkerAssessment, WorkerReport};
use crowd_data::{
    AnchoredOverlap, AnchoredScratch, CachedOverlap, OverlapIndex, OverlapSource, PeerGram,
    PeerGramScratch, ResponseMatrix, WorkerId,
};
use crowd_linalg::Matrix;
use crowd_stats::{ConfidenceInterval, min_variance_weights};

/// Reusable per-thread scratch for the indexed evaluate-all hot path:
/// the peer-id buffer, the anchored view's mask words and the
/// [`PeerGram`] table survive from one evaluated worker to the next,
/// so a thread's whole chunk runs allocation-free once all have
/// reached their high-water marks.
#[derive(Debug, Default)]
pub struct EvalScratch {
    peers: Vec<WorkerId>,
    anchored: AnchoredScratch,
    gram: PeerGram,
    gram_scratch: PeerGramScratch,
}

/// The m-worker estimator (Algorithm A2).
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, MWorkerEstimator};
/// use crowd_sim::BinaryScenario;
///
/// // 7 workers, 100 binary tasks, 80% attempt density.
/// let instance = BinaryScenario::paper_default(7, 100, 0.8)
///     .generate(&mut crowd_sim::rng(42));
///
/// let estimator = MWorkerEstimator::new(EstimatorConfig::default());
/// let report = estimator.evaluate_all(instance.responses(), 0.9)?;
/// assert_eq!(report.assessments.len(), 7);
/// for a in &report.assessments {
///     // Every interval is a proper 90% confidence interval on the
///     // worker's error rate, derived purely from agreement data.
///     assert!(a.interval.size() > 0.0);
/// }
/// # Ok::<(), crowd_core::EstimateError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MWorkerEstimator {
    config: EstimatorConfig,
    three: ThreeWorkerEstimator,
}

impl MWorkerEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        Self {
            three: ThreeWorkerEstimator::new(config.clone()),
            config,
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Evaluates a single worker, aggregating every usable triple.
    pub fn evaluate_worker(
        &self,
        data: &ResponseMatrix,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment> {
        self.evaluate_worker_on(data, worker, confidence)
    }

    /// [`MWorkerEstimator::evaluate_worker`] with a precomputed
    /// [`crowd_data::PairCache`], replacing every pairwise merge scan
    /// with an O(1) lookup — the workhorse of the incremental
    /// evaluator.
    pub fn evaluate_worker_cached(
        &self,
        data: &ResponseMatrix,
        cache: Option<&crowd_data::PairCache>,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment> {
        match cache {
            Some(cache) => {
                self.evaluate_worker_on(&CachedOverlap { data, cache }, worker, confidence)
            }
            None => self.evaluate_worker_on(data, worker, confidence),
        }
    }

    /// Algorithm A2 for one worker over any overlap substrate. Every
    /// statistic the pipeline touches — candidate overlaps, the three
    /// agreement rates per triple, `c_ij₁j₂`, and the Lemma 4
    /// cross-triple counts `c_iab` — comes from `src`, so the same code
    /// runs against merge scans (the naive reference), a streaming
    /// cache, or the [`OverlapIndex`] (O(1) pairs, anchored bitset
    /// triples). Outputs are identical across substrates.
    pub fn evaluate_worker_on<S: OverlapSource>(
        &self,
        src: &S,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment> {
        self.evaluate_worker_via(
            src,
            worker,
            confidence,
            &mut Vec::new(),
            &mut PeerGram::default(),
            &mut PeerGramScratch::default(),
            |peers| src.anchored_for(worker, peers),
        )
    }

    /// [`MWorkerEstimator::evaluate_worker_on`] for a set of workers,
    /// collecting per-worker outcomes into one [`WorkerReport`]
    /// (assessments and failures in `workers` order). This is the
    /// subset entry point the shard-resident assessment runtime uses
    /// to answer snapshot requests from its maintained streaming
    /// substrate; rows are bit-identical to evaluating each worker
    /// individually, so reports merged across shards with
    /// [`WorkerReport::merge`] equal a serial full-fleet pass.
    pub fn evaluate_workers_on<S: OverlapSource>(
        &self,
        src: &S,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport> {
        if src.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: src.n_workers(),
                need: 3,
            });
        }
        let mut report = WorkerReport::default();
        for &worker in workers {
            match self.evaluate_worker_on(src, worker, confidence) {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            }
        }
        Ok(report)
    }

    /// [`MWorkerEstimator::evaluate_worker_on`] against an
    /// [`OverlapIndex`] with caller-held [`EvalScratch`]: the anchored
    /// view is built into the scratch's reusable mask words, so an
    /// evaluate-all loop allocates nothing per worker. Outputs are
    /// bit-identical to the scratch-free path.
    pub fn evaluate_worker_indexed_scratch(
        &self,
        index: &OverlapIndex,
        worker: WorkerId,
        confidence: f64,
        scratch: &mut EvalScratch,
    ) -> Result<WorkerAssessment> {
        let EvalScratch {
            peers,
            anchored,
            gram,
            gram_scratch,
        } = scratch;
        self.evaluate_worker_via(index, worker, confidence, peers, gram, gram_scratch, |ps| {
            index.anchored_for_in(worker, ps, anchored)
        })
    }

    /// The evaluation body behind both entry points: pairing, the
    /// peer-scoped anchored view (built by `view` from the selected
    /// peer set, so it holds `O(peers)` mask rows — never
    /// `O(n_workers)`), one [`PeerGram`] pass answering every triple
    /// count of the evaluation, triple estimation, and the Lemma 4/5
    /// combination.
    #[allow(clippy::too_many_arguments)] // scratch fields arrive split so `view` can borrow disjointly
    fn evaluate_worker_via<S: OverlapSource, A: AnchoredOverlap>(
        &self,
        src: &S,
        worker: WorkerId,
        confidence: f64,
        peers_buf: &mut Vec<WorkerId>,
        gram: &mut PeerGram,
        gram_scratch: &mut PeerGramScratch,
        view: impl FnOnce(&[WorkerId]) -> A,
    ) -> Result<WorkerAssessment> {
        if src.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: src.n_workers(),
                need: 3,
            });
        }
        let pairs = crate::pairing::form_pairs_limited(
            src,
            worker,
            self.config.pairing,
            self.config.min_pair_overlap,
            self.config.max_triples,
        );
        if pairs.is_empty() {
            return Err(EstimateError::NoUsableTriples { worker });
        }
        // One peer-scoped anchored view serves every triple of this
        // evaluation: `c_{worker,a,b}` for the triple estimates and for
        // the Lemma 4 covariance assembly below only ever pair up
        // workers the pairing selected. Sorted and deduplicated, so
        // the view's mask and the gram are sized by the distinct-peer
        // count, not 2·pairs.
        peers_buf.clear();
        peers_buf.extend(pairs.iter().flat_map(|&(a, b)| [a, b]));
        peers_buf.sort_unstable();
        peers_buf.dedup();
        let anchored = view(peers_buf);
        // Every `c_{worker,a,b}` this evaluation will ever ask for —
        // the per-triple `c_all` here and the O(T²) Lemma 4 loop below
        // — in one blocked pass; see `crowd_data::gram`.
        anchored.gram_into(peers_buf, gram, gram_scratch);
        let mut triples: Vec<TripleEstimate> = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let c_all = gram.get(a, b);
            match self
                .three
                .triple_estimate_with_c_all(src, worker, a, b, c_all)
            {
                Ok(t) => triples.push(t),
                // A degenerate or under-overlapped triple is dropped;
                // the remaining triples still yield a valid (wider)
                // interval.
                Err(EstimateError::Degenerate { .. })
                | Err(EstimateError::InsufficientOverlap { .. }) => {}
                Err(other) => return Err(other),
            }
        }
        if triples.is_empty() {
            return Err(EstimateError::NoUsableTriples { worker });
        }

        if triples.len() == 1 {
            let t = &triples[0];
            let interval = ConfidenceInterval::from_deviation(t.p_hat, t.deviation, confidence)?;
            return Ok(WorkerAssessment {
                worker,
                interval,
                triples_used: 1,
                weights_fell_back: false,
            });
        }

        let cov = self.triple_covariance(src, gram, &triples);
        let weights = min_variance_weights(&cov, self.config.weight_policy)?;
        let p_hat: f64 = weights
            .weights
            .iter()
            .zip(&triples)
            .map(|(w, t)| w * t.p_hat)
            .sum();
        let interval =
            ConfidenceInterval::from_deviation(p_hat, weights.variance.sqrt(), confidence)?;
        Ok(WorkerAssessment {
            worker,
            interval,
            triples_used: triples.len(),
            weights_fell_back: weights.fell_back,
        })
    }

    /// Evaluates every worker, collecting per-worker failures instead
    /// of aborting (sparse real data routinely has a few unevaluable
    /// workers).
    ///
    /// Builds one [`OverlapIndex`] over the matrix and evaluates every
    /// worker against it — the index is built in a single pass and
    /// every downstream statistic becomes a table lookup or bitset
    /// popcount. Results are identical to the per-worker scan path
    /// ([`MWorkerEstimator::evaluate_all_naive`]).
    pub fn evaluate_all(&self, data: &ResponseMatrix, confidence: f64) -> Result<WorkerReport> {
        if data.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: data.n_workers(),
                need: 3,
            });
        }
        let index = OverlapIndex::from_matrix(data);
        self.evaluate_all_indexed(&index, confidence)
    }

    /// [`MWorkerEstimator::evaluate_all`] against a caller-built
    /// [`OverlapIndex`] — for pipelines that reuse one index across
    /// many operations (assessment, pairing diagnostics, k-ary runs).
    /// One [`EvalScratch`] (peer buffer + anchored mask words) is
    /// reused across the whole worker loop.
    pub fn evaluate_all_indexed(
        &self,
        index: &OverlapIndex,
        confidence: f64,
    ) -> Result<WorkerReport> {
        if index.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: index.n_workers(),
                need: 3,
            });
        }
        let mut scratch = EvalScratch::default();
        let mut report = WorkerReport::default();
        for worker in index.workers() {
            match self.evaluate_worker_indexed_scratch(index, worker, confidence, &mut scratch) {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            }
        }
        Ok(report)
    }

    /// The pre-index reference path: evaluates every worker by direct
    /// merge scans over the matrix, recomputing every pairwise and
    /// triple statistic at each use. Kept as the correctness baseline
    /// for the equivalence property tests and as the "naive" side of
    /// the scaling benchmarks; use [`MWorkerEstimator::evaluate_all`]
    /// everywhere else.
    pub fn evaluate_all_naive(
        &self,
        data: &ResponseMatrix,
        confidence: f64,
    ) -> Result<WorkerReport> {
        if data.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: data.n_workers(),
                need: 3,
            });
        }
        let mut report = WorkerReport::default();
        for worker in data.workers() {
            match self.evaluate_worker(data, worker, confidence) {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            }
        }
        Ok(report)
    }

    /// [`MWorkerEstimator::evaluate_all`] across `threads` worker
    /// threads, sharing one [`OverlapIndex`]. Workers are split into
    /// contiguous chunks by id — the same deterministic scoped-thread
    /// chunking as the bench runner — and per-worker evaluations are
    /// independent, so the report is bit-identical to the serial one
    /// (assessments in worker order) regardless of thread count.
    pub fn evaluate_all_parallel(
        &self,
        data: &ResponseMatrix,
        confidence: f64,
        threads: usize,
    ) -> Result<WorkerReport> {
        let m = data.n_workers();
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let index = OverlapIndex::from_matrix(data);
        self.evaluate_all_indexed_parallel(&index, confidence, threads)
    }

    /// Parallel [`MWorkerEstimator::evaluate_all_indexed`]; see
    /// [`MWorkerEstimator::evaluate_all_parallel`]. Each thread holds
    /// one [`EvalScratch`] reused across its whole contiguous chunk —
    /// no per-worker view allocation — and scratch state never
    /// influences outputs, so the report stays bit-identical to the
    /// serial path for every thread count.
    pub fn evaluate_all_indexed_parallel(
        &self,
        index: &OverlapIndex,
        confidence: f64,
        threads: usize,
    ) -> Result<WorkerReport> {
        let m = index.n_workers();
        if m < 3 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 3 });
        }
        let threads = threads.max(1).min(m);
        if threads == 1 {
            return self.evaluate_all_indexed(index, confidence);
        }
        let outcomes = crate::parallel::parallel_worker_map_with(
            m,
            threads,
            EvalScratch::default,
            |scratch, worker| {
                self.evaluate_worker_indexed_scratch(index, worker, confidence, scratch)
            },
        );
        let mut report = WorkerReport::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((WorkerId(i as u32), e)),
            }
        }
        Ok(report)
    }

    /// Evaluates only the given workers — the shard entry point:
    /// a shard process calls this for its anchor range against its
    /// scoped index. Chunking, per-thread [`EvalScratch`] reuse and
    /// outcome collection match
    /// [`MWorkerEstimator::evaluate_all_indexed_parallel`] exactly, so
    /// each returned row is bit-identical to the corresponding row of
    /// a full-fleet run (assessments and failures in `workers` order —
    /// pass an ascending range for canonical order).
    pub fn evaluate_workers_indexed_parallel(
        &self,
        index: &OverlapIndex,
        workers: &[WorkerId],
        confidence: f64,
        threads: usize,
    ) -> Result<WorkerReport> {
        if index.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: index.n_workers(),
                need: 3,
            });
        }
        let outcomes = crate::parallel::parallel_index_map_with(
            workers.len(),
            threads.max(1),
            EvalScratch::default,
            |scratch, i| {
                self.evaluate_worker_indexed_scratch(index, workers[i], confidence, scratch)
            },
        );
        let mut report = WorkerReport::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((workers[i], e)),
            }
        }
        Ok(report)
    }

    /// Lemma 4: the l×l covariance matrix of the per-triple estimates
    /// `p_{k,i}`.
    ///
    /// Diagonal: `Dev²_{k,i}`. Off-diagonal, for triples `(i,j₁,j₂)` and
    /// `(i,j₃,j₄)`:
    ///
    /// ```text
    /// Cov = Σ_{a ∈ {j₁,j₂}} Σ_{b ∈ {j₃,j₄}} d_{k₁,i,a}·d_{k₂,i,b}·C(i,a,b)
    /// C(i,a,b) = c_{iab} · p_i(1−p_i) · (2q_{ab} − 1) / (c_{ia}·c_{ib})
    /// ```
    ///
    /// The pairs are disjoint across triples, so only agreement rates
    /// that share worker `i` correlate; `p_i` is plugged in as the mean
    /// of the per-triple estimates clamped into the admissible
    /// `[0, 1/2]`.
    ///
    /// The `c_iab` counts — the `O(l²)` hot spot of this assembly —
    /// are O(1) reads of the evaluation's [`PeerGram`] (computed in
    /// one blocked popcount pass up front); the agreement rates `q_ab`
    /// come from the pair table.
    fn triple_covariance<S: OverlapSource>(
        &self,
        src: &S,
        gram: &PeerGram,
        triples: &[TripleEstimate],
    ) -> Matrix {
        let l = triples.len();
        // Resolve each triple's peers to gram rows once; the O(l²)
        // loop below then reads the table directly.
        let rows: Vec<(usize, usize)> = triples
            .iter()
            .map(|t| (gram.row_of(t.peers.0), gram.row_of(t.peers.1)))
            .collect();
        let p_i = {
            let mean = triples.iter().map(|t| t.p_hat).sum::<f64>() / l as f64;
            mean.clamp(0.0, 0.5)
        };
        let pq_i = p_i * (1.0 - p_i);

        let mut cov = Matrix::zeros(l, l);
        for (k, t) in triples.iter().enumerate() {
            cov.set(k, k, t.deviation * t.deviation);
        }
        for k1 in 0..l {
            for k2 in (k1 + 1)..l {
                let t1 = &triples[k1];
                let t2 = &triples[k2];
                let mut sum = 0.0;
                let peers1 = [
                    (t1.peers.0, rows[k1].0, t1.gradient[0], t1.overlaps.c_i_j1),
                    (t1.peers.1, rows[k1].1, t1.gradient[1], t1.overlaps.c_i_j2),
                ];
                let peers2 = [
                    (t2.peers.0, rows[k2].0, t2.gradient[0], t2.overlaps.c_i_j1),
                    (t2.peers.1, rows[k2].1, t2.gradient[1], t2.overlaps.c_i_j2),
                ];
                for &(a, row_a, d_a, c_ia) in &peers1 {
                    for &(b, row_b, d_b, c_ib) in &peers2 {
                        let c_iab = gram.at(row_a, row_b);
                        if c_iab == 0 {
                            continue;
                        }
                        let s_ab = src.pair(a, b);
                        // c_iab > 0 implies a and b share tasks.
                        let q_ab = s_ab
                            .agreement_rate()
                            .expect("triple overlap implies pair overlap");
                        sum += d_a
                            * d_b
                            * (c_iab as f64 * pq_i * (2.0 * q_ab - 1.0)
                                / (c_ia as f64 * c_ib as f64));
                    }
                }
                // Cauchy-Schwarz clip against the diagonal, mirroring
                // the 3-worker covariance assembly.
                let bound = 0.99 * (cov.get(k1, k1) * cov.get(k2, k2)).sqrt();
                let sum = sum.clamp(-bound, bound);
                cov.set(k1, k2, sum);
                cov.set(k2, k1, sum);
            }
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{AttemptDesign, BinaryScenario, rng};
    use crowd_stats::WeightPolicy;

    fn estimator() -> MWorkerEstimator {
        MWorkerEstimator::new(EstimatorConfig::default())
    }

    #[test]
    fn evaluates_every_worker_on_dense_data() {
        let inst = BinaryScenario::paper_default(7, 100, 0.8).generate(&mut rng(21));
        let report = estimator().evaluate_all(inst.responses(), 0.9).unwrap();
        assert_eq!(report.assessments.len(), 7);
        assert!(report.failures.is_empty());
        for a in &report.assessments {
            assert!(a.interval.size() > 0.0);
            assert!(a.triples_used >= 1);
        }
    }

    #[test]
    fn seven_workers_use_three_triples() {
        let inst = BinaryScenario::paper_default(7, 100, 1.0).generate(&mut rng(21));
        let a = estimator()
            .evaluate_worker(inst.responses(), WorkerId(0), 0.9)
            .unwrap();
        assert_eq!(a.triples_used, 3);
    }

    #[test]
    fn coverage_tracks_confidence_level() {
        // Fig 2(a) in miniature: 90% intervals on m=7, n=100, d=0.8.
        let scenario = BinaryScenario::paper_default(7, 100, 0.8);
        let est = estimator();
        let mut r = rng(31);
        let mut stats = crate::CoverageStats::default();
        for _ in 0..60 {
            let inst = scenario.generate(&mut r);
            let report = est.evaluate_all(inst.responses(), 0.9).unwrap();
            stats.merge(report.coverage(|w| Some(inst.true_error_rate(w))));
        }
        let acc = stats.accuracy().unwrap();
        assert!(
            (acc - 0.9).abs() < 0.06,
            "coverage {acc} over {} intervals, expected ≈ 0.9",
            stats.total
        );
    }

    #[test]
    fn more_workers_tighten_intervals() {
        // With more triples to average, intervals shrink (Fig 1 shape).
        let mut r = rng(37);
        let est = estimator();
        let mut size3 = 0.0;
        let mut size7 = 0.0;
        let reps = 30;
        for _ in 0..reps {
            let i3 = BinaryScenario::paper_default(3, 100, 1.0).generate(&mut r);
            let i7 = BinaryScenario::paper_default(7, 100, 1.0).generate(&mut r);
            size3 += est
                .evaluate_all(i3.responses(), 0.8)
                .unwrap()
                .mean_interval_size();
            size7 += est
                .evaluate_all(i7.responses(), 0.8)
                .unwrap()
                .mean_interval_size();
        }
        assert!(
            size7 < size3 * 0.8,
            "7-worker intervals should be distinctly tighter: {size7} vs {size3}"
        );
    }

    #[test]
    fn optimized_weights_beat_uniform_on_heterogeneous_density() {
        // Fig 2(c) in miniature: per-worker densities sloping 0.93→0.5.
        let mut scenario = BinaryScenario::paper_default(7, 100, 0.8);
        scenario.design = AttemptDesign::PerWorkerDensity(crowd_sim::fig2c_densities(7));
        let opt = MWorkerEstimator::new(EstimatorConfig::default());
        let uni = MWorkerEstimator::new(EstimatorConfig::with_uniform_weights());
        let mut r = rng(41);
        let mut opt_size = 0.0;
        let mut uni_size = 0.0;
        for _ in 0..25 {
            let inst = scenario.generate(&mut r);
            opt_size += opt
                .evaluate_all(inst.responses(), 0.5)
                .unwrap()
                .mean_interval_size();
            uni_size += uni
                .evaluate_all(inst.responses(), 0.5)
                .unwrap()
                .mean_interval_size();
        }
        assert!(
            opt_size < uni_size,
            "optimized weights must not be wider: {opt_size} vs {uni_size}"
        );
    }

    #[test]
    fn uniform_policy_reports_equal_weights_effect() {
        let inst = BinaryScenario::paper_default(5, 120, 0.9).generate(&mut rng(43));
        let est = MWorkerEstimator::new(EstimatorConfig {
            weight_policy: WeightPolicy::Uniform,
            ..EstimatorConfig::default()
        });
        let a = est
            .evaluate_worker(inst.responses(), WorkerId(2), 0.8)
            .unwrap();
        assert_eq!(a.triples_used, 2);
        assert!(!a.weights_fell_back);
    }

    #[test]
    fn too_few_workers_rejected() {
        let inst = BinaryScenario::paper_default(2, 30, 1.0).generate(&mut rng(47));
        assert!(matches!(
            estimator().evaluate_all(inst.responses(), 0.9),
            Err(EstimateError::NotEnoughWorkers { .. })
        ));
        assert!(matches!(
            estimator().evaluate_all_parallel(inst.responses(), 0.9, 4),
            Err(EstimateError::NotEnoughWorkers { .. })
        ));
    }

    #[test]
    fn parallel_evaluation_matches_serial_exactly() {
        let inst = BinaryScenario::paper_default(11, 150, 0.7).generate(&mut rng(59));
        let est = estimator();
        let serial = est.evaluate_all(inst.responses(), 0.9).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let parallel = est
                .evaluate_all_parallel(inst.responses(), 0.9, threads)
                .unwrap();
            assert_eq!(serial.assessments.len(), parallel.assessments.len());
            for (s, p) in serial.assessments.iter().zip(&parallel.assessments) {
                assert_eq!(s.worker, p.worker);
                assert_eq!(s.interval, p.interval, "worker {:?}", s.worker);
                assert_eq!(s.triples_used, p.triples_used);
            }
            assert_eq!(serial.failures.len(), parallel.failures.len());
        }
    }

    #[test]
    fn max_triples_caps_every_path_identically() {
        let inst = BinaryScenario::paper_default(13, 150, 0.8).generate(&mut rng(61));
        let data = inst.responses();
        let capped = MWorkerEstimator::new(EstimatorConfig::fleet(2));

        let serial = capped.evaluate_all(data, 0.9).unwrap();
        assert!(!serial.assessments.is_empty());
        for a in &serial.assessments {
            assert!(
                a.triples_used <= 2,
                "worker {:?} used {}",
                a.worker,
                a.triples_used
            );
        }
        // The uncapped estimator really does use more triples here, so
        // the cap is doing work.
        let full = estimator().evaluate_all(data, 0.9).unwrap();
        assert!(full.assessments.iter().any(|a| a.triples_used > 2));

        // Naive scans, indexed, and parallel paths agree bit for bit
        // under the cap.
        let naive = capped.evaluate_all_naive(data, 0.9).unwrap();
        for threads in [1usize, 3, 8] {
            let parallel = capped.evaluate_all_parallel(data, 0.9, threads).unwrap();
            for (s, p) in serial.assessments.iter().zip(&parallel.assessments) {
                assert_eq!(s.worker, p.worker);
                assert_eq!(s.interval, p.interval, "threads {threads}");
                assert_eq!(s.triples_used, p.triples_used);
            }
        }
        for (s, n) in serial.assessments.iter().zip(&naive.assessments) {
            assert_eq!(s.worker, n.worker);
            assert_eq!(s.interval, n.interval, "naive vs indexed under cap");
        }

        // A cap above the available pairing degree is a no-op.
        let big = MWorkerEstimator::new(EstimatorConfig::fleet(64))
            .evaluate_all(data, 0.9)
            .unwrap();
        assert_eq!(big.assessments.len(), full.assessments.len());
        for (b, f) in big.assessments.iter().zip(&full.assessments) {
            assert_eq!(b.interval, f.interval);
            assert_eq!(b.triples_used, f.triples_used);
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_views_per_worker() {
        // Drive the scratch entry point directly over workers of very
        // different degrees: reused mask words must never leak bits.
        let inst = BinaryScenario::paper_default(9, 120, 0.6).generate(&mut rng(67));
        let index = crowd_data::OverlapIndex::from_matrix(inst.responses());
        let est = estimator();
        let mut scratch = EvalScratch::default();
        for worker in index.workers() {
            let fresh = est.evaluate_worker_on(&index, worker, 0.9);
            let reused = est.evaluate_worker_indexed_scratch(&index, worker, 0.9, &mut scratch);
            match (fresh, reused) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.interval, b.interval, "worker {worker:?}");
                    assert_eq!(a.triples_used, b.triples_used);
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("outcome mismatch for {worker:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn isolated_worker_fails_gracefully() {
        // Worker 3 answers only a task nobody else attempts.
        use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
        let mut b = ResponseMatrixBuilder::new(4, 21, 2);
        for w in 0..3u32 {
            for t in 0..20u32 {
                b.push(WorkerId(w), TaskId(t), Label((t % 5 == 0 && w == 2) as u16))
                    .unwrap();
            }
        }
        b.push(WorkerId(3), TaskId(20), Label(0)).unwrap();
        let data = b.build().unwrap();
        let report = estimator().evaluate_all(&data, 0.9).unwrap();
        assert_eq!(report.assessments.len(), 3);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].0, WorkerId(3));
        assert!(matches!(
            report.failures[0].1,
            EstimateError::NoUsableTriples { .. }
        ));
    }

    #[test]
    fn point_estimates_are_consistent() {
        // Large n: point estimates should approach the true error rates.
        let inst = BinaryScenario::paper_default(5, 4000, 1.0).generate(&mut rng(53));
        let report = estimator().evaluate_all(inst.responses(), 0.9).unwrap();
        for a in &report.assessments {
            let truth = inst.true_error_rate(a.worker);
            assert!(
                (a.interval.center - truth).abs() < 0.04,
                "worker {:?}: estimate {} vs truth {truth}",
                a.worker,
                a.interval.center
            );
        }
    }
}
