//! Deterministic scoped-thread fan-out.

use crowd_data::WorkerId;

/// Runs `f(i)` for every index in `0..count` across `threads` scoped
/// threads, returning results in index order.
///
/// Indices are split into contiguous chunks, so the output is
/// identical to the serial loop regardless of thread count — the
/// single chunking scheme shared by the estimators' parallel
/// `evaluate_all` paths and the bench harness's repetition runner.
pub fn parallel_index_map<T: Send>(
    count: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(t * chunk + i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index evaluated"))
        .collect()
}

/// [`parallel_index_map`] over worker ids.
pub(crate) fn parallel_worker_map<T: Send>(
    m: usize,
    threads: usize,
    f: impl Fn(WorkerId) -> T + Sync,
) -> Vec<T> {
    parallel_index_map(m, threads, |i| f(WorkerId(i as u32)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_worker_in_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let out = parallel_worker_map(23, threads, |w| w.0 * 2);
            let expect: Vec<u32> = (0..23).map(|w| w * 2).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn zero_workers_is_empty() {
        assert!(parallel_worker_map(0, 4, |w| w).is_empty());
    }
}
