//! Deterministic scoped-thread fan-out.

use crowd_data::WorkerId;

/// Runs `f(i)` for every index in `0..count` across `threads` scoped
/// threads, returning results in index order.
///
/// Indices are split into contiguous chunks, so the output is
/// identical to the serial loop regardless of thread count — the
/// single chunking scheme shared by the estimators' parallel
/// `evaluate_all` paths and the bench harness's repetition runner.
pub fn parallel_index_map<T: Send>(
    count: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    parallel_index_map_with(count, threads, || (), |(), i| f(i))
}

/// [`parallel_index_map`] with reusable **per-thread scratch state**:
/// every spawned thread calls `init` once and threads the resulting
/// value through each `f` call of its contiguous chunk (the serial
/// path reuses a single scratch across all indices). This is how the
/// indexed evaluate-all hot path shares one peer buffer and one
/// anchored mask allocation across every worker a thread evaluates,
/// instead of allocating a fresh view per worker. Chunking — and
/// therefore output order — is identical to [`parallel_index_map`]:
/// scratch state never influences results, only allocation traffic.
pub fn parallel_index_map_with<S, T: Send>(
    count: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    if threads == 1 {
        let mut scratch = init();
        return (0..count).map(|i| f(&mut scratch, i)).collect();
    }
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut scratch = init();
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(&mut scratch, t * chunk + i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index evaluated"))
        .collect()
}

/// [`parallel_index_map_with`] over worker ids.
pub(crate) fn parallel_worker_map_with<S, T: Send>(
    m: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, WorkerId) -> T + Sync,
) -> Vec<T> {
    parallel_index_map_with(m, threads, init, |scratch, i| {
        f(scratch, WorkerId(i as u32))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_worker_in_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let out = parallel_worker_map_with(23, threads, || (), |(), w| w.0 * 2);
            let expect: Vec<u32> = (0..23).map(|w| w * 2).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn zero_workers_is_empty() {
        assert!(parallel_worker_map_with(0, 4, || (), |(), w| w).is_empty());
    }

    #[test]
    fn scratch_state_is_per_thread_and_reused_within_a_chunk() {
        for threads in [1usize, 2, 5] {
            // Each call records how many times its thread's scratch was
            // used before it; chunks must see 0, 1, 2, … in index order.
            let out = parallel_index_map_with(
                10,
                threads,
                || 0usize,
                |uses, i| {
                    let seen = *uses;
                    *uses += 1;
                    (i, seen)
                },
            );
            let chunk = 10usize.div_ceil(threads.clamp(1, 10));
            for (i, &(idx, seen)) in out.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(seen, i % chunk, "threads {threads}, index {i}");
            }
        }
    }
}
