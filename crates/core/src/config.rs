//! Estimator configuration.

use crate::pairing::PairingStrategy;
use crowd_stats::WeightPolicy;

/// What to do when an agreement rate falls at or below 1/2, where the
/// inversion `f(a,b,c) = 1/2 − 1/2·sqrt((2a−1)(2b−1)/(2c−1))` is
/// singular (§III-E discusses this failure mode).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DegeneracyPolicy {
    /// Clamp `q̂` to `1/2 + epsilon` before inverting. Produces very
    /// wide (honest) intervals for near-spammer data instead of
    /// failing. Useful in production pipelines that must always emit
    /// an interval.
    Clamp {
        /// Distance from the singularity; must be positive.
        epsilon: f64,
    },
    /// Return [`crate::EstimateError::Degenerate`] — the paper's
    /// behaviour ("a minuscule probability that our algorithm fails
    /// due to a negative value occurring under the square root",
    /// §III-C). The m-worker estimator drops the offending triple
    /// rather than failing the whole evaluation; the default.
    #[default]
    Error,
}

/// Tuning knobs shared by the estimators. The defaults reproduce the
/// paper's experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Handling of agreement rates at or below the 1/2 singularity.
    pub degeneracy: DegeneracyPolicy,
    /// Minimum number of common tasks for a worker pair to be usable
    /// (the paper requires ≥ 1).
    pub min_pair_overlap: usize,
    /// How per-triple estimates are combined in Algorithm A2
    /// (Lemma 5 minimum-variance weights vs. the uniform baseline of
    /// Figure 2c).
    pub weight_policy: WeightPolicy,
    /// How peers are split into pairs when forming triples (§III-C1).
    pub pairing: PairingStrategy,
    /// Upper bound on the number of triples formed per evaluated
    /// worker (`None` = the paper's behaviour: pair every usable
    /// peer). The greedy pairing takes the best-overlapped pairs
    /// first, so a cap keeps the most informative triples while
    /// bounding the evaluation's peer scope at `2·max_triples` workers
    /// — which in turn bounds every anchored view at `O(max_triples)`
    /// mask rows. This is the knob that makes per-worker evaluation
    /// cost independent of the fleet size; see
    /// [`EstimatorConfig::fleet`].
    pub max_triples: Option<usize>,
    /// Apply half-count (Agresti-style) smoothing of `q̂(1−q̂)` when
    /// estimating variances, so perfect agreement on few tasks does not
    /// collapse the interval to a point. Point estimates are never
    /// smoothed.
    pub variance_smoothing: bool,
    /// Step `ε` of the k-ary numeric differentiation (Algorithm A3
    /// step 5 fixes "a small ε, say 0.01").
    pub derivative_epsilon: f64,
    /// If true, the k-ary numeric differentiation also perturbs counts
    /// of tasks attempted by only two workers. The paper perturbs only
    /// the all-three block; the extension is provided as an ablation.
    pub perturb_partial_counts: bool,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            degeneracy: DegeneracyPolicy::default(),
            min_pair_overlap: 1,
            weight_policy: WeightPolicy::MinimumVariance,
            pairing: PairingStrategy::GreedyByOverlap,
            max_triples: None,
            variance_smoothing: true,
            derivative_epsilon: 0.01,
            perturb_partial_counts: false,
        }
    }
}

impl EstimatorConfig {
    /// Fleet-scale configuration: at most `max_triples` triples per
    /// evaluated worker (the best-overlapped pairs first), so both the
    /// covariance assembly (`O(max_triples²)` popcounts) and the
    /// anchored view memory (`2·max_triples` mask rows) are bounded
    /// regardless of how many workers the crowd holds. Interval widths
    /// saturate with the triple count anyway (Lemma 5 weights), so a
    /// modest cap trades negligible width for fleet-size independence.
    pub fn fleet(max_triples: usize) -> Self {
        Self {
            max_triples: Some(max_triples),
            ..Self::default()
        }
    }
    /// Paper-faithful configuration with uniform triple weights — the
    /// "No Optimization" arm of Figure 2(c).
    pub fn with_uniform_weights() -> Self {
        Self {
            weight_policy: WeightPolicy::Uniform,
            ..Self::default()
        }
    }

    /// Configuration that clamps degenerate agreement rates instead of
    /// failing, for pipelines that must always emit an interval.
    pub fn clamping() -> Self {
        Self {
            degeneracy: DegeneracyPolicy::Clamp { epsilon: 1e-3 },
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = EstimatorConfig::default();
        assert_eq!(c.min_pair_overlap, 1);
        assert_eq!(c.max_triples, None, "the paper pairs every peer");
        assert_eq!(c.weight_policy, WeightPolicy::MinimumVariance);
        assert!((c.derivative_epsilon - 0.01).abs() < 1e-15);
        assert!(!c.perturb_partial_counts);
        assert_eq!(c.degeneracy, DegeneracyPolicy::Error);
    }

    #[test]
    fn presets() {
        assert_eq!(
            EstimatorConfig::with_uniform_weights().weight_policy,
            WeightPolicy::Uniform
        );
        assert!(matches!(
            EstimatorConfig::clamping().degeneracy,
            DegeneracyPolicy::Clamp { .. }
        ));
        assert_eq!(EstimatorConfig::fleet(16).max_triples, Some(16));
    }
}
