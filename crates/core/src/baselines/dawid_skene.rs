//! Dawid-Skene EM estimation — the classical point-estimate
//! comparator (related work, [13] in the paper).
//!
//! Jointly estimates hidden true labels and per-worker confusion
//! matrices by expectation-maximization. Converges to a *local*
//! optimum and, crucially for the paper's argument, provides **no
//! confidence intervals** — it is included as a baseline and as the
//! initializer-quality ablation.

use crate::{EstimateError, Result};
use crowd_data::{ResponseMatrix, TaskId, WorkerId};
use crowd_linalg::Matrix;

/// Configuration for the EM loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max absolute change of any
    /// posterior probability between iterations.
    pub tolerance: f64,
    /// Laplace smoothing added to confusion counts so empty cells never
    /// produce zero likelihoods.
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tolerance: 1e-6,
            smoothing: 0.01,
        }
    }
}

/// Output of a Dawid-Skene run.
#[derive(Debug, Clone)]
pub struct DawidSkeneResult {
    /// Per-worker k×k confusion matrices (row = truth, column =
    /// response).
    pub confusions: Vec<Matrix>,
    /// Per-task posterior distributions over true labels.
    pub posteriors: Vec<Vec<f64>>,
    /// Estimated class priors.
    pub class_priors: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// True when the posterior change dropped below tolerance.
    pub converged: bool,
}

impl DawidSkeneResult {
    /// Point estimate of each worker's overall error rate under the
    /// estimated priors: `Σ_j prior_j · (1 − P_w[j,j])`.
    pub fn error_rates(&self) -> Vec<f64> {
        self.confusions
            .iter()
            .map(|p| {
                self.class_priors
                    .iter()
                    .enumerate()
                    .map(|(j, &pi)| pi * (1.0 - p.get(j, j)))
                    .sum()
            })
            .collect()
    }

    /// Maximum a-posteriori label per task.
    pub fn map_labels(&self) -> Vec<usize> {
        self.posteriors
            .iter()
            .map(|post| {
                post.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite posterior"))
                    .map(|(i, _)| i)
                    .expect("non-empty posterior")
            })
            .collect()
    }
}

impl DawidSkene {
    /// Runs EM on the response matrix.
    pub fn run(&self, data: &ResponseMatrix) -> Result<DawidSkeneResult> {
        let k = data.arity() as usize;
        let n = data.n_tasks();
        let m = data.n_workers();
        if n == 0 || m == 0 {
            return Err(EstimateError::NotEnoughWorkers { got: m, need: 1 });
        }

        // Initialize posteriors by (soft) majority vote.
        let mut posteriors: Vec<Vec<f64>> = (0..n)
            .map(|t| {
                let mut counts = vec![self.smoothing; k];
                for &(_, l) in data.task_responses(TaskId(t as u32)) {
                    counts[l.index()] += 1.0;
                }
                normalize(counts)
            })
            .collect();

        let mut confusions = vec![Matrix::identity(k); m];
        let mut class_priors = vec![1.0 / k as f64; k];
        let mut iterations = 0;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;
            // M-step: class priors and confusion matrices from the
            // current posteriors.
            let mut priors = vec![self.smoothing; k];
            for post in &posteriors {
                for (j, &p) in post.iter().enumerate() {
                    priors[j] += p;
                }
            }
            class_priors = normalize(priors);

            for w in 0..m {
                // Column-major accumulation: each response touches one
                // response-label column across all truth rows, so the
                // scatter runs over a contiguous column slice instead
                // of strided per-cell `Matrix::get`/`set` calls.
                let mut cols = vec![self.smoothing; k * k];
                for &(t, l) in data.worker_responses(WorkerId(w as u32)) {
                    let col = &mut cols[l.index() * k..(l.index() + 1) * k];
                    for (acc, &p) in col.iter_mut().zip(&posteriors[t as usize]) {
                        *acc += p;
                    }
                }
                let mut counts = Matrix::from_fn(k, k, |j, c| cols[c * k + j]);
                for j in 0..k {
                    let row = counts.row_mut(j);
                    let row_sum: f64 = row.iter().sum();
                    for v in row.iter_mut() {
                        *v /= row_sum;
                    }
                }
                confusions[w] = counts;
            }

            // Per-worker log-likelihood tables, transposed so that one
            // response indexes a contiguous row of `k` truth terms: the
            // E-step product then streams over slices, and each
            // `ln(P_w[j, l])` is computed once per iteration instead of
            // once per (task, response) visit.
            let log_conf: Vec<Vec<f64>> = confusions
                .iter()
                .map(|conf| {
                    let mut t = vec![0.0; k * k];
                    for l in 0..k {
                        for (j, slot) in t[l * k..(l + 1) * k].iter_mut().enumerate() {
                            *slot = conf.get(j, l).max(1e-300).ln();
                        }
                    }
                    t
                })
                .collect();

            // E-step: posteriors from likelihoods (in log space to
            // avoid underflow on many-annotator tasks).
            let mut max_delta = 0.0f64;
            for t in 0..n {
                let mut log_post: Vec<f64> =
                    class_priors.iter().map(|&p| p.max(1e-300).ln()).collect();
                for &(w, l) in data.task_responses(TaskId(t as u32)) {
                    let terms = &log_conf[w as usize][l.index() * k..(l.index() + 1) * k];
                    for (lp, &term) in log_post.iter_mut().zip(terms) {
                        *lp += term;
                    }
                }
                let max_lp = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let unnorm: Vec<f64> = log_post.iter().map(|&lp| (lp - max_lp).exp()).collect();
                let new_post = normalize(unnorm);
                for (old, new) in posteriors[t].iter().zip(&new_post) {
                    max_delta = max_delta.max((old - new).abs());
                }
                posteriors[t] = new_post;
            }
            if max_delta < self.tolerance {
                converged = true;
                break;
            }
        }

        Ok(DawidSkeneResult {
            confusions,
            posteriors,
            class_priors,
            iterations,
            converged,
        })
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        v.iter_mut().for_each(|x| *x = u);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{BinaryScenario, KaryScenario, rng};

    #[test]
    fn recovers_binary_error_rates() {
        let inst = BinaryScenario::paper_default(7, 400, 1.0).generate(&mut rng(103));
        let result = DawidSkene::default().run(inst.responses()).unwrap();
        assert!(
            result.converged,
            "EM did not converge in {} iters",
            result.iterations
        );
        let rates = result.error_rates();
        for w in 0..7u32 {
            let truth = inst.true_error_rate(WorkerId(w));
            assert!(
                (rates[w as usize] - truth).abs() < 0.07,
                "worker {w}: EM {} vs truth {truth}",
                rates[w as usize]
            );
        }
    }

    #[test]
    fn map_labels_beat_any_single_worker() {
        let inst = BinaryScenario::paper_default(7, 300, 1.0).generate(&mut rng(107));
        let result = DawidSkene::default().run(inst.responses()).unwrap();
        let labels = result.map_labels();
        let correct = labels
            .iter()
            .enumerate()
            .filter(|&(t, &l)| {
                inst.gold()
                    .label(TaskId(t as u32))
                    .expect("complete gold")
                    .index()
                    == l
            })
            .count();
        let acc = correct as f64 / labels.len() as f64;
        // Best single worker has 10% errors; aggregation should beat it.
        assert!(acc > 0.9, "aggregate accuracy {acc}");
    }

    #[test]
    fn recovers_kary_confusion_structure() {
        let inst = KaryScenario::paper_default(3, 800, 1.0).generate(&mut rng(109));
        let result = DawidSkene::default().run(inst.responses()).unwrap();
        // Diagonals should correlate with the true diagonals.
        for w in 0..3u32 {
            let truth = inst.true_confusion(WorkerId(w));
            let est = &result.confusions[w as usize];
            for j in 0..3 {
                assert!(
                    (est.get(j, j) - truth.get(j, j)).abs() < 0.15,
                    "worker {w} diag {j}: {} vs {}",
                    est.get(j, j),
                    truth.get(j, j)
                );
            }
        }
    }

    #[test]
    fn class_priors_track_selectivity() {
        let mut scenario = KaryScenario::paper_default(3, 1500, 1.0);
        scenario.selectivity = vec![0.6, 0.25, 0.15];
        let inst = scenario.generate(&mut rng(113));
        let result = DawidSkene::default().run(inst.responses()).unwrap();
        assert!(
            (result.class_priors[0] - 0.6).abs() < 0.07,
            "{:?}",
            result.class_priors
        );
    }

    #[test]
    fn empty_data_rejected() {
        use crowd_data::ResponseMatrixBuilder;
        let data = ResponseMatrixBuilder::new(0, 0, 2).build().unwrap();
        assert!(DawidSkene::default().run(&data).is_err());
    }

    #[test]
    fn iteration_cap_respected() {
        let inst = BinaryScenario::paper_default(5, 100, 0.8).generate(&mut rng(127));
        let ds = DawidSkene {
            max_iters: 2,
            tolerance: 0.0,
            smoothing: 0.01,
        };
        let result = ds.run(inst.responses()).unwrap();
        assert_eq!(result.iterations, 2);
        assert!(!result.converged);
    }
}
