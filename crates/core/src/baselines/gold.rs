//! Gold-standard worker evaluation — the classical technique the
//! paper's introduction departs from.
//!
//! When correct responses are known for (some) tasks, a worker's error
//! rate is a plain binomial proportion and textbook intervals apply.
//! This baseline exists to quantify what the gold-free methods give up
//! (nothing, asymptotically, per Figure 2a) and to calibrate the
//! dataset stand-ins.

use crate::{EstimateError, Result};
use crowd_data::{GoldStandard, ResponseMatrix, WorkerId};
use crowd_stats::{ConfidenceInterval, wald_interval, wilson_interval};

/// Which proportion interval to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProportionMethod {
    /// Wilson score interval (default; behaves at the boundaries).
    #[default]
    Wilson,
    /// Wald (normal approximation) interval.
    Wald,
}

/// Gold-standard evaluator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldBaseline {
    /// Interval construction method.
    pub method: ProportionMethod,
}

impl GoldBaseline {
    /// Confidence interval for one worker's error rate from its gold
    /// tasks.
    pub fn evaluate_worker(
        &self,
        data: &ResponseMatrix,
        gold: &GoldStandard,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<ConfidenceInterval> {
        let (attempted, wrong) = gold.worker_error_counts(data, worker);
        if attempted == 0 {
            return Err(EstimateError::NoUsableTriples { worker });
        }
        let ci = match self.method {
            ProportionMethod::Wilson => {
                wilson_interval(wrong as u64, attempted as u64, confidence)?
            }
            ProportionMethod::Wald => wald_interval(wrong as u64, attempted as u64, confidence)?,
        };
        Ok(ci)
    }

    /// Evaluates every worker that attempted at least one gold task.
    pub fn evaluate_all(
        &self,
        data: &ResponseMatrix,
        gold: &GoldStandard,
        confidence: f64,
    ) -> Vec<(WorkerId, ConfidenceInterval)> {
        data.workers()
            .filter_map(|w| {
                self.evaluate_worker(data, gold, w, confidence)
                    .ok()
                    .map(|ci| (w, ci))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{BinaryScenario, rng};

    #[test]
    fn covers_truth_at_nominal_rate() {
        let scenario = BinaryScenario::paper_default(5, 200, 1.0);
        let baseline = GoldBaseline::default();
        let mut r = rng(131);
        let mut covered = 0;
        let mut total = 0;
        for _ in 0..150 {
            let inst = scenario.generate(&mut r);
            for (w, ci) in baseline.evaluate_all(inst.responses(), inst.gold(), 0.9) {
                total += 1;
                if ci.contains(inst.true_error_rate(w)) {
                    covered += 1;
                }
            }
        }
        let coverage = covered as f64 / total as f64;
        assert!(
            (coverage - 0.9).abs() < 0.04,
            "gold-baseline coverage {coverage}"
        );
    }

    #[test]
    fn wilson_and_wald_agree_in_bulk() {
        let inst = BinaryScenario::paper_default(3, 500, 1.0).generate(&mut rng(137));
        let wilson = GoldBaseline {
            method: ProportionMethod::Wilson,
        }
        .evaluate_worker(inst.responses(), inst.gold(), WorkerId(0), 0.9)
        .unwrap();
        let wald = GoldBaseline {
            method: ProportionMethod::Wald,
        }
        .evaluate_worker(inst.responses(), inst.gold(), WorkerId(0), 0.9)
        .unwrap();
        assert!((wilson.center - wald.center).abs() < 0.01);
        assert!((wilson.size() - wald.size()).abs() < 0.01);
    }

    #[test]
    fn no_gold_tasks_is_an_error() {
        let inst = BinaryScenario::paper_default(3, 10, 1.0).generate(&mut rng(139));
        let empty_gold = GoldStandard::partial(10, []);
        assert!(
            GoldBaseline::default()
                .evaluate_worker(inst.responses(), &empty_gold, WorkerId(0), 0.9)
                .is_err()
        );
    }
}
