//! The reproduced "old technique" of reference [2] (Joglekar et al.,
//! KDD 2013) — the baseline of Figure 1.
//!
//! For worker `i` on **regular binary** data, the remaining workers are
//! split into two disjoint sets, each collapsed into a *super-worker*
//! whose response is the set's majority vote. The triangle equations
//! then yield `p_i` from the three pairwise agreement rates, exactly as
//! in the new technique — the difference is the interval construction:
//!
//! * each agreement rate gets an individual Wilson interval at the
//!   Bonferroni-elevated level `c' = 1 − (1−c)/3`, and
//! * the interval for `p_i` is the worst-case (min/max over the corner
//!   points of the `q`-box) propagation through the inversion `f`.
//!
//! Union bound + worst-case propagation are *valid* but conservative —
//! the paper reports the new delta-method intervals are up to 40%
//! tighter, which this reproduction preserves.
//!
//! The super-worker construction is the reason the old technique
//! cannot handle non-regular data: a super-worker only has a
//! well-defined error rate if its constituent workers answer the same
//! tasks (§III-C discusses exactly this limitation). Accordingly
//! [`OldTechnique::evaluate_worker`] rejects non-regular input.

use crate::agreement::Triangle;
use crate::{DegeneracyPolicy, EstimateError, EstimatorConfig, Result};
use crowd_data::{Label, ResponseMatrix, TaskId, WorkerId};
use crowd_stats::{ConfidenceInterval, wilson_interval};

/// The KDD'13 baseline estimator.
#[derive(Debug, Clone, Default)]
pub struct OldTechnique {
    config: EstimatorConfig,
}

impl OldTechnique {
    /// Creates the baseline with the given configuration (only the
    /// degeneracy policy is consulted).
    pub fn new(config: EstimatorConfig) -> Self {
        Self { config }
    }

    /// Conservative confidence interval for one worker's error rate.
    ///
    /// Requires regular data and at least 3 workers.
    pub fn evaluate_worker(
        &self,
        data: &ResponseMatrix,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<ConfidenceInterval> {
        if !data.is_regular() {
            return Err(EstimateError::RequiresRegularData);
        }
        if data.n_workers() < 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: data.n_workers(),
                need: 3,
            });
        }
        if data.arity() != 2 {
            return Err(EstimateError::Numerical(
                "the old technique is defined for binary tasks only".into(),
            ));
        }
        let n = data.n_tasks();

        // Split the other workers into two balanced sets (alternating).
        let others: Vec<WorkerId> = data.workers().filter(|&w| w != worker).collect();
        let (set_a, set_b): (Vec<_>, Vec<_>) =
            others.iter().enumerate().partition(|(idx, _)| idx % 2 == 0);
        let set_a: Vec<WorkerId> = set_a.into_iter().map(|(_, &w)| w).collect();
        let set_b: Vec<WorkerId> = set_b.into_iter().map(|(_, &w)| w).collect();

        // Super-worker responses = within-set majority per task.
        let responses_a = super_worker_responses(data, &set_a);
        let responses_b = super_worker_responses(data, &set_b);
        let responses_i: Vec<Label> = (0..n)
            .map(|t| {
                data.response(worker, TaskId(t as u32))
                    .expect("regular data has all responses")
            })
            .collect();

        // Pairwise agreement counts.
        let count_agree =
            |x: &[Label], y: &[Label]| x.iter().zip(y).filter(|(a, b)| a == b).count();
        let agree_ia = count_agree(&responses_i, &responses_a);
        let agree_ib = count_agree(&responses_i, &responses_b);
        let agree_ab = count_agree(&responses_a, &responses_b);

        // Bonferroni-elevated per-rate intervals.
        let c_each = 1.0 - (1.0 - confidence) / 3.0;
        let box_ia = wilson_interval(agree_ia as u64, n as u64, c_each)?;
        let box_ib = wilson_interval(agree_ib as u64, n as u64, c_each)?;
        let box_ab = wilson_interval(agree_ab as u64, n as u64, c_each)?;

        // Worst-case propagation through the inversion over the box
        // corners.
        let epsilon = match self.config.degeneracy {
            DegeneracyPolicy::Clamp { epsilon } => epsilon,
            DegeneracyPolicy::Error => 1e-6,
        };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &q_ij in &[box_ia.lo(), box_ia.hi()] {
            for &q_ik in &[box_ib.lo(), box_ib.hi()] {
                for &q_jk in &[box_ab.lo(), box_ab.hi()] {
                    let t = Triangle { q_ij, q_ik, q_jk }
                        .regularized(DegeneracyPolicy::Clamp { epsilon })
                        .expect("clamp policy cannot fail");
                    let p = t.error_rate();
                    if p.is_finite() {
                        lo = lo.min(p);
                        hi = hi.max(p);
                    }
                }
            }
        }
        if !(lo.is_finite() && hi.is_finite()) {
            return Err(EstimateError::Degenerate {
                what: "all corner evaluations of the q-box were invalid".into(),
            });
        }
        // Error rates live in [0, 1].
        Ok(ConfidenceInterval::from_bounds(
            lo.max(0.0),
            hi.min(1.0).max(lo.max(0.0)),
            confidence,
        ))
    }

    /// Evaluates every worker; failures abort (the baseline is only
    /// run on clean regular synthetic data).
    pub fn evaluate_all(
        &self,
        data: &ResponseMatrix,
        confidence: f64,
    ) -> Result<Vec<(WorkerId, ConfidenceInterval)>> {
        data.workers()
            .map(|w| Ok((w, self.evaluate_worker(data, w, confidence)?)))
            .collect()
    }
}

/// Majority response of a set of workers per task (ties resolve to the
/// smallest label, deterministic; with an odd set size binary ties are
/// impossible).
fn super_worker_responses(data: &ResponseMatrix, set: &[WorkerId]) -> Vec<Label> {
    let n = data.n_tasks();
    (0..n)
        .map(|t| {
            let mut counts = [0usize; 2];
            for &w in set {
                let l = data
                    .response(w, TaskId(t as u32))
                    .expect("regular data has all responses");
                counts[l.index()] += 1;
            }
            if counts[1] > counts[0] {
                Label(1)
            } else {
                Label(0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MWorkerEstimator;
    use crowd_sim::{BinaryScenario, rng};

    #[test]
    fn produces_valid_conservative_intervals() {
        let scenario = BinaryScenario::paper_default(3, 100, 1.0);
        let old = OldTechnique::default();
        let mut r = rng(73);
        let mut covered = 0;
        let mut total = 0;
        for _ in 0..100 {
            let inst = scenario.generate(&mut r);
            for (w, ci) in old.evaluate_all(inst.responses(), 0.8).unwrap() {
                total += 1;
                if ci.contains(inst.true_error_rate(w)) {
                    covered += 1;
                }
            }
        }
        let coverage = covered as f64 / total as f64;
        // Conservative: coverage must be at least the nominal level.
        assert!(
            coverage >= 0.8,
            "old-technique coverage {coverage} below nominal"
        );
    }

    #[test]
    fn wider_than_the_new_technique() {
        // The headline Figure 1 comparison: at m=3, n=100, c=0.5 the
        // old intervals are distinctly wider.
        let scenario = BinaryScenario::paper_default(3, 100, 1.0);
        let old = OldTechnique::default();
        let new = MWorkerEstimator::new(EstimatorConfig::default());
        let mut r = rng(79);
        let mut old_size = 0.0;
        let mut new_size = 0.0;
        let mut valid = 0usize;
        for _ in 0..50 {
            let inst = scenario.generate(&mut r);
            // The paper notes both techniques fail with minuscule
            // probability (square root of a negative); skip such reps.
            let report = new.evaluate_all(inst.responses(), 0.5).unwrap();
            if report.assessments.len() < 3 {
                continue;
            }
            let Ok(old_cis) = old.evaluate_all(inst.responses(), 0.5) else {
                continue;
            };
            valid += 1;
            old_size += old_cis.iter().map(|(_, ci)| ci.size()).sum::<f64>() / 3.0;
            new_size += report.mean_interval_size();
        }
        assert!(valid >= 30, "too many degenerate reps: {valid}");
        assert!(
            new_size < old_size * 0.8,
            "new technique should be ≥20% tighter over {valid} reps: new {new_size} vs old {old_size}"
        );
    }

    #[test]
    fn rejects_nonregular_data() {
        let inst = BinaryScenario::paper_default(5, 50, 0.8).generate(&mut rng(83));
        assert!(matches!(
            OldTechnique::default().evaluate_worker(inst.responses(), WorkerId(0), 0.8),
            Err(EstimateError::RequiresRegularData)
        ));
    }

    #[test]
    fn rejects_too_few_workers() {
        let inst = BinaryScenario::paper_default(2, 50, 1.0).generate(&mut rng(89));
        assert!(matches!(
            OldTechnique::default().evaluate_worker(inst.responses(), WorkerId(0), 0.8),
            Err(EstimateError::NotEnoughWorkers { .. })
        ));
    }

    #[test]
    fn super_worker_majority_is_correct() {
        use crowd_data::ResponseMatrixBuilder;
        let mut b = ResponseMatrixBuilder::new(3, 2, 2);
        // Task 0: votes 1,1,0 → majority 1. Task 1: 0,0,1 → majority 0.
        b.push(WorkerId(0), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(2), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(0), TaskId(1), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(0)).unwrap();
        b.push(WorkerId(2), TaskId(1), Label(1)).unwrap();
        let data = b.build().unwrap();
        let resp = super_worker_responses(&data, &[WorkerId(0), WorkerId(1), WorkerId(2)]);
        assert_eq!(resp, vec![Label(1), Label(0)]);
    }

    #[test]
    fn seven_workers_supported() {
        let inst = BinaryScenario::paper_default(7, 100, 1.0).generate(&mut rng(97));
        let cis = OldTechnique::default()
            .evaluate_all(inst.responses(), 0.8)
            .unwrap();
        assert_eq!(cis.len(), 7);
        for (_, ci) in cis {
            assert!(ci.size() > 0.0);
            assert!(ci.lo() >= 0.0 && ci.hi() <= 1.0);
        }
    }
}
