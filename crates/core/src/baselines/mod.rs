//! Baselines the paper evaluates against.
//!
//! * [`old_technique`] — the authors' earlier KDD'13 method
//!   ("Evaluating the crowd with confidence"): super-worker majority
//!   grouping with conservative interval propagation. The "old
//!   technique" curves of Figure 1.
//! * [`dawid_skene`] — EM point estimation of worker abilities
//!   (Dawid & Skene 1979), the classical no-intervals comparator the
//!   related-work section discusses.
//! * [`gold`] — classical binomial intervals when gold-standard labels
//!   *are* available, the technique the introduction starts from.

pub mod dawid_skene;
pub mod gold;
pub mod old_technique;

pub use dawid_skene::{DawidSkene, DawidSkeneResult};
pub use gold::{GoldBaseline, ProportionMethod};
pub use old_technique::OldTechnique;
