//! Answer aggregation using estimated worker abilities.
//!
//! The paper's closing claim is that reliable worker evaluation
//! "yield[s] improved quality crowdsourced results": once error rates
//! are known, the Bayes-optimal combination of binary votes weighs
//! each worker by the log-odds of being correct,
//! `w_i = ln((1 − p_i)/p_i)`, instead of counting votes equally.
//!
//! This module closes that loop. It aggregates task answers with
//! * plain majority vote (the baseline),
//! * log-odds weighting by point estimates,
//! * log-odds weighting by a *pessimistic* interval bound — workers
//!   whose ability is uncertain get discounted toward weight 0, which
//!   is exactly what the confidence intervals buy over point
//!   estimates,
//! * full-posterior **MAP aggregation** for k-ary tasks
//!   ([`MapAggregator`]): with estimated response-probability matrices
//!   `P̂_i` and selectivity prior `Ŝ`, the Bayes-optimal answer is
//!   `argmax_t Ŝ_t · Π_i P̂_i[t, r_i]` — it exploits *bias structure*
//!   (e.g. a worker who confuses labels 1 and 2 but never 0) that
//!   scalar error rates cannot represent.

use crate::kary::KaryWorkerReport;
use crate::{EstimateError, Result, WorkerReport};
use crowd_data::{Label, ResponseMatrix, TaskId};
use crowd_linalg::Matrix;

/// How worker ability feeds the vote weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightingRule {
    /// Every vote counts 1 (majority baseline).
    Uniform,
    /// `ln((1−p̂)/p̂)` with the interval center as `p̂`.
    #[default]
    PointLogOdds,
    /// `ln((1−p̃)/p̃)` with the *upper* interval bound as `p̃`:
    /// a worker is only trusted to the extent the data has proven it.
    PessimisticLogOdds,
}

/// Aggregated answer for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregatedAnswer {
    /// The winning label.
    pub label: Label,
    /// Total weight for the winner minus the runner-up; 0 means a tie.
    pub margin: f64,
}

/// Aggregates k-ary answers from a response matrix and a worker report.
#[derive(Debug, Clone)]
pub struct AnswerAggregator {
    rule: WeightingRule,
    /// Per-worker weight; workers without an assessment get the prior
    /// weight of an unevaluated worker (0 under log-odds rules, 1
    /// under uniform).
    weights: Vec<f64>,
}

impl AnswerAggregator {
    /// Builds the aggregator from an evaluation report.
    pub fn from_report(data: &ResponseMatrix, report: &WorkerReport, rule: WeightingRule) -> Self {
        let mut weights = vec![default_weight(rule); data.n_workers()];
        for a in &report.assessments {
            let p = match rule {
                WeightingRule::Uniform => {
                    weights[a.worker.index()] = 1.0;
                    continue;
                }
                WeightingRule::PointLogOdds => a.interval.center,
                WeightingRule::PessimisticLogOdds => a.interval.hi(),
            };
            weights[a.worker.index()] = log_odds_weight(p);
        }
        Self { rule, weights }
    }

    /// The rule in force.
    pub fn rule(&self) -> WeightingRule {
        self.rule
    }

    /// The weight assigned to one worker.
    pub fn weight(&self, worker: crowd_data::WorkerId) -> f64 {
        self.weights[worker.index()]
    }

    /// Aggregates one task; errors if nobody answered it.
    pub fn aggregate(&self, data: &ResponseMatrix, task: TaskId) -> Result<AggregatedAnswer> {
        let responses = data.task_responses(task);
        if responses.is_empty() {
            return Err(EstimateError::Degenerate {
                what: format!("task {task:?} has no responses"),
            });
        }
        let k = data.arity() as usize;
        let mut tally = vec![0.0f64; k];
        for &(w, label) in responses {
            tally[label.index()] += self.weights[w as usize];
        }
        let (best, best_w) = tally
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .expect("k >= 2");
        let runner_up = tally
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != best)
            .map(|(_, &w)| w)
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(AggregatedAnswer {
            label: Label(best as u16),
            margin: best_w - runner_up,
        })
    }

    /// Aggregates every answered task, returning `(task, answer)`.
    pub fn aggregate_all(&self, data: &ResponseMatrix) -> Vec<(TaskId, AggregatedAnswer)> {
        data.tasks()
            .filter_map(|t| self.aggregate(data, t).ok().map(|a| (t, a)))
            .collect()
    }
}

/// Bayes/MAP answer aggregation for k-ary tasks from estimated
/// response-probability matrices.
///
/// The posterior over the true label of a task with responses
/// `{r_i}` is `P(t | r) ∝ S_t · Π_i P_i[t, r_i]`; workers without an
/// estimate are skipped (they contribute no likelihood). Computation
/// is in log space, with probabilities floored at `1e-6` so a single
/// zero entry cannot veto a label outright.
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, KaryMWorkerEstimator, MapAggregator};
/// use crowd_sim::KaryScenario;
///
/// let instance = KaryScenario::paper_default(3, 400, 1.0)
///     .with_workers(5)
///     .generate(&mut crowd_sim::rng(3));
///
/// // Estimate every worker's confusion matrix, then infer answers.
/// let report = KaryMWorkerEstimator::new(EstimatorConfig::default())
///     .evaluate_all(instance.responses(), 0.9)?;
/// let aggregator = MapAggregator::from_kary_report(instance.responses(), &report);
/// let answers = aggregator.aggregate_all(instance.responses());
///
/// let correct = answers
///     .iter()
///     .filter(|(t, a)| instance.gold().label(*t) == Some(a.label))
///     .count();
/// assert!(correct as f64 / answers.len() as f64 > 0.8);
/// # Ok::<(), crowd_core::EstimateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MapAggregator {
    /// Estimated response-probability matrix per worker; `None` for
    /// unevaluated workers.
    confusions: Vec<Option<Matrix>>,
    /// Prior over true labels (sums to 1).
    prior: Vec<f64>,
}

impl MapAggregator {
    /// Floor applied to likelihood factors (an estimated zero is
    /// usually sampling, not impossibility).
    const FLOOR: f64 = 1e-6;

    /// Builds the aggregator from an m-worker k-ary report, using the
    /// mean of the per-worker selectivity estimates as the prior.
    pub fn from_kary_report(data: &ResponseMatrix, report: &KaryWorkerReport) -> Self {
        let k = data.arity() as usize;
        let mut confusions: Vec<Option<Matrix>> = vec![None; data.n_workers()];
        let mut prior = vec![0.0; k];
        for a in &report.assessments {
            confusions[a.worker.index()] = Some(a.response_prob.clone());
            for (acc, s) in prior.iter_mut().zip(&a.selectivity) {
                *acc += s;
            }
        }
        let total: f64 = prior.iter().sum();
        if total > 0.0 {
            for p in prior.iter_mut() {
                *p /= total;
            }
        } else {
            prior = vec![1.0 / k as f64; k];
        }
        Self { confusions, prior }
    }

    /// Builds the aggregator from explicit matrices (e.g. the true
    /// models in a simulation, or externally calibrated workers).
    pub fn from_matrices(confusions: Vec<Option<Matrix>>, prior: Vec<f64>) -> Self {
        Self { confusions, prior }
    }

    /// Overrides the label prior.
    pub fn with_prior(mut self, prior: Vec<f64>) -> Self {
        assert_eq!(prior.len(), self.prior.len(), "prior arity mismatch");
        self.prior = prior;
        self
    }

    /// The posterior distribution over true labels for one task.
    /// Errors if no *evaluated* worker answered it.
    pub fn posterior(&self, data: &ResponseMatrix, task: TaskId) -> Result<Vec<f64>> {
        let k = data.arity() as usize;
        let mut log_post: Vec<f64> = self
            .prior
            .iter()
            .map(|&s| s.max(Self::FLOOR).ln())
            .collect();
        let mut informed = false;
        for &(w, label) in data.task_responses(task) {
            let Some(p) = &self.confusions[w as usize] else {
                continue;
            };
            informed = true;
            for (t, lp) in log_post.iter_mut().enumerate() {
                *lp += p.get(t, label.index()).max(Self::FLOOR).ln();
            }
        }
        if !informed {
            return Err(EstimateError::Degenerate {
                what: format!("task {task:?} has no responses from evaluated workers"),
            });
        }
        // Normalize in log space against overflow.
        let max = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut post: Vec<f64> = log_post.iter().map(|lp| (lp - max).exp()).collect();
        let z: f64 = post.iter().sum();
        for p in post.iter_mut() {
            *p /= z;
        }
        debug_assert_eq!(post.len(), k);
        Ok(post)
    }

    /// MAP answer for one task; the margin is the posterior gap
    /// between the winner and the runner-up.
    pub fn aggregate(&self, data: &ResponseMatrix, task: TaskId) -> Result<AggregatedAnswer> {
        let post = self.posterior(data, task)?;
        let (best, best_p) = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("normalized posterior"))
            .expect("arity >= 2");
        let runner_up = post
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != best)
            .map(|(_, &p)| p)
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(AggregatedAnswer {
            label: Label(best as u16),
            margin: best_p - runner_up,
        })
    }

    /// Aggregates every task answered by at least one evaluated
    /// worker, returning `(task, answer)`.
    pub fn aggregate_all(&self, data: &ResponseMatrix) -> Vec<(TaskId, AggregatedAnswer)> {
        data.tasks()
            .filter_map(|t| self.aggregate(data, t).ok().map(|a| (t, a)))
            .collect()
    }
}

fn default_weight(rule: WeightingRule) -> f64 {
    match rule {
        WeightingRule::Uniform => 1.0,
        // No evidence about the worker: no say in the outcome beyond
        // tie-breaking.
        WeightingRule::PointLogOdds | WeightingRule::PessimisticLogOdds => 0.0,
    }
}

/// Bayes log-odds weight for error rate `p`, clamped to keep perfect
/// and anti-perfect workers finite.
fn log_odds_weight(p: f64) -> f64 {
    let p = p.clamp(1e-3, 1.0 - 1e-3);
    ((1.0 - p) / p).ln().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EstimatorConfig, MWorkerEstimator};
    use crowd_data::{GoldStandard, WorkerId};
    use crowd_sim::{BinaryScenario, rng};

    fn accuracy(answers: &[(TaskId, AggregatedAnswer)], gold: &GoldStandard) -> f64 {
        let correct = answers
            .iter()
            .filter(|(t, a)| gold.label(*t) == Some(a.label))
            .count();
        correct as f64 / answers.len() as f64
    }

    #[test]
    fn log_odds_weights_are_monotone_in_ability() {
        assert!(log_odds_weight(0.05) > log_odds_weight(0.2));
        assert!(log_odds_weight(0.2) > log_odds_weight(0.4));
        // A spammer gets (almost) no say; a malicious worker is not
        // trusted negatively (clamped at zero).
        assert!(log_odds_weight(0.5) < 1e-9);
        assert_eq!(log_odds_weight(0.9), 0.0);
        // Finite even at the extremes.
        assert!(log_odds_weight(0.0).is_finite());
    }

    #[test]
    fn weighted_vote_beats_majority_with_spammers() {
        // A crowd where almost half the workers are spammers: majority
        // suffers, ability weighting shrugs it off.
        let mut scenario = BinaryScenario::paper_default(11, 400, 0.9);
        scenario.error_pool = vec![0.05, 0.1];
        scenario.spammer_fraction = 0.45;
        let mut r = rng(301);
        let mut wins = 0;
        let mut reps = 0;
        for _ in 0..10 {
            let inst = scenario.generate(&mut r);
            let report = MWorkerEstimator::new(EstimatorConfig::clamping())
                .evaluate_all(inst.responses(), 0.9)
                .unwrap();
            let majority =
                AnswerAggregator::from_report(inst.responses(), &report, WeightingRule::Uniform);
            let weighted = AnswerAggregator::from_report(
                inst.responses(),
                &report,
                WeightingRule::PointLogOdds,
            );
            let acc_major = accuracy(&majority.aggregate_all(inst.responses()), inst.gold());
            let acc_weight = accuracy(&weighted.aggregate_all(inst.responses()), inst.gold());
            reps += 1;
            if acc_weight >= acc_major {
                wins += 1;
            }
        }
        assert!(
            wins * 10 >= reps * 8,
            "weighted voting should (weakly) beat majority in ≥80% of runs: {wins}/{reps}"
        );
    }

    #[test]
    fn pessimistic_weighting_discounts_thin_evidence() {
        // Two equally good workers, one with far fewer tasks: the
        // pessimistic rule trusts the proven one more.
        use crowd_data::{ResponseMatrixBuilder, TaskId};
        use crowd_sim::AttemptDesign;
        let mut scenario = BinaryScenario::paper_default(5, 300, 1.0);
        scenario.error_pool = vec![0.1];
        scenario.design = AttemptDesign::PerWorkerDensity(vec![1.0, 1.0, 1.0, 1.0, 0.08]);
        let inst = scenario.generate(&mut rng(305));
        let report = MWorkerEstimator::new(EstimatorConfig::clamping())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let agg = AnswerAggregator::from_report(
            inst.responses(),
            &report,
            WeightingRule::PessimisticLogOdds,
        );
        if report.get(WorkerId(4)).is_some() {
            assert!(
                agg.weight(WorkerId(0)) > agg.weight(WorkerId(4)),
                "proven worker should out-weigh the thin-evidence one: {} vs {}",
                agg.weight(WorkerId(0)),
                agg.weight(WorkerId(4))
            );
        }
        // Unused builder import silencer for the cfg(test) scope.
        let _ = ResponseMatrixBuilder::new(1, 1, 2);
        let _ = TaskId(0);
    }

    #[test]
    fn map_posterior_is_a_distribution() {
        use crate::{EstimatorConfig, KaryMWorkerEstimator};
        use crowd_sim::KaryScenario;
        let inst = KaryScenario::paper_default(3, 300, 1.0)
            .with_workers(5)
            .generate(&mut rng(311));
        let report = KaryMWorkerEstimator::new(EstimatorConfig::default())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let agg = MapAggregator::from_kary_report(inst.responses(), &report);
        for t in 0..10u32 {
            let post = agg.posterior(inst.responses(), TaskId(t)).unwrap();
            assert_eq!(post.len(), 3);
            assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(post.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn map_with_true_matrices_beats_majority_on_biased_crowds() {
        // Workers that systematically confuse labels 1 and 2 (but
        // never 0): majority is fooled in the 1↔2 region, MAP with the
        // confusion structure is not.
        use crowd_linalg::Matrix;
        use crowd_sim::KaryScenario;
        let biased = Matrix::from_rows(&[
            &[0.95, 0.03, 0.02],
            &[0.05, 0.50, 0.45],
            &[0.05, 0.40, 0.55],
        ]);
        let mut scenario = KaryScenario::paper_default(3, 600, 1.0).with_workers(5);
        scenario.matrix_pool = vec![biased.clone()];
        let mut r = rng(313);
        let mut map_acc = 0.0;
        let mut maj_acc = 0.0;
        let reps = 6;
        for _ in 0..reps {
            let inst = scenario.generate(&mut r);
            let confusions = (0..5)
                .map(|w| Some(inst.true_confusion(WorkerId(w))))
                .collect::<Vec<_>>();
            let agg = MapAggregator::from_matrices(confusions, vec![1.0 / 3.0; 3]);
            let answers = agg.aggregate_all(inst.responses());
            map_acc += accuracy(&answers, inst.gold());
            let majority = AnswerAggregator::from_report(
                inst.responses(),
                &WorkerReport::default(),
                WeightingRule::Uniform,
            );
            maj_acc += accuracy(&majority.aggregate_all(inst.responses()), inst.gold());
        }
        assert!(
            map_acc > maj_acc,
            "MAP with confusion structure should beat majority: {:.3} vs {:.3}",
            map_acc / reps as f64,
            maj_acc / reps as f64
        );
    }

    #[test]
    fn map_with_estimated_matrices_tracks_true_matrix_performance() {
        use crate::{EstimatorConfig, KaryMWorkerEstimator};
        use crowd_sim::KaryScenario;
        let scenario = KaryScenario::paper_default(3, 500, 1.0).with_workers(5);
        let mut r = rng(317);
        let inst = scenario.generate(&mut r);
        let report = KaryMWorkerEstimator::new(EstimatorConfig::default())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let estimated = MapAggregator::from_kary_report(inst.responses(), &report);
        let oracle = MapAggregator::from_matrices(
            (0..5)
                .map(|w| Some(inst.true_confusion(WorkerId(w))))
                .collect(),
            inst.selectivity().to_vec(),
        );
        let est_acc = accuracy(&estimated.aggregate_all(inst.responses()), inst.gold());
        let oracle_acc = accuracy(&oracle.aggregate_all(inst.responses()), inst.gold());
        assert!(
            est_acc > oracle_acc - 0.05,
            "estimated-matrix MAP should be within 5pp of the oracle: {est_acc:.3} vs \
             {oracle_acc:.3}"
        );
    }

    #[test]
    fn map_ignores_unevaluated_workers_and_errors_without_evidence() {
        use crowd_data::ResponseMatrixBuilder;
        let mut b = ResponseMatrixBuilder::new(2, 2, 2);
        b.push(WorkerId(0), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(0)).unwrap();
        let data = b.build().unwrap();
        // Only worker 0 has an estimate.
        let p = crowd_linalg::Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
        let agg = MapAggregator::from_matrices(vec![Some(p), None], vec![0.5, 0.5]);
        let ans = agg.aggregate(&data, TaskId(0)).unwrap();
        assert_eq!(ans.label, Label(1));
        // Task 1 was answered only by the unevaluated worker.
        assert!(agg.aggregate(&data, TaskId(1)).is_err());
        // aggregate_all silently skips it.
        assert_eq!(agg.aggregate_all(&data).len(), 1);
    }

    #[test]
    fn map_prior_shifts_ambiguous_posteriors() {
        use crowd_data::ResponseMatrixBuilder;
        // One worker whose row for truth 0 and 1 are mirror images: a
        // single response is ambiguous, so the prior decides.
        let mut b = ResponseMatrixBuilder::new(1, 1, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        let data = b.build().unwrap();
        let p = crowd_linalg::Matrix::from_rows(&[&[0.6, 0.4], &[0.4, 0.6]]);
        let skewed = MapAggregator::from_matrices(vec![Some(p.clone())], vec![0.5, 0.5])
            .with_prior(vec![0.1, 0.9]);
        let ans = skewed.aggregate(&data, TaskId(0)).unwrap();
        assert_eq!(
            ans.label,
            Label(1),
            "a strong prior should override a weak response"
        );
        let uniform = MapAggregator::from_matrices(vec![Some(p)], vec![0.5, 0.5]);
        assert_eq!(uniform.aggregate(&data, TaskId(0)).unwrap().label, Label(0));
    }

    #[test]
    fn unanswered_task_is_an_error_and_margin_is_sane() {
        use crowd_data::{Label, ResponseMatrixBuilder};
        let mut b = ResponseMatrixBuilder::new(2, 2, 2);
        b.push(WorkerId(0), TaskId(0), Label(1)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(1)).unwrap();
        let data = b.build().unwrap();
        let agg =
            AnswerAggregator::from_report(&data, &WorkerReport::default(), WeightingRule::Uniform);
        let ans = agg.aggregate(&data, TaskId(0)).unwrap();
        assert_eq!(ans.label, Label(1));
        assert!((ans.margin - 2.0).abs() < 1e-12);
        assert!(agg.aggregate(&data, TaskId(1)).is_err());
        assert_eq!(agg.rule(), WeightingRule::Uniform);
    }
}
