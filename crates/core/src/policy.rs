//! Interval-based worker retention policies.
//!
//! The paper's introduction motivates confidence intervals with the
//! hiring problem: "if we're going to fire a worker for having a high
//! estimated error rate, then it is important to be sufficiently
//! confident that the worker has low ability because firing many good
//! workers can lead to a bad reputation". This module operationalizes
//! that: a [`RetentionPolicy`] turns a [`WorkerReport`] into
//! fire / retain / undecided decisions using the interval **bounds**,
//! and the simulation helpers quantify how many good workers a naive
//! point-estimate policy burns in comparison.

use crate::{WorkerAssessment, WorkerReport};
use crowd_data::WorkerId;

/// A decision about one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Error rate credibly above the threshold: let the worker go.
    Fire,
    /// Error rate credibly below the threshold: keep the worker.
    Retain,
    /// The interval straddles the threshold: gather more evidence.
    Undecided,
}

/// How the error-rate estimate is compared against the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionRule {
    /// Fire when the interval's *lower* bound exceeds the threshold,
    /// retain when the *upper* bound is below it (the reliable policy
    /// the paper argues for; default).
    #[default]
    IntervalBounds,
    /// Fire/retain by comparing the point estimate only — the naive
    /// baseline that burns unlucky good workers.
    PointEstimate,
}

/// A worker retention policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionPolicy {
    /// Maximum tolerable error rate.
    pub fire_threshold: f64,
    /// Decision rule.
    pub rule: DecisionRule,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        Self {
            fire_threshold: 0.25,
            rule: DecisionRule::IntervalBounds,
        }
    }
}

impl RetentionPolicy {
    /// Decides one worker.
    pub fn decide(&self, assessment: &WorkerAssessment) -> Decision {
        match self.rule {
            DecisionRule::IntervalBounds => {
                if assessment.interval.lo() > self.fire_threshold {
                    Decision::Fire
                } else if assessment.interval.hi() < self.fire_threshold {
                    Decision::Retain
                } else {
                    Decision::Undecided
                }
            }
            DecisionRule::PointEstimate => {
                if assessment.interval.center > self.fire_threshold {
                    Decision::Fire
                } else {
                    Decision::Retain
                }
            }
        }
    }

    /// Decides every assessed worker.
    pub fn decide_all(&self, report: &WorkerReport) -> Vec<(WorkerId, Decision)> {
        report
            .assessments
            .iter()
            .map(|a| (a.worker, self.decide(a)))
            .collect()
    }

    /// Scores the decisions against known true error rates: returns
    /// the confusion between decisions and ground truth.
    pub fn score(&self, report: &WorkerReport, true_rate: impl Fn(WorkerId) -> f64) -> PolicyScore {
        let mut score = PolicyScore::default();
        for a in &report.assessments {
            let truly_bad = true_rate(a.worker) > self.fire_threshold;
            match (self.decide(a), truly_bad) {
                (Decision::Fire, true) => score.fired_bad += 1,
                (Decision::Fire, false) => score.fired_good += 1,
                (Decision::Retain, true) => score.kept_bad += 1,
                (Decision::Retain, false) => score.kept_good += 1,
                (Decision::Undecided, true) => score.undecided_bad += 1,
                (Decision::Undecided, false) => score.undecided_good += 1,
            }
        }
        score
    }
}

/// Decision-vs-truth tallies for a policy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyScore {
    /// Truly bad workers fired (the goal).
    pub fired_bad: usize,
    /// Good workers wrongly fired (the reputational cost the paper
    /// warns about).
    pub fired_good: usize,
    /// Bad workers wrongly kept.
    pub kept_bad: usize,
    /// Good workers kept.
    pub kept_good: usize,
    /// Bad workers awaiting more evidence.
    pub undecided_bad: usize,
    /// Good workers awaiting more evidence.
    pub undecided_good: usize,
}

impl PolicyScore {
    /// Fraction of firings that hit good workers; `None` if nobody was
    /// fired.
    pub fn wrongful_firing_rate(&self) -> Option<f64> {
        let fired = self.fired_bad + self.fired_good;
        if fired == 0 {
            None
        } else {
            Some(self.fired_good as f64 / fired as f64)
        }
    }

    /// Merges another score into this one.
    pub fn merge(&mut self, other: PolicyScore) {
        self.fired_bad += other.fired_bad;
        self.fired_good += other.fired_good;
        self.kept_bad += other.kept_bad;
        self.kept_good += other.kept_good;
        self.undecided_bad += other.undecided_bad;
        self.undecided_good += other.undecided_good;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EstimatorConfig, MWorkerEstimator};
    use crowd_sim::{BinaryScenario, rng};
    use crowd_stats::ConfidenceInterval;

    fn assessment(center: f64, half: f64) -> WorkerAssessment {
        WorkerAssessment {
            worker: WorkerId(0),
            interval: ConfidenceInterval {
                center,
                half_width: half,
                confidence: 0.9,
            },
            triples_used: 1,
            weights_fell_back: false,
        }
    }

    #[test]
    fn interval_rule_three_outcomes() {
        let policy = RetentionPolicy::default(); // threshold 0.25
        assert_eq!(policy.decide(&assessment(0.4, 0.1)), Decision::Fire); // lo = 0.3
        assert_eq!(policy.decide(&assessment(0.1, 0.1)), Decision::Retain); // hi = 0.2
        assert_eq!(policy.decide(&assessment(0.3, 0.1)), Decision::Undecided); // straddles
    }

    #[test]
    fn point_rule_never_abstains() {
        let policy = RetentionPolicy {
            fire_threshold: 0.25,
            rule: DecisionRule::PointEstimate,
        };
        assert_eq!(policy.decide(&assessment(0.3, 0.2)), Decision::Fire);
        assert_eq!(policy.decide(&assessment(0.2, 0.2)), Decision::Retain);
    }

    #[test]
    fn interval_policy_fires_fewer_good_workers() {
        // Pool with clearly-good, borderline and clearly-bad workers:
        // the naive rule misfires on the borderline ones, the interval
        // rule abstains on them but still catches the clearly bad.
        let mut scenario = BinaryScenario::paper_default(9, 150, 0.7);
        scenario.error_pool = vec![0.1, 0.2, 0.4];
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let mut r = rng(311);
        let mut naive = PolicyScore::default();
        let mut reliable = PolicyScore::default();
        for _ in 0..40 {
            let inst = scenario.generate(&mut r);
            let Ok(report) = est.evaluate_all(inst.responses(), 0.9) else {
                continue;
            };
            let truth = |w: WorkerId| inst.true_error_rate(w);
            naive.merge(
                RetentionPolicy {
                    fire_threshold: 0.25,
                    rule: DecisionRule::PointEstimate,
                }
                .score(&report, truth),
            );
            reliable.merge(
                RetentionPolicy {
                    fire_threshold: 0.25,
                    rule: DecisionRule::IntervalBounds,
                }
                .score(&report, truth),
            );
        }
        assert!(
            reliable.fired_good < naive.fired_good,
            "interval policy should fire fewer good workers: {} vs {}",
            reliable.fired_good,
            naive.fired_good
        );
        // And it should still catch some truly bad workers.
        assert!(
            reliable.fired_bad > 0,
            "interval policy must still fire bad workers"
        );
    }

    #[test]
    fn scores_tally_and_merge() {
        let report = WorkerReport {
            assessments: vec![assessment(0.4, 0.05)],
            failures: vec![],
        };
        let policy = RetentionPolicy::default();
        let mut s = policy.score(&report, |_| 0.4);
        assert_eq!(s.fired_bad, 1);
        assert_eq!(s.wrongful_firing_rate(), Some(0.0));
        s.merge(policy.score(&report, |_| 0.1));
        assert_eq!(s.fired_good, 1);
        assert_eq!(s.wrongful_firing_rate(), Some(0.5));
        assert_eq!(PolicyScore::default().wrongful_firing_rate(), None);
    }

    #[test]
    fn decide_all_covers_every_assessment() {
        let inst = BinaryScenario::paper_default(5, 100, 1.0).generate(&mut rng(313));
        let report = MWorkerEstimator::new(EstimatorConfig::default())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let decisions = RetentionPolicy::default().decide_all(&report);
        assert_eq!(decisions.len(), report.assessments.len());
    }
}
