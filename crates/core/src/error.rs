//! Error type for the estimators.

use crowd_data::WorkerId;

/// Failure modes of the assessment algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// Two workers share fewer common tasks than the configured
    /// minimum; the paper requires at least one common task per pair.
    InsufficientOverlap {
        /// First worker of the pair.
        a: WorkerId,
        /// Second worker of the pair.
        b: WorkerId,
        /// Tasks they share.
        got: usize,
        /// Tasks required.
        need: usize,
    },
    /// The algorithm needs more workers than the data provides.
    NotEnoughWorkers {
        /// Workers available.
        got: usize,
        /// Workers required.
        need: usize,
    },
    /// No valid triple could be formed for the worker under evaluation.
    NoUsableTriples {
        /// The worker being evaluated.
        worker: WorkerId,
    },
    /// An agreement rate at or below 1/2 hit the singularity of the
    /// inversion `f` and the configured policy is to fail
    /// (see [`crate::DegeneracyPolicy`]).
    Degenerate {
        /// Description of the degenerate quantity.
        what: String,
    },
    /// The algorithm requires regular data (every worker attempts every
    /// task) — only the reproduced "old technique" baseline has this
    /// restriction.
    RequiresRegularData,
    /// A linear-algebra step failed (singular moment matrix, complex
    /// spectrum, ...).
    Numerical(String),
    /// A statistics-layer failure (invalid confidence level, negative
    /// variance, ...).
    Stats(crowd_stats::StatsError),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InsufficientOverlap { a, b, got, need } => write!(
                f,
                "workers {a:?} and {b:?} share only {got} tasks (need {need})"
            ),
            Self::NotEnoughWorkers { got, need } => {
                write!(f, "not enough workers: got {got}, need {need}")
            }
            Self::NoUsableTriples { worker } => {
                write!(f, "no usable triples for worker {worker:?}")
            }
            Self::Degenerate { what } => write!(f, "degenerate estimate: {what}"),
            Self::RequiresRegularData => {
                write!(
                    f,
                    "this method requires regular data (every worker on every task)"
                )
            }
            Self::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            Self::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for EstimateError {}

impl From<crowd_stats::StatsError> for EstimateError {
    fn from(e: crowd_stats::StatsError) -> Self {
        Self::Stats(e)
    }
}

impl From<crowd_linalg::LinalgError> for EstimateError {
    fn from(e: crowd_linalg::LinalgError) -> Self {
        Self::Numerical(e.to_string())
    }
}

/// Result alias for estimator operations.
pub type Result<T> = std::result::Result<T, EstimateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = EstimateError::InsufficientOverlap {
            a: WorkerId(0),
            b: WorkerId(1),
            got: 0,
            need: 1,
        };
        assert!(e.to_string().contains("share only 0"));
        assert!(
            EstimateError::NotEnoughWorkers { got: 2, need: 3 }
                .to_string()
                .contains("got 2")
        );
        assert!(
            EstimateError::NoUsableTriples {
                worker: WorkerId(4)
            }
            .to_string()
            .contains("w")
        );
        assert!(
            EstimateError::RequiresRegularData
                .to_string()
                .contains("regular")
        );
        assert!(
            EstimateError::Degenerate {
                what: "q <= 1/2".into()
            }
            .to_string()
            .contains("q <=")
        );
    }

    #[test]
    fn conversions() {
        let e: EstimateError = crowd_stats::StatsError::SingularCovariance.into();
        assert!(matches!(e, EstimateError::Stats(_)));
        let e: EstimateError = crowd_linalg::LinalgError::Singular { pivot: 0 }.into();
        assert!(matches!(e, EstimateError::Numerical(_)));
    }
}
