//! The binary agreement equations: Eq. (1) and Lemma 2 of the paper.
//!
//! For binary tasks with symmetric error rates, two workers agree with
//! probability `q_ij = p_i·p_j + (1−p_i)(1−p_j)`, equivalently
//! `2q_ij − 1 = (1−2p_i)(1−2p_j)`. For a triangle of three workers the
//! system solves in closed form:
//!
//! ```text
//! p_i = 1/2 − 1/2 · sqrt( (2q_ij − 1)(2q_ik − 1) / (2q_jk − 1) )
//! ```
//!
//! This module owns that inversion, its partial derivatives (Lemma 2),
//! and the degeneracy handling around the `q = 1/2` singularity.

use crate::{DegeneracyPolicy, EstimateError, Result};

/// The three agreement rates of one worker triangle, ordered so the
/// worker being evaluated participates in the first two:
/// `(q_ij, q_ik, q_jk)` evaluates worker `i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// Agreement rate between the evaluated worker and the first peer.
    pub q_ij: f64,
    /// Agreement rate between the evaluated worker and the second peer.
    pub q_ik: f64,
    /// Agreement rate between the two peers.
    pub q_jk: f64,
}

impl Triangle {
    /// Applies the degeneracy policy: every `2q − 1` factor must be
    /// positive for the inversion to exist.
    pub fn regularized(self, policy: DegeneracyPolicy) -> Result<Triangle> {
        let fix = |q: f64, name: &str| -> Result<f64> {
            match policy {
                DegeneracyPolicy::Clamp { epsilon } => {
                    debug_assert!(epsilon > 0.0, "clamp epsilon must be positive");
                    Ok(q.max(0.5 + epsilon))
                }
                DegeneracyPolicy::Error => {
                    if q <= 0.5 {
                        Err(EstimateError::Degenerate {
                            what: format!("agreement rate {name} = {q} <= 1/2"),
                        })
                    } else {
                        Ok(q)
                    }
                }
            }
        };
        Ok(Triangle {
            q_ij: fix(self.q_ij, "q_ij")?,
            q_ik: fix(self.q_ik, "q_ik")?,
            q_jk: fix(self.q_jk, "q_jk")?,
        })
    }

    /// Eq. (1): the point estimate of the evaluated worker's error rate.
    ///
    /// Assumes the triangle is already regularized (`q > 1/2`
    /// everywhere); call [`Triangle::regularized`] first on raw data.
    pub fn error_rate(&self) -> f64 {
        let u = 2.0 * self.q_ij - 1.0;
        let v = 2.0 * self.q_ik - 1.0;
        let w = 2.0 * self.q_jk - 1.0;
        debug_assert!(u > 0.0 && v > 0.0 && w > 0.0, "triangle not regularized");
        0.5 - 0.5 * (u * v / w).sqrt()
    }

    /// Lemma 2: the gradient of [`Triangle::error_rate`] with respect
    /// to `(q_ij, q_ik, q_jk)`.
    pub fn gradient(&self) -> [f64; 3] {
        let a = self.q_ij - 0.5;
        let b = self.q_ik - 0.5;
        let c = self.q_jk - 0.5;
        debug_assert!(a > 0.0 && b > 0.0 && c > 0.0, "triangle not regularized");
        [
            -(b / (8.0 * a * c)).sqrt(),
            -(a / (8.0 * b * c)).sqrt(),
            (a * b / (8.0 * c * c * c)).sqrt(),
        ]
    }
}

/// The forward map: the agreement rate implied by two error rates,
/// `q = p_i·p_j + (1−p_i)(1−p_j)`. Exposed for simulation-free tests
/// and for the old-technique baseline.
pub fn agreement_from_errors(p_i: f64, p_j: f64) -> f64 {
    p_i * p_j + (1.0 - p_i) * (1.0 - p_j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_from_errors(p1: f64, p2: f64, p3: f64) -> Triangle {
        Triangle {
            q_ij: agreement_from_errors(p1, p2),
            q_ik: agreement_from_errors(p1, p3),
            q_jk: agreement_from_errors(p2, p3),
        }
    }

    #[test]
    fn inversion_recovers_error_rates_exactly() {
        for &(p1, p2, p3) in &[
            (0.1, 0.2, 0.3),
            (0.05, 0.05, 0.05),
            (0.0, 0.3, 0.49),
            (0.25, 0.1, 0.4),
        ] {
            let t = triangle_from_errors(p1, p2, p3);
            assert!(
                (t.error_rate() - p1).abs() < 1e-12,
                "failed to invert p1={p1}, got {}",
                t.error_rate()
            );
            // Permute to evaluate worker 2 and worker 3.
            let t2 = Triangle {
                q_ij: t.q_ij,
                q_ik: t.q_jk,
                q_jk: t.q_ik,
            };
            assert!((t2.error_rate() - p2).abs() < 1e-12);
            let t3 = Triangle {
                q_ij: t.q_ik,
                q_ik: t.q_jk,
                q_jk: t.q_ij,
            };
            assert!((t3.error_rate() - p3).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_workers_never_disagree() {
        let t = triangle_from_errors(0.0, 0.0, 0.0);
        assert_eq!(t.q_ij, 1.0);
        assert!((t.error_rate() - 0.0).abs() < 1e-15);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let t = Triangle {
            q_ij: 0.8,
            q_ik: 0.75,
            q_jk: 0.7,
        };
        let g = t.gradient();
        let h = 1e-7;
        let num = [
            (Triangle {
                q_ij: t.q_ij + h,
                ..t
            }
            .error_rate()
                - Triangle {
                    q_ij: t.q_ij - h,
                    ..t
                }
                .error_rate())
                / (2.0 * h),
            (Triangle {
                q_ik: t.q_ik + h,
                ..t
            }
            .error_rate()
                - Triangle {
                    q_ik: t.q_ik - h,
                    ..t
                }
                .error_rate())
                / (2.0 * h),
            (Triangle {
                q_jk: t.q_jk + h,
                ..t
            }
            .error_rate()
                - Triangle {
                    q_jk: t.q_jk - h,
                    ..t
                }
                .error_rate())
                / (2.0 * h),
        ];
        for (analytic, numeric) in g.iter().zip(&num) {
            assert!(
                (analytic - numeric).abs() < 1e-5,
                "gradient mismatch: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn gradient_signs_match_lemma_2() {
        // Increasing agreement with either peer lowers the error
        // estimate; increasing peer-peer agreement raises it.
        let t = Triangle {
            q_ij: 0.8,
            q_ik: 0.75,
            q_jk: 0.7,
        };
        let g = t.gradient();
        assert!(g[0] < 0.0);
        assert!(g[1] < 0.0);
        assert!(g[2] > 0.0);
    }

    #[test]
    fn clamp_policy_repairs_degenerate_rates() {
        let t = Triangle {
            q_ij: 0.45,
            q_ik: 0.9,
            q_jk: 0.5,
        };
        let fixed = t
            .regularized(DegeneracyPolicy::Clamp { epsilon: 0.01 })
            .unwrap();
        assert!((fixed.q_ij - 0.51).abs() < 1e-15);
        assert!((fixed.q_jk - 0.51).abs() < 1e-15);
        assert_eq!(fixed.q_ik, 0.9);
        // The repaired triangle is safely invertible.
        let p = fixed.error_rate();
        assert!(p.is_finite());
    }

    #[test]
    fn error_policy_rejects_degenerate_rates() {
        let t = Triangle {
            q_ij: 0.5,
            q_ik: 0.9,
            q_jk: 0.8,
        };
        assert!(matches!(
            t.regularized(DegeneracyPolicy::Error),
            Err(EstimateError::Degenerate { .. })
        ));
        let ok = Triangle {
            q_ij: 0.51,
            q_ik: 0.9,
            q_jk: 0.8,
        };
        assert!(ok.regularized(DegeneracyPolicy::Error).is_ok());
    }

    #[test]
    fn forward_map_properties() {
        assert_eq!(agreement_from_errors(0.0, 0.0), 1.0);
        assert_eq!(agreement_from_errors(0.5, 0.3), 0.5);
        assert!((agreement_from_errors(0.1, 0.2) - (0.02 + 0.72)).abs() < 1e-15);
        // Symmetric.
        assert_eq!(
            agreement_from_errors(0.1, 0.4),
            agreement_from_errors(0.4, 0.1)
        );
    }

    #[test]
    fn derivative_magnitude_blows_up_near_singularity() {
        let far = Triangle {
            q_ij: 0.9,
            q_ik: 0.9,
            q_jk: 0.9,
        }
        .gradient();
        let near = Triangle {
            q_ij: 0.52,
            q_ik: 0.9,
            q_jk: 0.9,
        }
        .gradient();
        assert!(near[0].abs() > far[0].abs());
    }
}
