//! Assessment reports and interval-accuracy evaluation.
//!
//! The paper scores its intervals by **interval accuracy**: over many
//! evaluations, the fraction of c-confidence intervals containing the
//! true value, which should track `c` (the diagonal of Figures 2a, 3,
//! 4, 5a, 5c). [`CoverageStats`] accumulates exactly that.

use crate::EstimateError;
use crowd_data::WorkerId;
use crowd_stats::ConfidenceInterval;

/// The outcome of evaluating one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerAssessment {
    /// The worker evaluated.
    pub worker: WorkerId,
    /// Confidence interval for the worker's error rate; its `center`
    /// is the point estimate.
    pub interval: ConfidenceInterval,
    /// How many triples contributed (1 for the 3-worker method).
    pub triples_used: usize,
    /// True if the Lemma 5 weight solver had to fall back (singular
    /// covariance → ridge → uniform).
    pub weights_fell_back: bool,
}

/// The outcome of evaluating every worker in a dataset.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Successful assessments, in worker order.
    pub assessments: Vec<WorkerAssessment>,
    /// Workers that could not be evaluated, with the reason.
    pub failures: Vec<(WorkerId, EstimateError)>,
}

impl WorkerReport {
    /// Iterates `(worker, interval)` over successful assessments.
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, &ConfidenceInterval)> {
        self.assessments.iter().map(|a| (a.worker, &a.interval))
    }

    /// Looks up one worker's assessment.
    pub fn get(&self, worker: WorkerId) -> Option<&WorkerAssessment> {
        self.assessments.iter().find(|a| a.worker == worker)
    }

    /// Recombines partial reports — each covering a disjoint subset of
    /// the fleet — into one fleet report in canonical (worker-id)
    /// order: the merge hook of the sharded pipeline
    /// (`crowd_shard::merge_reports`).
    ///
    /// Each part's rows are kept verbatim (no recomputation, no
    /// rounding), only reordered, so when the parts were produced by
    /// the same estimator configuration over substrates that agree on
    /// every statistic, the merged report is **bit-identical** to a
    /// single-process `evaluate_all` — assessments in worker order,
    /// failures in worker order. The sort is stable, so duplicate
    /// coverage (a contract violation) degrades to deterministic
    /// output rather than nondeterminism.
    pub fn merge(parts: impl IntoIterator<Item = WorkerReport>) -> WorkerReport {
        let mut merged = WorkerReport::default();
        for part in parts {
            merged.assessments.extend(part.assessments);
            merged.failures.extend(part.failures);
        }
        merged.assessments.sort_by_key(|a| a.worker);
        merged.failures.sort_by_key(|f| f.0);
        merged
    }

    /// Mean interval size over successful assessments (the y-axis of
    /// Figures 1, 2b, 2c).
    pub fn mean_interval_size(&self) -> f64 {
        if self.assessments.is_empty() {
            return 0.0;
        }
        self.assessments
            .iter()
            .map(|a| a.interval.size())
            .sum::<f64>()
            / self.assessments.len() as f64
    }

    /// Scores coverage against a truth oracle; workers whose truth is
    /// unknown (`None`) are skipped.
    pub fn coverage(&self, truth: impl Fn(WorkerId) -> Option<f64>) -> CoverageStats {
        let mut stats = CoverageStats::default();
        for a in &self.assessments {
            if let Some(t) = truth(a.worker) {
                stats.record(a.interval.contains(t));
            }
        }
        stats
    }
}

/// Running interval-accuracy tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Intervals containing the truth.
    pub covered: usize,
    /// Intervals scored.
    pub total: usize,
}

impl CoverageStats {
    /// Records one interval's verdict.
    pub fn record(&mut self, covered: bool) {
        self.total += 1;
        if covered {
            self.covered += 1;
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: CoverageStats) {
        self.covered += other.covered;
        self.total += other.total;
    }

    /// The interval accuracy (coverage fraction); `None` before any
    /// observation.
    pub fn accuracy(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.covered as f64 / self.total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assessment(worker: u32, lo: f64, hi: f64) -> WorkerAssessment {
        WorkerAssessment {
            worker: WorkerId(worker),
            interval: ConfidenceInterval::from_bounds(lo, hi, 0.9),
            triples_used: 1,
            weights_fell_back: false,
        }
    }

    #[test]
    fn report_queries() {
        let report = WorkerReport {
            assessments: vec![assessment(0, 0.1, 0.3), assessment(1, 0.0, 0.4)],
            failures: vec![],
        };
        assert_eq!(report.iter().count(), 2);
        assert!(report.get(WorkerId(1)).is_some());
        assert!(report.get(WorkerId(9)).is_none());
        assert!((report.mean_interval_size() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_report_mean_size_is_zero() {
        assert_eq!(WorkerReport::default().mean_interval_size(), 0.0);
    }

    #[test]
    fn coverage_scoring_skips_unknown_truth() {
        let report = WorkerReport {
            assessments: vec![assessment(0, 0.1, 0.3), assessment(1, 0.0, 0.1)],
            failures: vec![],
        };
        let stats = report.coverage(|w| if w == WorkerId(0) { Some(0.2) } else { None });
        assert_eq!(
            stats,
            CoverageStats {
                covered: 1,
                total: 1
            }
        );
        let stats = report.coverage(|_| Some(0.2));
        assert_eq!(
            stats,
            CoverageStats {
                covered: 1,
                total: 2
            }
        );
    }

    #[test]
    fn coverage_accumulates_and_merges() {
        let mut a = CoverageStats::default();
        assert_eq!(a.accuracy(), None);
        a.record(true);
        a.record(false);
        let mut b = CoverageStats::default();
        b.record(true);
        b.record(true);
        a.merge(b);
        assert_eq!(a.total, 4);
        assert_eq!(a.covered, 3);
        assert!((a.accuracy().unwrap() - 0.75).abs() < 1e-15);
    }
}
