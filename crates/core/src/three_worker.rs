//! The 3-worker estimator — Algorithm A1 and its non-regular
//! generalization (§III-A, §III-B).
//!
//! Pipeline for evaluating worker `i` against peers `j₁`, `j₂`:
//!
//! 1. agreement rates `q̂` over each pair's common tasks,
//! 2. Eq. (1) point estimate `p̂ᵢ = f(q̂_ij₁, q̂_ij₂, q̂_j₁j₂)`,
//! 3. Lemma 3 covariances of the agreement rates (which reduce to
//!    Lemma 1 when `c_ij = c_ijk = n`, the regular case),
//! 4. Lemma 2 gradient of `f`,
//! 5. Theorem 1 delta-method interval.
//!
//! The intermediate [`TripleEstimate`] (estimate, deviation, gradient,
//! overlap counts) is exactly what Algorithm A2 aggregates across
//! triples, so the m-worker estimator is built on this module.

use crate::agreement::Triangle;
use crate::{EstimateError, EstimatorConfig, Result};
use crowd_data::{CachedOverlap, OverlapSource, PairStats, ResponseMatrix, WorkerId};
use crowd_linalg::Matrix;
use crowd_stats::{ConfidenceInterval, delta_variance};

/// Overlap bookkeeping for one triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripleOverlaps {
    /// `c_ij₁`: tasks shared by the evaluated worker and peer 1.
    pub c_i_j1: usize,
    /// `c_ij₂`: tasks shared by the evaluated worker and peer 2.
    pub c_i_j2: usize,
    /// `c_j₁j₂`: tasks shared by the two peers.
    pub c_j1_j2: usize,
    /// `c_ij₁j₂`: tasks shared by all three.
    pub c_all: usize,
}

/// The full output of the 3-worker method for one worker in one triple:
/// everything Algorithm A2 needs to aggregate across triples.
#[derive(Debug, Clone, PartialEq)]
pub struct TripleEstimate {
    /// The worker being evaluated.
    pub worker: WorkerId,
    /// The two peers.
    pub peers: (WorkerId, WorkerId),
    /// Eq. (1) point estimate of the worker's error rate.
    pub p_hat: f64,
    /// Delta-method standard deviation of `p_hat`.
    pub deviation: f64,
    /// Lemma 2 gradient with respect to `(q_ij₁, q_ij₂, q_j₁j₂)`.
    pub gradient: [f64; 3],
    /// The (regularized) agreement rates the estimate used.
    pub triangle: Triangle,
    /// Overlap counts.
    pub overlaps: TripleOverlaps,
    /// Plug-in error estimates for the two peers (used by Lemma 4).
    pub peer_p: (f64, f64),
}

/// The 3-worker estimator (Algorithm A1, regular or non-regular data).
#[derive(Debug, Clone, Default)]
pub struct ThreeWorkerEstimator {
    config: EstimatorConfig,
}

impl ThreeWorkerEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Runs steps 1–4 of the method for worker `i` in the triple
    /// `(i, j₁, j₂)`, returning the estimate plus the ingredients
    /// Algorithm A2 aggregates.
    pub fn triple_estimate(
        &self,
        data: &ResponseMatrix,
        worker: WorkerId,
        peer1: WorkerId,
        peer2: WorkerId,
    ) -> Result<TripleEstimate> {
        self.triple_estimate_on(data, worker, peer1, peer2)
    }

    /// [`ThreeWorkerEstimator::triple_estimate`] with an optional
    /// precomputed [`crowd_data::PairCache`] so streaming callers skip
    /// the pairwise merge scans.
    pub fn triple_estimate_cached(
        &self,
        data: &ResponseMatrix,
        cache: Option<&crowd_data::PairCache>,
        worker: WorkerId,
        peer1: WorkerId,
        peer2: WorkerId,
    ) -> Result<TripleEstimate> {
        match cache {
            Some(cache) => {
                self.triple_estimate_on(&CachedOverlap { data, cache }, worker, peer1, peer2)
            }
            None => self.triple_estimate_on(data, worker, peer1, peer2),
        }
    }

    /// [`ThreeWorkerEstimator::triple_estimate`] over any overlap
    /// substrate ([`crowd_data::OverlapIndex`], a cached matrix, or the
    /// raw matrix). The estimate is identical across substrates; only
    /// the statistic-lookup cost differs.
    pub fn triple_estimate_on<S: OverlapSource>(
        &self,
        src: &S,
        worker: WorkerId,
        peer1: WorkerId,
        peer2: WorkerId,
    ) -> Result<TripleEstimate> {
        let c_all = src.triple(worker, peer1, peer2).common_tasks;
        self.triple_estimate_with_c_all(src, worker, peer1, peer2, c_all)
    }

    /// The triple pipeline with `c_ij₁j₂` supplied by the caller —
    /// Algorithm A2 evaluates many triples anchored on one worker and
    /// gets these counts from a bitset view instead of merge scans.
    pub(crate) fn triple_estimate_with_c_all<S: OverlapSource>(
        &self,
        src: &S,
        worker: WorkerId,
        peer1: WorkerId,
        peer2: WorkerId,
        c_all: usize,
    ) -> Result<TripleEstimate> {
        assert_ne!(worker, peer1, "triple workers must be distinct");
        assert_ne!(worker, peer2, "triple workers must be distinct");
        assert_ne!(peer1, peer2, "triple workers must be distinct");

        let s_i1 = self.checked_pair(src, worker, peer1)?;
        let s_i2 = self.checked_pair(src, worker, peer2)?;
        let s_12 = self.checked_pair(src, peer1, peer2)?;

        let raw = Triangle {
            q_ij: s_i1.agreement_rate().expect("overlap checked"),
            q_ik: s_i2.agreement_rate().expect("overlap checked"),
            q_jk: s_12.agreement_rate().expect("overlap checked"),
        };
        let triangle = raw.regularized(self.config.degeneracy)?;

        let p_hat = triangle.error_rate();
        let gradient = triangle.gradient();

        // Peer plug-ins by permuting the triangle (Eq. 1 for j₁ and j₂).
        let p_peer1 = Triangle {
            q_ij: triangle.q_ij,
            q_ik: triangle.q_jk,
            q_jk: triangle.q_ik,
        }
        .error_rate();
        let p_peer2 = Triangle {
            q_ij: triangle.q_ik,
            q_ik: triangle.q_jk,
            q_jk: triangle.q_ij,
        }
        .error_rate();

        let overlaps = TripleOverlaps {
            c_i_j1: s_i1.common_tasks,
            c_i_j2: s_i2.common_tasks,
            c_j1_j2: s_12.common_tasks,
            c_all,
        };
        let cov = self.agreement_covariance(
            &triangle,
            &overlaps,
            (&s_i1, &s_i2, &s_12),
            (p_hat, p_peer1, p_peer2),
        );
        let variance = delta_variance(&gradient, &cov)?;

        Ok(TripleEstimate {
            worker,
            peers: (peer1, peer2),
            p_hat,
            deviation: variance.sqrt(),
            gradient,
            triangle,
            overlaps,
            peer_p: (p_peer1, p_peer2),
        })
    }

    /// Full Algorithm A1 for one worker: triple estimate + Theorem 1
    /// interval.
    pub fn evaluate(
        &self,
        data: &ResponseMatrix,
        worker: WorkerId,
        peer1: WorkerId,
        peer2: WorkerId,
        confidence: f64,
    ) -> Result<ConfidenceInterval> {
        let est = self.triple_estimate(data, worker, peer1, peer2)?;
        Ok(ConfidenceInterval::from_deviation(
            est.p_hat,
            est.deviation,
            confidence,
        )?)
    }

    /// Evaluates all three workers of a 3-worker matrix.
    pub fn evaluate_triple(
        &self,
        data: &ResponseMatrix,
        confidence: f64,
    ) -> Result<[ConfidenceInterval; 3]> {
        if data.n_workers() != 3 {
            return Err(EstimateError::NotEnoughWorkers {
                got: data.n_workers(),
                need: 3,
            });
        }
        let (w0, w1, w2) = (WorkerId(0), WorkerId(1), WorkerId(2));
        Ok([
            self.evaluate(data, w0, w1, w2, confidence)?,
            self.evaluate(data, w1, w0, w2, confidence)?,
            self.evaluate(data, w2, w0, w1, confidence)?,
        ])
    }

    fn checked_pair<S: OverlapSource>(
        &self,
        src: &S,
        a: WorkerId,
        b: WorkerId,
    ) -> Result<PairStats> {
        let s = src.pair(a, b);
        let need = self.config.min_pair_overlap.max(1);
        if s.common_tasks < need {
            return Err(EstimateError::InsufficientOverlap {
                a,
                b,
                got: s.common_tasks,
                need,
            });
        }
        Ok(s)
    }

    /// Lemma 3: the 3×3 covariance matrix of `(Q_ij₁, Q_ij₂, Q_j₁j₂)`.
    ///
    /// Variances use the (optionally smoothed) empirical agreement
    /// rates; cross covariances use the plug-in error estimates, with
    /// `p(1−p)` evaluated after clamping `p` into `[0, 1/2]` (the
    /// model's admissible range).
    fn agreement_covariance(
        &self,
        triangle: &Triangle,
        overlaps: &TripleOverlaps,
        stats: (&PairStats, &PairStats, &PairStats),
        plugins: (f64, f64, f64),
    ) -> Matrix {
        let (s_i1, s_i2, s_12) = stats;
        let (p_i, p_1, p_2) = plugins;
        let var = |s: &PairStats| -> f64 {
            let c = s.common_tasks as f64;
            let q = if self.config.variance_smoothing {
                (s.agreements as f64 + 0.5) / (c + 1.0)
            } else {
                s.agreements as f64 / c
            };
            q * (1.0 - q) / c
        };
        let pq = |p: f64| -> f64 {
            let p = p.clamp(0.0, 0.5);
            p * (1.0 - p)
        };
        let c_all = overlaps.c_all as f64;
        let c_i1 = overlaps.c_i_j1 as f64;
        let c_i2 = overlaps.c_i_j2 as f64;
        let c_12 = overlaps.c_j1_j2 as f64;

        let mut cov = Matrix::zeros(3, 3);
        cov.set(0, 0, var(s_i1));
        cov.set(1, 1, var(s_i2));
        cov.set(2, 2, var(s_12));
        // Cov(Q_ij₁, Q_ij₂): shared worker i, "other" agreement q_j₁j₂.
        let c01 = c_all * pq(p_i) * (2.0 * triangle.q_jk - 1.0) / (c_i1 * c_i2);
        // Cov(Q_ij₁, Q_j₁j₂): shared worker j₁, other agreement q_ij₂.
        let c02 = c_all * pq(p_1) * (2.0 * triangle.q_ik - 1.0) / (c_i1 * c_12);
        // Cov(Q_ij₂, Q_j₁j₂): shared worker j₂, other agreement q_ij₁.
        let c12 = c_all * pq(p_2) * (2.0 * triangle.q_ij - 1.0) / (c_i2 * c_12);
        // The plug-in cross terms can violate Cauchy-Schwarz against
        // the empirical variances on degenerate data (e.g. clamped
        // agreement rates); clip to keep the matrix (near-)PSD.
        let clip = |c: f64, va: f64, vb: f64| -> f64 {
            let bound = 0.99 * (va * vb).sqrt();
            c.clamp(-bound, bound)
        };
        let (v0, v1, v2) = (cov.get(0, 0), cov.get(1, 1), cov.get(2, 2));
        let c01 = clip(c01, v0, v1);
        let c02 = clip(c02, v0, v2);
        let c12 = clip(c12, v1, v2);
        cov.set(0, 1, c01);
        cov.set(1, 0, c01);
        cov.set(0, 2, c02);
        cov.set(2, 0, c02);
        cov.set(1, 2, c12);
        cov.set(2, 1, c12);
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegeneracyPolicy;
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
    use crowd_sim::{BinaryScenario, rng};

    fn estimator() -> ThreeWorkerEstimator {
        ThreeWorkerEstimator::new(EstimatorConfig::default())
    }

    /// Deterministic matrix where w2 disagrees with w0/w1 on exactly
    /// 20% of tasks and w0 == w1 always.
    fn deterministic_matrix() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(3, 100, 2);
        for t in 0..100u32 {
            b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
            b.push(WorkerId(1), TaskId(t), Label(0)).unwrap();
            let l = if t < 20 { Label(1) } else { Label(0) };
            b.push(WorkerId(2), TaskId(t), l).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn point_estimates_solve_the_triangle() {
        // q01 = 1, q02 = q12 = 0.8 (after clamping q01 slightly below 1
        // is not needed; 2q-1 = 1). p̂₂ = 1/2 - 1/2·sqrt(0.6·0.6/1.0) = 0.2.
        let data = deterministic_matrix();
        let est = estimator()
            .triple_estimate(&data, WorkerId(2), WorkerId(0), WorkerId(1))
            .unwrap();
        assert!((est.p_hat - 0.2).abs() < 1e-12, "p̂₂ = {}", est.p_hat);
        // And the perfect workers get p̂ = 0.
        let est0 = estimator()
            .triple_estimate(&data, WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        assert!(est0.p_hat.abs() < 1e-12, "p̂₀ = {}", est0.p_hat);
    }

    #[test]
    fn overlaps_are_recorded() {
        let data = deterministic_matrix();
        let est = estimator()
            .triple_estimate(&data, WorkerId(2), WorkerId(0), WorkerId(1))
            .unwrap();
        assert_eq!(est.overlaps.c_i_j1, 100);
        assert_eq!(est.overlaps.c_all, 100);
        assert_eq!(est.peers, (WorkerId(0), WorkerId(1)));
    }

    #[test]
    fn interval_covers_truth_in_simulation() {
        // 90% intervals over repeated simulations should cover the true
        // error rate close to 90% of the time.
        let scenario = BinaryScenario::paper_default(3, 150, 1.0);
        let est = estimator();
        let mut covered = 0;
        let mut total = 0;
        let mut r = rng(101);
        for _ in 0..300 {
            let inst = scenario.generate(&mut r);
            if let Ok(cis) = est.evaluate_triple(inst.responses(), 0.9) {
                for w in 0..3u32 {
                    total += 1;
                    if cis[w as usize].contains(inst.true_error_rate(WorkerId(w))) {
                        covered += 1;
                    }
                }
            }
        }
        let coverage = covered as f64 / total as f64;
        assert!(
            (coverage - 0.9).abs() < 0.05,
            "coverage {coverage} over {total} intervals, expected ≈ 0.9"
        );
    }

    #[test]
    fn estimates_concentrate_with_more_tasks() {
        let est = estimator();
        let mut r = rng(7);
        let small = BinaryScenario::paper_default(3, 50, 1.0).generate(&mut r);
        let large = BinaryScenario::paper_default(3, 2000, 1.0).generate(&mut r);
        let ci_small = est.evaluate_triple(small.responses(), 0.9).unwrap();
        let ci_large = est.evaluate_triple(large.responses(), 0.9).unwrap();
        let avg = |cis: &[ConfidenceInterval; 3]| cis.iter().map(|c| c.size()).sum::<f64>() / 3.0;
        assert!(
            avg(&ci_large) < avg(&ci_small) / 2.0,
            "large-n intervals should be much tighter: {} vs {}",
            avg(&ci_large),
            avg(&ci_small)
        );
    }

    #[test]
    fn nonregular_data_uses_pairwise_overlaps() {
        // Workers overlap on different subsets (the §III-B example
        // shape); estimates must still be finite and sane.
        let mut b = ResponseMatrixBuilder::new(3, 100, 2);
        let mut r = rng(3);
        use rand::RngExt;
        for t in 0..100u32 {
            // truth is always 0; workers err with prob .1/.2/.3
            if t < 80 {
                let l = if r.random::<f64>() < 0.1 {
                    Label(1)
                } else {
                    Label(0)
                };
                b.push(WorkerId(0), TaskId(t), l).unwrap();
            }
            if t >= 20 {
                let l = if r.random::<f64>() < 0.2 {
                    Label(1)
                } else {
                    Label(0)
                };
                b.push(WorkerId(1), TaskId(t), l).unwrap();
            }
            if (10..90).contains(&t) {
                let l = if r.random::<f64>() < 0.3 {
                    Label(1)
                } else {
                    Label(0)
                };
                b.push(WorkerId(2), TaskId(t), l).unwrap();
            }
        }
        let data = b.build().unwrap();
        let est = estimator();
        let e = est
            .triple_estimate(&data, WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        assert_eq!(e.overlaps.c_i_j1, 60);
        assert_eq!(e.overlaps.c_i_j2, 70);
        assert_eq!(e.overlaps.c_j1_j2, 70);
        assert_eq!(e.overlaps.c_all, 60);
        assert!(e.p_hat.is_finite());
        assert!(e.deviation > 0.0);
    }

    #[test]
    fn no_overlap_is_an_error() {
        let mut b = ResponseMatrixBuilder::new(3, 4, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(1), Label(0)).unwrap();
        b.push(WorkerId(2), TaskId(2), Label(0)).unwrap();
        let data = b.build().unwrap();
        let err = estimator()
            .triple_estimate(&data, WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap_err();
        assert!(matches!(err, EstimateError::InsufficientOverlap { .. }));
    }

    #[test]
    fn strict_policy_propagates_degeneracy() {
        // Antagonistic worker 2 agrees with nobody → q below 1/2.
        let mut b = ResponseMatrixBuilder::new(3, 50, 2);
        for t in 0..50u32 {
            b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
            b.push(WorkerId(1), TaskId(t), Label(0)).unwrap();
            b.push(WorkerId(2), TaskId(t), Label(1)).unwrap();
        }
        let data = b.build().unwrap();
        let strict = ThreeWorkerEstimator::new(EstimatorConfig::default());
        assert!(matches!(
            strict.triple_estimate(&data, WorkerId(0), WorkerId(1), WorkerId(2)),
            Err(EstimateError::Degenerate { .. })
        ));
        // The default clamp policy survives it.
        let clamped = ThreeWorkerEstimator::new(EstimatorConfig {
            degeneracy: DegeneracyPolicy::Clamp { epsilon: 0.01 },
            ..EstimatorConfig::default()
        });
        let est = clamped
            .triple_estimate(&data, WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        assert!(est.p_hat.is_finite());
    }

    #[test]
    fn wrong_worker_count_rejected() {
        let mut b = ResponseMatrixBuilder::new(2, 2, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(0)).unwrap();
        let data = b.build().unwrap();
        assert!(matches!(
            estimator().evaluate_triple(&data, 0.9),
            Err(EstimateError::NotEnoughWorkers { got: 2, need: 3 })
        ));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_worker_in_triple_panics() {
        let data = deterministic_matrix();
        let _ = estimator().triple_estimate(&data, WorkerId(0), WorkerId(0), WorkerId(1));
    }

    #[test]
    fn deviation_shrinks_like_inverse_sqrt_n() {
        // Build two deterministic matrices with identical rates but 4x
        // the tasks; deviation should halve (Lemma 3 variances ∝ 1/c).
        let make = |n: u32| {
            let mut b = ResponseMatrixBuilder::new(3, n as usize, 2);
            for t in 0..n {
                b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
                b.push(WorkerId(1), TaskId(t), Label((t % 5 == 0) as u16))
                    .unwrap();
                b.push(WorkerId(2), TaskId(t), Label((t % 4 == 0) as u16))
                    .unwrap();
            }
            b.build().unwrap()
        };
        let est = estimator();
        let small = est
            .triple_estimate(&make(100), WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        let large = est
            .triple_estimate(&make(400), WorkerId(0), WorkerId(1), WorkerId(2))
            .unwrap();
        let ratio = small.deviation / large.deviation;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "deviation ratio {ratio}, expected ≈ 2"
        );
    }
}
