//! The crowd-assessment algorithms of Joglekar, Garcia-Molina and
//! Parameswaran, *"Comprehensive and Reliable Crowd Assessment
//! Algorithms"* (ICDE 2015) — confidence intervals for worker error
//! rates **without gold-standard tasks**.
//!
//! # The estimators
//!
//! | Paper | Type | Setting |
//! |---|---|---|
//! | Algorithm A1/§III-B | [`ThreeWorkerEstimator`] | 3 workers, binary tasks, regular or non-regular |
//! | Algorithm A2 | [`MWorkerEstimator`] | m ≥ 3 workers, binary, non-regular |
//! | Algorithm A3 | [`KaryEstimator`] | 3 workers, k-ary tasks, response-probability matrices |
//!
//! All three share one statistical engine: estimate agreement
//! statistics, invert them to ability estimates, and push the sampling
//! covariance of the statistics through the inversion with the delta
//! method ([`crowd_stats::delta_interval`], the paper's Theorem 1).
//!
//! # Baselines
//!
//! [`baselines`] re-implements every comparator the evaluation needs:
//! the conservative super-worker technique of the authors' earlier
//! KDD'13 paper (`old_technique`), Dawid-Skene EM (point estimates,
//! related work), majority voting, and the classical gold-standard
//! intervals.
//!
//! # Preprocessing
//!
//! [`preprocess::prune_spammers`] implements the §III-E cleanup that
//! repairs interval accuracy on real data (Figure 4): workers whose
//! majority-disagreement rate exceeds 0.4 are removed before
//! estimation.

pub mod aggregation;
pub mod agreement;
pub mod baselines;
pub mod cached;
pub mod config;
pub mod error;
pub mod evaluation;
pub mod incremental;
pub mod kary;
pub mod m_worker;
pub mod pairing;
mod parallel;
pub mod policy;
pub mod preprocess;
pub mod three_worker;

pub use aggregation::{AggregatedAnswer, AnswerAggregator, MapAggregator, WeightingRule};
pub use cached::{CacheStats, KaryReportCache, ReportCache};
pub use config::{DegeneracyPolicy, EstimatorConfig};
pub use error::{EstimateError, Result};
pub use evaluation::{CoverageStats, WorkerAssessment, WorkerReport};
pub use incremental::{IncrementalEvaluator, KaryIncrementalEvaluator};
pub use kary::{
    KaryAssessment, KaryEstimator, KaryEvalScratch, KaryMWorkerEstimator, KaryWorkerAssessment,
    KaryWorkerReport, ProbEstimate,
};
pub use m_worker::{EvalScratch, MWorkerEstimator};
pub use parallel::{parallel_index_map, parallel_index_map_with};
pub use policy::{Decision, DecisionRule, PolicyScore, RetentionPolicy};
pub use three_worker::{ThreeWorkerEstimator, TripleEstimate};
