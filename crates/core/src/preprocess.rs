//! Spammer pruning — the §III-E preprocessing behind Figure 4.
//!
//! The inversion `f` is volatile near agreement rate 1/2, so workers
//! whose error rate is ≈ 1/2 (pure spammers) poison everyone's
//! intervals. The paper's remedy: approximate each worker's error rate
//! by its disagreement with the majority vote, drop workers above 0.4,
//! then run the estimator on the survivors.

use crowd_data::{ResponseMatrix, WorkerId, disagreement_rates};

/// The paper's pruning threshold: disagreement above this marks a
/// worker as "almost surely a pure spammer".
pub const PAPER_SPAMMER_THRESHOLD: f64 = 0.4;

/// Result of a pruning pass.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// The filtered matrix with dense re-numbered worker ids.
    pub data: ResponseMatrix,
    /// For each new worker index, the original id.
    pub kept: Vec<WorkerId>,
    /// The original ids of removed workers.
    pub removed: Vec<WorkerId>,
}

/// Removes workers whose majority-disagreement rate exceeds
/// `threshold`. Workers with no scorable responses are kept (there is
/// no evidence against them).
pub fn prune_spammers(data: &ResponseMatrix, threshold: f64) -> PruneOutcome {
    let rates = disagreement_rates(data);
    let is_kept = |w: WorkerId| -> bool { rates[w.index()].is_none_or(|r| r <= threshold) };
    let removed: Vec<WorkerId> = data.workers().filter(|&w| !is_kept(w)).collect();
    let (filtered, kept) = data.retain_workers(is_kept);
    PruneOutcome {
        data: filtered,
        kept,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{BinaryScenario, rng};

    #[test]
    fn spammers_are_removed_and_good_workers_kept() {
        let mut scenario = BinaryScenario::paper_default(12, 200, 1.0);
        scenario.spammer_fraction = 0.3;
        let inst = scenario.generate(&mut rng(61));
        let outcome = prune_spammers(inst.responses(), PAPER_SPAMMER_THRESHOLD);

        // Every removed worker is a true spammer; every kept worker has
        // a pool error rate (0.1/0.2/0.3) well below 0.4. Tolerate the
        // occasional borderline mistake by checking the bulk.
        let removed_true: Vec<f64> = outcome
            .removed
            .iter()
            .map(|&w| inst.true_error_rate(w))
            .collect();
        let kept_true: Vec<f64> = outcome
            .kept
            .iter()
            .map(|&w| inst.true_error_rate(w))
            .collect();
        assert!(
            removed_true.iter().filter(|&&p| p >= 0.45).count() >= removed_true.len() / 2,
            "removed workers should be dominated by spammers: {removed_true:?}"
        );
        assert!(
            kept_true.iter().all(|&p| p < 0.45),
            "no spammer should survive 200 tasks of evidence: {kept_true:?}"
        );
        assert_eq!(outcome.data.n_workers(), outcome.kept.len());
        assert_eq!(outcome.kept.len() + outcome.removed.len(), 12);
    }

    #[test]
    fn clean_data_is_untouched() {
        let inst = BinaryScenario::paper_default(6, 150, 1.0).generate(&mut rng(67));
        let outcome = prune_spammers(inst.responses(), PAPER_SPAMMER_THRESHOLD);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.data.n_workers(), 6);
    }

    #[test]
    fn threshold_zero_removes_any_disagreement() {
        let mut scenario = BinaryScenario::paper_default(6, 100, 1.0);
        scenario.error_pool = vec![0.3];
        let inst = scenario.generate(&mut rng(71));
        let outcome = prune_spammers(inst.responses(), 0.0);
        assert!(!outcome.removed.is_empty());
    }

    #[test]
    fn unscorable_workers_survive() {
        use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
        // Worker 2's only task has no other annotators: no evidence.
        let mut b = ResponseMatrixBuilder::new(3, 3, 2);
        b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(1), TaskId(0), Label(0)).unwrap();
        b.push(WorkerId(2), TaskId(2), Label(1)).unwrap();
        let data = b.build().unwrap();
        let outcome = prune_spammers(&data, 0.4);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.data.n_workers(), 3);
    }
}
