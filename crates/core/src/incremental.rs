//! Incremental (streaming) worker evaluation.
//!
//! The paper's conclusion: "our methods work on the entire dataset in
//! a one-time fashion, but they can be easily modified to be
//! incremental, to keep efficiently updating worker error rates as
//! more tasks get done." This module is that modification.
//!
//! [`IncrementalEvaluator`] ingests responses one at a time,
//! maintaining
//!
//! * the sorted response matrix (insertion, `O(log r + r)`),
//! * the full pairwise agreement cache (`O(responders)` per response —
//!   only the pairs the new response completes are touched),
//!
//! so that evaluating a worker at any moment costs only the triple
//! formation and covariance assembly (the pairwise scans, the dominant
//! `O(m²·n̄)` term of the batch path, become `O(1)` lookups). Results
//! are bit-identical to running the batch [`MWorkerEstimator`] on the
//! accumulated data — see the equivalence tests.

use crate::{EstimatorConfig, MWorkerEstimator, Result, WorkerAssessment, WorkerReport};
use crowd_data::{PairCache, Response, ResponseMatrix, WorkerId};

/// Streaming evaluator maintaining evaluation state response by
/// response.
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, IncrementalEvaluator};
/// use crowd_sim::BinaryScenario;
///
/// let instance =
///     BinaryScenario::paper_default(5, 80, 0.9).generate(&mut crowd_sim::rng(8));
/// let mut monitor = IncrementalEvaluator::new(5, 80, 2, EstimatorConfig::default());
/// for response in instance.responses().iter() {
///     monitor.ingest(response)?;
/// }
/// // Identical to the batch estimator on the same data.
/// let report = monitor.evaluate_all(0.9).unwrap();
/// assert_eq!(report.assessments.len(), 5);
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator {
    data: ResponseMatrix,
    cache: PairCache,
    estimator: MWorkerEstimator,
}

impl IncrementalEvaluator {
    /// Creates an empty evaluator for `n_workers × n_tasks` responses
    /// of the given arity.
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16, config: EstimatorConfig) -> Self {
        Self {
            data: ResponseMatrix::empty(n_workers, n_tasks, arity),
            cache: PairCache::empty(n_workers),
            estimator: MWorkerEstimator::new(config),
        }
    }

    /// Seeds the evaluator from an existing response matrix (one batch
    /// scan), after which further responses stream in.
    pub fn from_matrix(data: ResponseMatrix, config: EstimatorConfig) -> Self {
        let cache = PairCache::from_matrix(&data);
        Self {
            data,
            cache,
            estimator: MWorkerEstimator::new(config),
        }
    }

    /// Ingests one response, updating the matrix and the agreement
    /// cache. Rejects duplicates and out-of-range ids.
    pub fn ingest(&mut self, response: Response) -> crowd_data::Result<()> {
        // Update the cache against the task's current responders, then
        // insert. Insert validates; run it first on a dry check to
        // avoid cache corruption on rejected responses: cheapest is to
        // insert first, then update the cache against the *other*
        // responders (insert keeps them intact, merely adds ours).
        self.data.insert(response)?;
        let others: Vec<(u32, crowd_data::Label)> = self
            .data
            .task_responses(response.task)
            .iter()
            .copied()
            .filter(|&(w, _)| w != response.worker.0)
            .collect();
        self.cache
            .record_response(response.worker, response.label, &others);
        Ok(())
    }

    /// The accumulated responses.
    pub fn data(&self) -> &ResponseMatrix {
        &self.data
    }

    /// The maintained pairwise statistics.
    pub fn pair_cache(&self) -> &PairCache {
        &self.cache
    }

    /// Total responses ingested.
    pub fn n_responses(&self) -> usize {
        self.data.n_responses()
    }

    /// Evaluates one worker on the data seen so far; identical to the
    /// batch estimator on [`IncrementalEvaluator::data`].
    pub fn evaluate_worker(&self, worker: WorkerId, confidence: f64) -> Result<WorkerAssessment> {
        self.estimator
            .evaluate_worker_cached(&self.data, Some(&self.cache), worker, confidence)
    }

    /// Evaluates every worker on the data seen so far.
    pub fn evaluate_all(&self, confidence: f64) -> Result<WorkerReport> {
        if self.data.n_workers() < 3 {
            return Err(crate::EstimateError::NotEnoughWorkers {
                got: self.data.n_workers(),
                need: 3,
            });
        }
        let mut report = WorkerReport::default();
        for worker in self.data.workers() {
            match self.evaluate_worker(worker, confidence) {
                Ok(a) => report.assessments.push(a),
                Err(e) => report.failures.push((worker, e)),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{BinaryScenario, rng};

    fn streamed(inst: &crowd_sim::BinaryInstance) -> IncrementalEvaluator {
        let data = inst.responses();
        let mut ev = IncrementalEvaluator::new(
            data.n_workers(),
            data.n_tasks(),
            data.arity(),
            EstimatorConfig::default(),
        );
        for r in data.iter() {
            ev.ingest(r).unwrap();
        }
        ev
    }

    #[test]
    fn matches_batch_estimator_exactly() {
        let inst = BinaryScenario::paper_default(7, 120, 0.8).generate(&mut rng(401));
        let ev = streamed(&inst);
        assert_eq!(ev.data(), inst.responses());

        let batch = MWorkerEstimator::new(EstimatorConfig::default())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let streaming = ev.evaluate_all(0.9).unwrap();
        assert_eq!(batch.assessments.len(), streaming.assessments.len());
        for (b, s) in batch.assessments.iter().zip(&streaming.assessments) {
            assert_eq!(b.worker, s.worker);
            assert_eq!(
                b.interval, s.interval,
                "cached path diverged for {:?}",
                b.worker
            );
            assert_eq!(b.triples_used, s.triples_used);
        }
    }

    #[test]
    fn seeding_from_matrix_equals_streaming() {
        let inst = BinaryScenario::paper_default(5, 60, 0.9).generate(&mut rng(403));
        let seeded =
            IncrementalEvaluator::from_matrix(inst.responses().clone(), EstimatorConfig::default());
        let streamed = streamed(&inst);
        assert_eq!(seeded.pair_cache(), streamed.pair_cache());
        assert_eq!(seeded.n_responses(), streamed.n_responses());
    }

    #[test]
    fn intervals_tighten_as_evidence_accumulates() {
        // Stream task by task; the target worker's interval must
        // shrink (weakly) as more tasks arrive.
        let inst = BinaryScenario::paper_default(5, 400, 1.0).generate(&mut rng(407));
        let data = inst.responses();
        let mut ev = IncrementalEvaluator::new(5, 400, 2, EstimatorConfig::default());
        let mut sizes = Vec::new();
        for r in data.iter() {
            ev.ingest(r).unwrap();
        }
        // Re-stream in task order, checkpointing.
        let mut ev2 = IncrementalEvaluator::new(5, 400, 2, EstimatorConfig::default());
        for t in data.tasks() {
            for &(w, label) in data.task_responses(t) {
                ev2.ingest(Response {
                    worker: WorkerId(w),
                    task: t,
                    label,
                })
                .unwrap();
            }
            if (t.0 + 1) % 100 == 0
                && let Ok(a) = ev2.evaluate_worker(WorkerId(0), 0.9)
            {
                sizes.push(a.interval.size());
            }
        }
        assert!(sizes.len() >= 3, "checkpoints missing: {sizes:?}");
        assert!(
            sizes.last().unwrap() < sizes.first().unwrap(),
            "intervals should tighten with evidence: {sizes:?}"
        );
    }

    #[test]
    fn duplicate_ingest_leaves_state_intact() {
        let inst = BinaryScenario::paper_default(4, 30, 1.0).generate(&mut rng(409));
        let mut ev = streamed(&inst);
        let cache_before = ev.pair_cache().clone();
        let some = inst.responses().iter().next().unwrap();
        assert!(ev.ingest(some).is_err());
        assert_eq!(ev.pair_cache(), &cache_before);
        assert_eq!(ev.n_responses(), inst.responses().n_responses());
    }

    #[test]
    fn too_few_workers_rejected() {
        let ev = IncrementalEvaluator::new(2, 5, 2, EstimatorConfig::default());
        assert!(ev.evaluate_all(0.9).is_err());
    }
}
